"""The full UMETRICS/USDA case study, end to end.

Replays the paper's Sections 4-12 on the synthetic scenario, narrating each
stage the way the EM team experienced it — including the zig-zags: the
match definition revised mid-project, 496 extra records arriving late, and
the final learning + negative-rules hybrid.

Run:  python examples/umetrics_case_study.py [--small]
(--small uses a ~5x downsized scenario and finishes in well under a minute)
"""

import sys

from repro.casestudy import CaseStudyRun, check_new_rule_coverage
from repro.casestudy.preprocess import check_discarded_tables
from repro.core import EMProject, Stage
from repro.core.patch import label_reuse
from repro.datasets import ScenarioConfig
from repro.evaluation import evaluate_matches
from repro.table import format_profile, profile_table


def small_config() -> ScenarioConfig:
    return ScenarioConfig(
        n_umetrics_rows=280, n_usda_rows=400, n_extra_rows=100,
        n_federal=40, n_state=65, n_forest=20, n_extra_matched=12,
        n_sibling_families=18, n_generic_umetrics=5, n_generic_usda=6,
        n_multistate_usda=12, aux_scale=0.002,
    )


def main() -> None:
    config = small_config() if "--small" in sys.argv else ScenarioConfig()
    run = CaseStudyRun(config=config)
    project = EMProject("umetrics-usda")

    # ------------------------------------------------------ Section 4
    project.enter_stage(Stage.UNDERSTAND_DATA, note="received raw CSVs")
    scenario = run.scenario
    for table in (scenario.award_agg, scenario.usda):
        project.register_table(table)
    print(format_profile(profile_table(scenario.award_agg)))
    print()

    # ------------------------------------------------------ Section 6
    project.enter_stage(Stage.PREPROCESS)
    overlaps = check_discarded_tables(scenario)
    project.record(
        f"checked similarly-named attributes across tables: overlaps {overlaps} "
        "-> the other four UMETRICS tables share no data with USDA; dropped"
    )
    projected = run.projected
    project.register_table(projected.umetrics)
    project.register_table(projected.usda)

    # ------------------------------------------------------ Section 7
    project.enter_stage(Stage.BLOCK)
    blocking = run.blocking
    project.record(f"blocking outcome: {blocking.summary()}")
    print("Section 7 —", blocking.summary())

    # ------------------------------------------------------ Section 8
    project.enter_stage(Stage.SAMPLE_AND_LABEL)
    labeling = run.labeling
    project.record(labeling.summary())
    print("Section 8 —", labeling.summary())

    # ------------------------------------------------------ Section 9
    project.enter_stage(Stage.MATCH)
    matching = run.matching
    project.record(
        f"first winner {matching.initial_selection.best.name}; "
        f"{len(matching.mismatches)} debug mismatches -> added case-insensitive "
        f"features; final winner {matching.final_selection.best.name}"
    )
    print("\nSection 9 — matcher selection after case-insensitive features:")
    print(matching.final_selection.table())
    print("Figure 8 workflow:", matching.summary())

    # ------------------------------------------------------ Section 10
    project.enter_stage(Stage.MATCH_DEFINITION,
                        note="new positive rule discovered (zig-zag!)")
    coverage = check_new_rule_coverage(
        run.projected_v2, run.blocking_v2.candidates, list(matching.predicted_pairs)
    )
    project.record(
        f"award/project-number rule: {coverage.pairs_in_product} pairs in AxB, "
        f"{coverage.pairs_in_candidates} already in C, "
        f"{coverage.predicted_as_match} already matched -> patch, don't redo"
    )
    project.enter_stage(Stage.MATCH, note="running the patched Figure-9 workflow")
    updated = run.updated_workflow
    reuse = label_reuse(labeling.labels, updated.original.blocked.pairs)
    project.record(f"patched workflow: {updated.summary()}; label reuse {reuse}")
    print("\nSection 10 —", updated.summary())
    print("           label reuse:", reuse)

    # ------------------------------------------------------ Section 11
    project.enter_stage(Stage.ESTIMATE_ACCURACY)
    accuracy = run.accuracy
    print("\nSection 11/12 — Corleone estimates (largest sample):")
    print(accuracy.table())

    # ------------------------------------------------------ Section 12
    project.enter_stage(Stage.IMPROVE_WITH_RULES)
    final = run.final_workflow
    project.record(f"negative rules applied: {final.summary()}")
    print("\nFigure 10 workflow:", final.summary())

    truth = run.combined_truth
    print("\nExact accuracy against ground truth (synthetic-only luxury):")
    for name, matches in (
        ("IRIS (rules only)      ", run.iris_matches),
        ("learning-based (Fig. 9)", updated.matches),
        ("learning + rules (F.10)", final.matches),
    ):
        print(f"  {name}: {evaluate_matches(matches, truth)}")

    print(f"\nThe process zig-zagged {project.zigzag_count()} time(s). Full history:")
    print(project.render_history())


if __name__ == "__main__":
    main()
