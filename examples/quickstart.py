"""Quickstart: match two small tables end to end.

This walks the toolkit's core loop on the paper's Figure-1 style example:
build tables, block, generate features, label a handful of pairs, train a
matcher, predict, and evaluate.

Run:  python examples/quickstart.py
"""

from repro.blocking import OverlapBlocker, union_candidates
from repro.features import extract_feature_vectors, generate_features
from repro.matchers import MLMatcher
from repro.ml import DecisionTreeClassifier
from repro.table import Table


def main() -> None:
    # -- 1. two tables describing overlapping sets of people --------------
    table_a = Table(
        {
            "id": ["a1", "a2", "a3", "a4"],
            "name": ["Dave Smith", "Joe Wilson", "Dan Smith", "Ann Lee"],
            "city": ["Madison", "San Jose", "Middleton", "Boston"],
        },
        name="A",
    )
    table_b = Table(
        {
            "id": ["b1", "b2", "b3"],
            "name": ["David D. Smith", "Daniel W. Smith", "Anne Lee"],
            "city": ["Madison", "Middleton", "Boston"],
        },
        name="B",
    )
    print(f"matching {table_a!r} against {table_b!r}\n")

    # -- 2. blocking: drop obvious non-matches -----------------------------
    name_blocker = OverlapBlocker("name", "name", threshold=1,
                                  normalizer=lambda v: str(v).lower())
    city_blocker = OverlapBlocker("city", "city", threshold=1)
    candidates = union_candidates(
        [
            name_blocker.block_tables(table_a, table_b, "id", "id"),
            city_blocker.block_tables(table_a, table_b, "id", "id"),
        ],
        name="C",
    )
    print(f"blocking kept {len(candidates)} of "
          f"{table_a.num_rows * table_b.num_rows} pairs: {candidates.pairs}\n")

    # -- 3. features generated automatically from the schemas --------------
    features = generate_features(table_a, table_b, exclude_attrs=["id"])
    print("generated features:", ", ".join(features.names), "\n")

    # -- 4. a few labeled pairs train a matcher ----------------------------
    labeled_pairs = [("a1", "b1"), ("a3", "b2"), ("a4", "b3"), ("a2", "b1"), ("a1", "b2")]
    labels = [1, 1, 1, 0, 0]
    matrix = extract_feature_vectors(candidates, features, pairs=labeled_pairs)
    matcher = MLMatcher(DecisionTreeClassifier(), "Decision Tree").fit(matrix, labels)

    # -- 5. predict over the whole candidate set ---------------------------
    predictions = matcher.predict(extract_feature_vectors(candidates, features))
    matches = [pair for pair, label in predictions.items() if label == 1]
    print("predicted matches:")
    for a_id, b_id in matches:
        a_row = candidates.left_row(a_id)
        b_row = candidates.right_row(b_id)
        print(f"  ({a_id}) {a_row['name']:<14} <-> ({b_id}) {b_row['name']}")


if __name__ == "__main__":
    main()
