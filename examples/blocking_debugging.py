"""Blocking design and debugging, the Section-7 way.

Shows the experiments behind the paper's blocking choices on the synthetic
scenario: the overlap-threshold sweep (K=1 explodes, K=7 starves), the
footnote-3 analysis of why BOTH the overlap and the overlap-coefficient
blockers are needed, and the MatchCatcher-style debugger — including the
extension the paper did not try: ranking excluded pairs by employee names,
which surfaces matches whose titles were rewritten.

Run:  python examples/blocking_debugging.py
"""

from repro.blocking import debug_blocker, overlap_report, union_candidates
from repro.casestudy import CaseStudyRun
from repro.casestudy.blocking_plan import threshold_sweep
from repro.plan import figure10_spec, recipe_from_spec
from repro.datasets import ScenarioConfig


def main() -> None:
    run = CaseStudyRun(
        config=ScenarioConfig(
            n_umetrics_rows=280, n_usda_rows=400, n_extra_rows=100,
            n_federal=40, n_state=65, n_forest=20, n_extra_matched=12,
            n_sibling_families=18, n_generic_umetrics=5, n_generic_usda=6,
            n_multistate_usda=12, aux_scale=0.002,
        )
    )
    tables = run.projected
    truth = tables.truth

    # -- 1. the overlap-threshold sweep ------------------------------------
    print("overlap-threshold sweep (word tokens on normalized titles):")
    for k, size in threshold_sweep(tables, thresholds=(1, 2, 3, 5, 7)).items():
        print(f"  K={k}: {size:>8} candidate pairs")
    print("  -> K=1 is uselessly large, K=7 starves; the paper picked K=3\n")

    # -- 2. why two title blockers? (footnote 3) ---------------------------
    ae, overlap, coefficient = recipe_from_spec(figure10_spec()).blockers
    args = (tables.umetrics, tables.usda, tables.l_key, tables.r_key)
    c1 = ae.block_tables(*args, name="C1")
    c2 = overlap.block_tables(*args, name="C2")
    c3 = coefficient.block_tables(*args, name="C3")
    print("footnote-3 analysis:", overlap_report(c2, c3))
    only_c3 = c3.difference(c2)
    short_title_pairs = [
        pair for pair in only_c3.pairs[:5]
    ]
    print("  sample pairs only the coefficient blocker kept (short titles):")
    for pair in short_title_pairs:
        l_row, r_row = only_c3.record_pair(pair)
        print(f"    {l_row['AwardTitle']!r:40} vs {r_row['AwardTitle']!r}")
    print()

    # -- 3. the blocking debugger ------------------------------------------
    candidates = union_candidates([c1, c2, c3], name="C")
    captured = sum(1 for pair in truth if pair in candidates)
    print(f"consolidated C: {len(candidates)} pairs; "
          f"{captured}/{len(truth)} true matches captured\n")

    print("debugger, ranking excluded pairs by TITLE similarity (the paper's run):")
    for report in debug_blocker(candidates, [("AwardTitle", "AwardTitle")], top_k=5):
        verdict = "MATCH" if (report.l_id, report.r_id) in truth else "non-match"
        print(f"  score={report.score:.2f} ({report.l_id}, {report.r_id}) -> {verdict}")
    print("  -> like the paper: the top of the list is non-matches; stop tuning.\n")

    print("debugger EXTENSION, adding employee names as a ranking attribute:")
    hits = 0
    for report in debug_blocker(
        candidates,
        [("AwardTitle", "AwardTitle"), ("EmployeeName", "EmployeeName")],
        top_k=25,
    ):
        if (report.l_id, report.r_id) in truth:
            hits += 1
    print(f"  {hits} true matches surface in the top 25 — records whose USDA "
          "report title was rewritten but whose project director matches. "
          "A second blocking iteration could recover these.")


if __name__ == "__main__":
    main()
