"""Moving the matcher into production (the paper's "Next Steps").

Section 12 ends with the UMETRICS team asking for the matcher to be
packaged so it can run over *other data slices*, with accuracy monitored
and a path back to development when quality drifts. This example builds
that loop:

1. train the final workflow (positive rules + learner + negative rules)
   on the development slice, and *package* it — serialize the rules,
   blockers, features, trained model and imputer to a JSON file, the
   representation the paper says production needs;
2. reload the package and apply it, unchanged, to two fresh production
   slices — one clean, one deliberately dirtied (titles corrupted,
   numbers dropped);
3. monitor each batch with sampled expert labeling; the dirty slice trips
   the precision floor and flags a return to development.

Run:  python examples/production_monitoring.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.casestudy import CaseStudyRun, preprocess, train_workflow_matcher
from repro.casestudy.workflows import run_combined_workflow
from repro.core import PackagedWorkflow
from repro.datasets import ScenarioConfig, make_borderline_predicate
from repro.evaluation import AccuracyMonitor
from repro.labeling import ExpertOracle
from repro.plan import figure10_workflow


def dev_config(seed: int = 45) -> ScenarioConfig:
    return ScenarioConfig(
        seed=seed,
        n_umetrics_rows=280, n_usda_rows=400, n_extra_rows=100,
        n_federal=40, n_state=65, n_forest=20, n_extra_matched=12,
        n_sibling_families=18, n_generic_umetrics=5, n_generic_usda=6,
        n_multistate_usda=12, aux_scale=0.002,
    )


def corrupt_slice(projected, rng: np.random.Generator):
    """Dirty a production slice: shuffle title words, drop award numbers."""
    def mangle_title(value):
        if value is None or rng.random() > 0.5:
            return value
        words = str(value).split()
        rng.shuffle(words)
        return " ".join(words[: max(2, len(words) // 2)])

    def drop_number(value):
        return None if value is not None and rng.random() < 0.6 else value

    dirty_umetrics = projected.umetrics.map_column("AwardTitle", mangle_title)
    dirty_umetrics = dirty_umetrics.map_column("AwardNumber", drop_number)
    # RecordId stays intact, so ground truth still applies
    dirty_umetrics = dirty_umetrics.with_column("RecordId", projected.umetrics["RecordId"])
    return type(projected)(umetrics=dirty_umetrics, usda=projected.usda,
                           truth=projected.truth)


def main() -> None:
    # -- development stage --------------------------------------------------
    dev = CaseStudyRun(config=dev_config(seed=45))
    matcher = train_workflow_matcher(
        dev.blocking_v2.candidates, dev.labeling.labels,
        dev.matching.feature_set, dev.matching.matcher,
    )
    print("development matcher trained:", dev.matching.final_selection.best.name)

    # package it: rules + blockers + features + model + imputer, as JSON
    # package it from the one shared Figure-10 plan recipe
    package = PackagedWorkflow(
        figure10_workflow(),
        matcher,
        dev.matching.feature_set,
    )
    path = Path(tempfile.mkdtemp()) / "figure10_workflow.json"
    package.save(path)
    print(f"packaged workflow -> {path} ({path.stat().st_size} bytes)")
    deployed = PackagedWorkflow.load(path)  # what production actually runs

    monitor = AccuracyMonitor(precision_floor=0.95, sample_size=60, seed=7)
    rng = np.random.default_rng(11)

    # -- production slices --------------------------------------------------
    for batch_name, seed, dirty in (("2016-Q1", 101, False), ("2016-Q2", 202, True)):
        production = CaseStudyRun(config=dev_config(seed=seed))
        slice_tables = preprocess(production.scenario, include_project_number=True)
        if dirty:
            slice_tables = corrupt_slice(slice_tables, rng)
        outcome = run_combined_workflow(
            slice_tables, production.projected_extra,
            dev.labeling.labels, deployed.feature_set, deployed.matcher,
            with_negative_rules=True,
        )
        oracle = ExpertOracle(
            slice_tables.truth | production.projected_extra.truth,
            borderline=make_borderline_predicate(),
            unsure_probability=0.2,
            seed=seed,
        )
        report = monitor.check_batch(
            batch_name, outcome.consolidated_candidates, list(outcome.matches), oracle
        )
        print(f"\nbatch {batch_name} ({'dirty' if dirty else 'clean'}): "
              f"{len(outcome.matches)} matches")
        print(" ", report)

    if monitor.needs_redevelopment():
        print("\n-> the latest batch was flagged: back to the development "
              "stage to revise the workflow (the paper's third challenge).")
    else:
        print("\n-> all batches healthy; the workflow stays in production.")


if __name__ == "__main__":
    main()
