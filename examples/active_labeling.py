"""Active labeling: spending the experts' time where it matters.

Section 8's core difficulty — "random sampling from this set will result
in very few matches" — and Section 13's labeling pain point motivate
smarter sampling. This example compares three strategies on the synthetic
scenario, all with the same labeling budget:

* plain random sampling from C (what the case study did),
* stratified sampling by blocker provenance (pairs only the coefficient
  blocker caught get their own quota),
* uncertainty sampling (label what the current matcher is least sure of).

Run:  python examples/active_labeling.py
"""

import numpy as np

from repro.casestudy import CaseStudyRun
from repro.casestudy.matching import base_feature_set
from repro.datasets import ScenarioConfig, make_borderline_predicate
from repro.features import add_case_insensitive_variants, extract_feature_vectors
from repro.labeling import ExpertOracle, UncertaintySampler, stratified_sample
from repro.matchers import MLMatcher
from repro.ml import PRF, RandomForestClassifier
from repro.table import render_record_pair


def main() -> None:
    run = CaseStudyRun(
        config=ScenarioConfig(
            n_umetrics_rows=280, n_usda_rows=400, n_extra_rows=100,
            n_federal=40, n_state=65, n_forest=20, n_extra_matched=12,
            n_sibling_families=18, n_generic_umetrics=5, n_generic_usda=6,
            n_multistate_usda=12, aux_scale=0.002,
        )
    )
    candidates = run.blocking_v2.candidates
    truth = run.projected.truth
    features = add_case_insensitive_variants(
        base_feature_set(run.projected_v2), attrs=["AwardTitle"]
    )
    oracle = ExpertOracle(
        truth, borderline=make_borderline_predicate(),
        unsure_probability=0.15, seed=3,
    )
    budget = 90
    rng = np.random.default_rng(17)

    def evaluate(labeled_pairs) -> tuple[int, PRF]:
        """Positives found + test quality of a matcher trained on them."""
        usable = labeled_pairs.without_unsure()
        pairs, y = usable.to_training_data()
        positives = sum(y)
        matcher = MLMatcher(RandomForestClassifier(n_trees=30, seed=1), "RF")
        matcher.fit(extract_feature_vectors(candidates, features, pairs=pairs), y)
        matrix = extract_feature_vectors(candidates, features)
        predictions = matcher.predict(matrix)
        y_all = [1 if p in truth else 0 for p in matrix.pairs]
        y_hat = [predictions[p] for p in matrix.pairs]
        return positives, PRF.from_labels(y_all, y_hat)

    # -- 1. random ----------------------------------------------------------
    random_labels = oracle.label_pairs(candidates, candidates.sample(budget, rng))
    print("random sampling:        %2d positives; matcher on C: %s"
          % evaluate(random_labels))

    # -- 2. stratified by blocker provenance --------------------------------
    blocking = run.blocking_v2
    only_c3 = blocking.c3.difference(blocking.c2)
    strata = [blocking.c1, only_c3, blocking.candidates]
    picked = stratified_sample(strata, n_per_stratum=budget // 3, rng=rng)
    stratified_labels = oracle.label_pairs(candidates, picked)
    print("stratified sampling:    %2d positives; matcher on C: %s"
          % evaluate(stratified_labels))

    # -- 3. uncertainty sampling ---------------------------------------------
    sampler = UncertaintySampler(
        candidates, features,
        MLMatcher(RandomForestClassifier(n_trees=30, seed=1), "RF"),
        oracle, seed=5,
    )
    active_labels = sampler.run(seed_size=30, rounds=4, n_per_round=15)
    print("uncertainty sampling:   %2d positives; matcher on C: %s"
          % evaluate(active_labels))

    # show one of the pairs active learning asked about — typically a
    # borderline sibling/renewal, exactly the D2 class the experts debated
    queried = [p for p in active_labels.pairs()][-1]
    l_row, r_row = candidates.record_pair(queried)
    print("\nlast pair the active sampler queried:")
    print(render_record_pair(l_row, r_row, "UMETRICS", "USDA"))


if __name__ == "__main__":
    main()
