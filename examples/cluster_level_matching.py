"""Record-level vs cluster-level matching (the Section-10 discussion).

The UMETRICS team insisted matches be one-to-one — which only makes sense
at the *cluster* level, because a grant shows up as several records
(annual USDA reports, UMETRICS sub-awards). This example reproduces the
analysis the EM team shared: how record-level matches distribute across
arities, what the clusters look like, and what a one-to-one cluster
assignment would keep.

Run:  python examples/cluster_level_matching.py
"""

from repro.casestudy import CaseStudyRun
from repro.clustering import (
    analyze_match_arity,
    cluster_by_attribute,
    lift_to_clusters,
    one_to_one_assignment,
)
from repro.datasets import ScenarioConfig
from repro.text import award_number_suffix


def main() -> None:
    run = CaseStudyRun(
        config=ScenarioConfig(
            n_umetrics_rows=280, n_usda_rows=400, n_extra_rows=100,
            n_federal=40, n_state=65, n_forest=20, n_extra_matched=12,
            n_sibling_families=18, n_generic_umetrics=5, n_generic_usda=6,
            n_multistate_usda=12, aux_scale=0.002,
        )
    )
    matches = list(run.final_workflow.matches)

    # -- 1. the arity analysis the EM team shared ---------------------------
    report = analyze_match_arity(matches)
    print("record-level match arity:", report)
    print("  (annual reports and sub-awards make 1:n/n:1 legitimate here)\n")

    # -- 2. cluster each table's records per grant --------------------------
    umetrics = run.projected_v2.umetrics
    usda = run.projected_v2.usda
    l_clusters = cluster_by_attribute(
        umetrics, "RecordId", "AwardNumber", normalize=award_number_suffix
    )
    r_clusters = cluster_by_attribute(usda, "RecordId", "ProjectNumber")
    multi_l = sum(1 for members in l_clusters.values() if len(members) > 1)
    multi_r = sum(1 for members in r_clusters.values() if len(members) > 1)
    print(f"UMETRICS: {len(l_clusters)} clusters ({multi_l} multi-record)")
    print(f"USDA:     {len(r_clusters)} clusters ({multi_r} multi-record)\n")

    # -- 3. lift record matches to clusters and enforce one-to-one ----------
    original_ids = set(umetrics["RecordId"])
    original_matches = [p for p in matches if p[0] in original_ids]
    lifted = lift_to_clusters(original_matches, l_clusters, r_clusters)
    chosen = one_to_one_assignment(lifted)
    print(f"{len(original_matches)} record matches lift to {len(lifted)} "
          f"cluster pairs; one-to-one assignment keeps {len(chosen)}")
    strongest = max(chosen, key=lambda m: m.support)
    print(f"strongest cluster match: {len(strongest.l_cluster)} UMETRICS "
          f"record(s) <-> {len(strongest.r_cluster)} USDA record(s), "
          f"supported by {strongest.support} record pair(s)\n")

    kept_pairs = sum(m.support for m in chosen)
    print(f"one-to-one clustering covers {kept_pairs}/{len(original_matches)} "
          "record pairs.")
    print("The teams ultimately kept record-level matching — the analysis "
          "showed the non-1:1 structure was benign — exactly the paper's call.")


if __name__ == "__main__":
    main()
