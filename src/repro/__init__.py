"""repro: end-to-end entity matching toolkit (EDBT 2019 case-study repro)."""

__version__ = "1.0.0"
