"""The online match service: delta patches + a per-record serving loop.

:class:`MatchService` holds one fixed right table, one trained matcher
and one delta-maintained :class:`~repro.blocking.incremental`
handle per blocker, all resolved against a long-lived
:class:`~repro.runtime.context.EngineSession`. Two entry points:

``apply_patch(upserts, deletes)``
    Executes the batch workflow *restricted to the patch*: positive
    rules over the batch table -> C1, handle previews per blocker ->
    delta C2 (same union/difference semantics as
    :meth:`~repro.core.workflow.EMWorkflow.build_candidates`), feature
    extraction and prediction over C = C2 - C1, negative rules, final
    delta matches ``C1 + (kept - C1)``. Because every stage is the
    workflow's own code path over the same inputs — the handles' delta
    pairs are bit-identical to ``block_tables`` on the batch, extraction
    is per-pair pure, prediction is per-row pure — a patch's
    :class:`PatchResult` equals the :class:`~repro.core.workflow.WorkflowResult`
    of a from-scratch run over the batch slice, field for field
    (``tests/test_incremental.py`` proves it differentially, including
    the full Section 10 replay).

    Fault tolerance: all computation runs off handle *previews*; the
    handles and the service's per-record state are committed only after
    every stage succeeded. A matcher that raises mid-patch leaves the
    indexes uncorrupted, the session pool alive and the trace
    well-formed (``tests/test_serving.py``).

``match(record)``
    Probes the posting indexes and positive rules with one record —
    without mutating anything — scores the surviving candidates through
    the trained matcher, flags negative-rule flips, and returns ranked
    :class:`RankedCandidate` rows with per-candidate provenance (which
    blockers emitted it, which rule fired, score vs. flip).

Per-call latency histograms (``serve:match_seconds``,
``serve:patch_seconds`` over :data:`~repro.obs.metrics.LATENCY_BUCKETS`)
and counters land in the session's
:class:`~repro.obs.metrics.MetricsRegistry` (or a service-owned one when
the session carries none).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any, Iterable, Mapping, Sequence

from ..blocking.candidate_set import CandidateSet, Pair
from ..blocking.combiner import union_candidates
from ..blocking.factory import BlockerConfig, create_blocker
from ..core.patch import merge_match_sets
from ..errors import ServingError
from ..features.vectors import extract_feature_vectors
from ..obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from ..runtime.context import EngineSession, resolve_session
from ..table import Table


@dataclass(frozen=True)
class RankedCandidate:
    """One scored candidate from :meth:`MatchService.match`, with lineage."""

    pair: Pair
    #: Matcher probability; ``None`` for sure matches (rules don't score).
    score: float | None
    #: Positive rule that fired, or ``None``.
    sure_rule: str | None
    #: Blockers that emitted the pair, in blocker order.
    blockers: tuple[str, ...]
    #: Negative rule that flipped the pair, or ``None``.
    flipped_by: str | None
    #: Final verdict under workflow semantics: sure, or predicted and
    #: not flipped.
    is_match: bool


@dataclass(frozen=True)
class MatchResponse:
    """Ranked candidates for one probed record."""

    record_id: Any
    candidates: tuple[RankedCandidate, ...]
    seconds: float

    @property
    def matches(self) -> tuple[Pair, ...]:
        return tuple(c.pair for c in self.candidates if c.is_match)


@dataclass(frozen=True)
class PatchResult:
    """The delta a patch produced — the workflow result of its batch.

    ``sure_matches`` through ``matches`` mirror
    :class:`~repro.core.workflow.WorkflowResult` field-for-field for the
    batch slice; ``retired`` lists the match pairs that the touched
    (replaced or deleted) records contributed before the patch and no
    longer do.
    """

    upserted: tuple[Any, ...]
    deleted: tuple[Any, ...]
    sure_matches: tuple[Pair, ...]
    candidates: tuple[Pair, ...]
    to_predict: tuple[Pair, ...]
    predicted_matches: tuple[Pair, ...]
    flipped: tuple[tuple[Pair, str], ...]
    matches: tuple[Pair, ...]
    retired: tuple[Pair, ...]
    provenance: Any = None
    seconds: float = 0.0

    def explain_pair(self, a: Any, b: Any):
        """Lineage of pair ``(a, b)`` (needs ``provenance=True``)."""
        from ..obs.provenance import require_provenance

        return require_provenance(self.provenance).explain_pair(a, b)


class MatchService:
    """A serving loop over one (evolving left, fixed right) table pair.

    Parameters
    ----------
    ltable:
        Initial left records; loaded through the same delta path every
        later patch uses (``apply_patch(upserts=ltable)``), so the
        service starts bit-equal to a batch workflow run over *ltable*.
    rtable:
        The fixed right table the posting indexes are built over.
    matcher:
        A *trained* :class:`~repro.matchers.ml_matcher.MLMatcher`.
    feature_set, blockers, positive_rules, negative_rules:
        The workflow recipe; every blocker must support incremental
        maintenance (:class:`~repro.errors.IncrementalBlockingError`
        otherwise — no silent full re-blocks). Each blocker may be an
        instance or a declarative config (a mapping /
        :class:`~repro.blocking.factory.BlockerConfig`) built through
        the registry, so a service bootstrap can share the exact config
        file the CLI's ``--blocker`` flag consumes.
    session:
        The long-lived :class:`~repro.runtime.context.EngineSession` the
        service binds to (ambient session when ``None``). The session
        outlives every call; the service never tears it down.
    """

    def __init__(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        matcher: Any,
        feature_set: Any,
        blockers: Sequence[Any],
        positive_rules: Sequence[Any] = (),
        negative_rules: Sequence[Any] = (),
        name: str = "serve",
        session: EngineSession | None = None,
    ) -> None:
        if not matcher.is_fitted:
            raise ServingError(
                f"match service {name!r} needs a trained matcher; "
                f"{matcher.name!r} is unfitted"
            )
        if not blockers and not positive_rules:
            raise ServingError(
                f"match service {name!r} has no blockers and no positive rules"
            )
        self.name = name
        self.rtable = rtable
        self.l_key = l_key
        self.r_key = r_key
        self.matcher = matcher
        self.feature_set = feature_set
        self.positive_rules = list(positive_rules)
        self.negative_rules = list(negative_rules)
        blockers = [
            create_blocker(b) if isinstance(b, (Mapping, BlockerConfig)) else b
            for b in blockers
        ]
        self._session = resolve_session(session)
        self.metrics: MetricsRegistry = self._session.metrics or MetricsRegistry()
        self.handles = [
            blocker.incremental(rtable, l_key, r_key, session=self._session)
            for blocker in blockers
        ]
        self._r_row_index = {
            value: indices[0] for value, indices in rtable.value_index(r_key).items()
        }
        # Live per-record state, all keyed by left id in insertion order.
        self._rows: dict[Any, dict[str, Any]] = {}
        self._sure: dict[Any, tuple[Pair, ...]] = {}
        self._kept: dict[Any, tuple[Pair, ...]] = {}
        self._flipped: dict[Any, tuple[tuple[Pair, str], ...]] = {}
        if len(ltable):
            self.apply_patch(upserts=ltable)

    @classmethod
    def from_plan(
        cls,
        plan: Any,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        matcher: Any,
        feature_set: Any,
        name: str = "serve",
        session: EngineSession | None = None,
    ) -> "MatchService":
        """Bootstrap a service from a pipeline spec's slice recipe.

        *plan* is a :class:`repro.plan.PipelineSpec` (e.g. the committed
        ``examples/figure10.json``); its blockers and positive/negative
        rules are extracted via
        :func:`repro.plan.figure10.recipe_from_spec`, so the serving loop
        runs the *same* recipe as the batch case study — no private copy.
        """
        from ..plan.figure10 import recipe_from_spec

        recipe = recipe_from_spec(plan)
        return cls(
            ltable, rtable, l_key, r_key,
            matcher=matcher,
            feature_set=feature_set,
            blockers=list(recipe.blockers),
            positive_rules=list(recipe.positive_rules),
            negative_rules=list(recipe.negative_rules),
            name=name,
            session=session,
        )

    # -- helpers -------------------------------------------------------

    @property
    def session(self) -> EngineSession:
        return self._session

    def live_ids(self) -> tuple[Any, ...]:
        """Ids of the live left records, in insertion order."""
        return tuple(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def _as_rows(self, upserts: "Table | Sequence[Mapping[str, Any]]") -> list[dict]:
        if isinstance(upserts, Table):
            return upserts.to_rows()
        rows = [dict(r) for r in upserts]
        for row in rows:
            if self.l_key not in row:
                raise ServingError(
                    f"upsert record is missing the key column {self.l_key!r}"
                )
        return rows

    def _resolve_collector(self, provenance: Any):
        policy = (
            provenance if provenance is not None else self._session.provenance
        )
        if policy is None or policy is False:
            return None
        if policy is True:
            from ..obs.provenance import MatchProvenance

            return MatchProvenance(self.name)
        return policy

    def _batch_workflow(
        self, batch: Table, collector: Any
    ) -> tuple[CandidateSet, list[Any], tuple, tuple, tuple, tuple, tuple]:
        """Stages 1-6 of the workflow over the batch table.

        Blocking comes from handle *previews* (pure; committed by the
        caller only after everything below succeeded); every other stage
        is the workflow's own operator over the same inputs.
        """
        from ..rules.negative import apply_negative_rules
        from ..store.stages import PredictStage, SureMatchStage

        session = self._session
        c1 = session.run_stage(
            SureMatchStage(
                self.positive_rules, batch, self.rtable, self.l_key, self.r_key,
                name="C1", trace_name="positive_rules",
            ),
            provenance=collector,
        )
        pendings = []
        blocked = []
        for handle in self.handles:
            pending = handle.preview(batch)
            pendings.append(pending)
            result = CandidateSet(
                batch, self.rtable, self.l_key, self.r_key,
                pending.delta, name=handle.blocker.short_name,
            )
            blocked.append(result)
            if collector is not None:
                collector.record_blocker(handle.blocker.short_name, result.pairs)
        c2 = union_candidates([c1] + blocked, name="C2") if blocked else c1
        c = c2.difference(c1, name="C")
        if len(c):
            matrix = extract_feature_vectors(c, self.feature_set, session=session)
            predicted = session.run_stage(
                PredictStage(self.matcher, matrix, trace_name="predict")
            )
            if collector is not None:
                collector.record_scores(self.matcher.predict_proba(matrix))
        else:
            predicted = []
        if self.negative_rules:
            kept, flipped = apply_negative_rules(predicted, c, self.negative_rules)
        else:
            kept, flipped = list(predicted), []
        final = list(c1.pairs) + [p for p in kept if p not in c1]
        if collector is not None:
            collector.record_outcome(predicted, flipped, final)
        return (
            c1,
            pendings,
            tuple(c2.pairs),
            tuple(c.pairs),
            tuple(predicted),
            tuple(flipped),
            tuple(final),
        )

    # -- mutation ------------------------------------------------------

    def apply_patch(
        self,
        upserts: "Table | Sequence[Mapping[str, Any]]" = (),
        deletes: Iterable[Any] = (),
        *,
        provenance: Any = None,
    ) -> PatchResult:
        """Apply a patch (insert-or-replace rows, delete ids) as a delta.

        Returns the batch's workflow result plus the retired pairs. All
        state — posting indexes and per-record match bookkeeping — is
        committed only after every stage succeeded; an exception leaves
        the service exactly as before the call.
        """
        t0 = perf_counter()
        rows = self._as_rows(upserts)
        delete_ids = list(deletes)
        collector = self._resolve_collector(provenance)
        batch = Table.from_rows(rows, name="patch") if rows else None
        if batch is not None:
            c1, pendings, c2_pairs, c_pairs, predicted, flipped, final = (
                self._batch_workflow(batch, collector)
            )
            order = tuple(batch[self.l_key])
            sure_by: dict[Any, list[Pair]] = {lid: [] for lid in order}
            kept_by: dict[Any, list[Pair]] = {lid: [] for lid in order}
            flips_by: dict[Any, list[tuple[Pair, str]]] = {lid: [] for lid in order}
            for pair in c1.pairs:
                sure_by[pair[0]].append(pair)
            in_c1 = set(c1.pairs)
            flipped_pairs = {p for p, _ in flipped}
            for pair in predicted:
                if pair not in in_c1 and pair not in flipped_pairs:
                    kept_by[pair[0]].append(pair)
            for pair, rule in flipped:
                flips_by[pair[0]].append((pair, rule))
        else:
            c1 = None
            pendings, c2_pairs, c_pairs, predicted, flipped, final = (
                [], (), (), (), (), ()
            )
            order = ()
            sure_by, kept_by, flips_by = {}, {}, {}

        # ---- commit point: nothing above mutated the service ----------
        touched = list(delete_ids) + [lid for lid in order]
        retired: list[Pair] = []
        seen_retire: set[Pair] = set()
        for lid in touched:
            for pair in self._sure.get(lid, ()) + self._kept.get(lid, ()):
                if pair not in seen_retire:
                    seen_retire.add(pair)
                    retired.append(pair)
        deleted = tuple(lid for lid in delete_ids if lid in self._rows)
        for lid in delete_ids:
            for handle in self.handles:
                handle.delete([lid])
            self._rows.pop(lid, None)
            self._sure.pop(lid, None)
            self._kept.pop(lid, None)
            self._flipped.pop(lid, None)
        for handle, pending in zip(self.handles, pendings):
            handle.commit(pending)
        for row in rows:
            lid = row[self.l_key]
            # replace = delete + insert: a re-upserted record moves to the
            # end of insertion order, matching the handles' commit order
            for state in (self._rows, self._sure, self._kept, self._flipped):
                state.pop(lid, None)
            self._rows[lid] = row
            self._sure[lid] = tuple(sure_by.get(lid, ()))
            self._kept[lid] = tuple(kept_by.get(lid, ()))
            self._flipped[lid] = tuple(flips_by.get(lid, ()))
        seconds = perf_counter() - t0
        metrics = self.metrics
        metrics.histogram("serve:patch_seconds", LATENCY_BUCKETS).observe(seconds)
        metrics.counter("serve:patch_calls").inc()
        metrics.counter("serve:patch_upserts").inc(len(rows))
        metrics.counter("serve:patch_deletes").inc(len(deleted))
        metrics.counter("serve:delta_pairs").inc(len(c2_pairs))
        return PatchResult(
            upserted=order,
            deleted=deleted,
            sure_matches=tuple(c1.pairs) if c1 is not None else (),
            candidates=c2_pairs,
            to_predict=c_pairs,
            predicted_matches=predicted,
            flipped=flipped,
            matches=final,
            retired=tuple(retired),
            provenance=collector,
            seconds=seconds,
        )

    # -- read path -----------------------------------------------------

    def match(self, record: Mapping[str, Any], *, top_k: int | None = None) -> MatchResponse:
        """Rank the right-table candidates for one record (no mutation).

        Candidates come from the positive rules and every posting-index
        probe (handle previews — the indexes are read, never written);
        non-sure candidates are scored by the matcher and checked against
        the negative rules. Ranking: sure matches first (rules outrank
        scores, as in the workflow), then by descending score with
        emission order breaking ties.
        """
        t0 = perf_counter()
        row = dict(record)
        if self.l_key not in row:
            raise ServingError(
                f"match record is missing the key column {self.l_key!r}"
            )
        lid = row[self.l_key]
        probe = Table.from_rows([row], name="probe")
        sure_rule_of: dict[Pair, str] = {}
        emitted: dict[Pair, list[str]] = {}
        for rule in self.positive_rules:
            for pair in rule.pairs(probe, self.rtable, self.l_key, self.r_key).pairs:
                sure_rule_of.setdefault(pair, rule.name)
                emitted.setdefault(pair, [])
        for handle in self.handles:
            for pair in handle.preview(probe).delta:
                emitted.setdefault(pair, []).append(handle.blocker.short_name)
        ordered_pairs = list(emitted)
        to_score = [p for p in ordered_pairs if p not in sure_rule_of]
        scores: dict[Pair, float] = {}
        predicted: set[Pair] = set()
        if to_score:
            candidates = CandidateSet(
                probe, self.rtable, self.l_key, self.r_key, to_score, name="probe"
            )
            matrix = extract_feature_vectors(
                candidates, self.feature_set, session=self._session
            )
            scores = {
                tuple(p): float(s)
                for p, s in self.matcher.predict_proba(matrix).items()
            }
            predicted = set(self.matcher.predict_matches(matrix))
        flipped_by: dict[Pair, str] = {}
        if self.negative_rules and to_score:
            r_index = self._r_row_index
            for pair in to_score:
                if pair not in predicted:
                    continue
                r_row = self.rtable.row(r_index[pair[1]])
                for rule in self.negative_rules:
                    if rule.fires(row, r_row):
                        flipped_by[pair] = rule.name
                        break
        ranked = [
            RankedCandidate(
                pair=pair,
                score=scores.get(pair),
                sure_rule=sure_rule_of.get(pair),
                blockers=tuple(emitted[pair]),
                flipped_by=flipped_by.get(pair),
                is_match=(
                    pair in sure_rule_of
                    or (pair in predicted and pair not in flipped_by)
                ),
            )
            for pair in ordered_pairs
        ]
        index_of = {pair: i for i, pair in enumerate(ordered_pairs)}
        ranked.sort(
            key=lambda c: (
                c.sure_rule is None,
                -(c.score if c.score is not None else 0.0),
                index_of[c.pair],
            )
        )
        if top_k is not None:
            ranked = ranked[:top_k]
        seconds = perf_counter() - t0
        metrics = self.metrics
        metrics.histogram("serve:match_seconds", LATENCY_BUCKETS).observe(seconds)
        metrics.counter("serve:match_calls").inc()
        metrics.counter("serve:match_candidates").inc(len(ordered_pairs))
        return MatchResponse(record_id=lid, candidates=tuple(ranked), seconds=seconds)

    # -- accumulated view ----------------------------------------------

    def metrics_text(self) -> str:
        """The service's metrics in Prometheus text exposition format.

        Renders the live registry (``serve:*`` histograms/counters, plus
        ``proc:*`` gauges when :meth:`start_resource_monitor` is on) —
        hand this bound method to
        :class:`~repro.obs.export.MetricsServer` as its source.
        """
        from ..obs.export import render_prometheus

        return render_prometheus(self.metrics)

    def start_resource_monitor(self, interval: float = 1.0):
        """Start (or return) the background ``proc:*`` gauge sampler.

        The monitor feeds the service's own registry, so ``/metrics``
        scrapes see process RSS/CPU/GC next to the ``serve:*`` series.
        Idempotent; the thread is a daemon and can also be stopped
        explicitly via :meth:`stop_resource_monitor`.
        """
        from ..obs.resources import ResourceMonitor

        monitor = getattr(self, "_resource_monitor", None)
        if monitor is None:
            monitor = ResourceMonitor(self.metrics, interval=interval)
            self._resource_monitor = monitor
        return monitor.start()

    def stop_resource_monitor(self) -> None:
        """Stop the background resource sampler (no-op when not running)."""
        monitor = getattr(self, "_resource_monitor", None)
        if monitor is not None:
            monitor.stop()

    def current_matches(self) -> list[Pair]:
        """All live matches, deduplicated in first-seen order.

        Sure-match pairs across all live records first, then kept
        predictions — the same precedence
        :func:`~repro.core.patch.merge_match_sets` gives a sequence of
        workflow slices. Set-equal to a from-scratch workflow run over
        the live left table (asserted differentially in the test suite);
        the insertion *order* reflects upsert history, as a log-structured
        view should.
        """
        sure_all = [p for pairs in self._sure.values() for p in pairs]
        kept_all = [p for pairs in self._kept.values() for p in pairs]
        return merge_match_sets([sure_all, kept_all])

    def current_flips(self) -> list[tuple[Pair, str]]:
        """All live negative-rule flips, in insertion order."""
        return [f for flips in self._flipped.values() for f in flips]

    def blocking_state(self) -> list[dict[str, Any]]:
        """Each handle's canonical state snapshot (differential testing)."""
        return [handle.state_snapshot() for handle in self.handles]
