"""Online EM serving: a long-lived match service over delta blocking.

:class:`MatchService` turns the batch workflow into a serving loop on a
long-lived :class:`~repro.runtime.context.EngineSession` — ``match(record)``
answers "who does this record match, and why?" in milliseconds, and
``apply_patch(upserts, deletes)`` executes the paper's Section 10
late-arriving-records scenario as an index update (delta blocking via
:mod:`repro.blocking.incremental`) instead of a rerun. See
``docs/serving.md``.
"""

from .service import MatchResponse, MatchService, PatchResult, RankedCandidate

__all__ = ["MatchResponse", "MatchService", "PatchResult", "RankedCandidate"]
