"""Rule registries: pick positive / negative rules by name, not import.

The plan IR (:mod:`repro.plan`) references rules declaratively, the same
way blocker configs reference blockers through
:data:`repro.blocking.factory.BLOCKER_REGISTRY`. A config entry is either
a bare registry name (``"m1"``) or ``{"kind": name, ...params}`` where
the params override the builder's keyword defaults. Builders return the
*exact* frozen-dataclass rules the hand-written recipe constructs, so
value equality — and therefore store fingerprints — are unchanged.

Unknown names raise :class:`~repro.errors.RuleError` listing what is
available.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..errors import RuleError
from .negative import ComparableMismatchRule, default_negative_rules
from .positive import ExactNumberRule, award_project_rule, m1_rule


def _award_numbers_differ(**params: Any) -> ComparableMismatchRule:
    return default_negative_rules(**params)[0]


def _project_numbers_differ(**params: Any) -> ComparableMismatchRule:
    return default_negative_rules(**params)[1]


#: name -> builder for positive (sure-match) rules.
POSITIVE_RULE_REGISTRY: dict[str, Callable[..., ExactNumberRule]] = {
    "m1": m1_rule,
    "award_project": award_project_rule,
}

#: name -> builder for negative (match-flipping) rules.
NEGATIVE_RULE_REGISTRY: dict[str, Callable[..., ComparableMismatchRule]] = {
    "comparable_award_numbers_differ": _award_numbers_differ,
    "comparable_project_numbers_differ": _project_numbers_differ,
}


def _register(registry: dict, name: str, builder: Callable, what: str) -> None:
    if name in registry:
        raise RuleError(f"{what} rule {name!r} is already registered")
    registry[name] = builder


def register_positive_rule(name: str, builder: Callable[..., Any]) -> None:
    """Register a positive-rule builder (overwriting fails)."""
    _register(POSITIVE_RULE_REGISTRY, name, builder, "positive")


def register_negative_rule(name: str, builder: Callable[..., Any]) -> None:
    """Register a negative-rule builder (overwriting fails)."""
    _register(NEGATIVE_RULE_REGISTRY, name, builder, "negative")


def _create(registry: Mapping[str, Callable], config: Any, what: str) -> Any:
    if isinstance(config, str):
        kind, params = config, {}
    elif isinstance(config, Mapping):
        if "kind" not in config:
            raise RuleError(f"{what} rule config is missing 'kind': {config!r}")
        kind = config["kind"]
        params = {k: v for k, v in config.items() if k != "kind"}
    else:
        raise RuleError(
            f"{what} rule config must be a name or mapping, got {config!r}"
        )
    builder = registry.get(kind)
    if builder is None:
        raise RuleError(
            f"unknown {what} rule {kind!r}; available: {sorted(registry)}"
        )
    try:
        return builder(**params)
    except TypeError as exc:
        raise RuleError(f"bad parameters for {what} rule {kind!r}: {exc}") from exc


def create_positive_rules(configs: Sequence[Any]) -> list[ExactNumberRule]:
    """Build positive rules from a list of names / configs, in order."""
    if isinstance(configs, (str, Mapping)):
        configs = [configs]
    return [_create(POSITIVE_RULE_REGISTRY, c, "positive") for c in configs]


def create_negative_rules(configs: Sequence[Any]) -> list[ComparableMismatchRule]:
    """Build negative rules; ``"default"`` expands to both Section-12
    clauses in recipe order."""
    if isinstance(configs, (str, Mapping)):
        configs = [configs]
    out: list[ComparableMismatchRule] = []
    for config in configs:
        if config == "default":
            out.extend(default_negative_rules())
        else:
            out.append(_create(NEGATIVE_RULE_REGISTRY, config, "negative"))
    return out
