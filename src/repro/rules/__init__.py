"""Match-definition rules: positive (sure match) and negative (flip)."""

from .negative import (
    ComparableMismatchRule,
    apply_negative_rules,
    default_negative_rules,
)
from .positive import (
    ExactNumberRule,
    award_project_rule,
    m1_rule,
    sure_matches,
)

__all__ = [
    "ComparableMismatchRule",
    "ExactNumberRule",
    "apply_negative_rules",
    "award_project_rule",
    "default_negative_rules",
    "m1_rule",
    "sure_matches",
]
