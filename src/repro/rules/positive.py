"""Positive (sure-match) rules.

The match definition supplies rules that *guarantee* a match:

* **M1** — the suffix of the UMETRICS ``UniqueAwardNumber`` equals USDA's
  ``Award Number`` (Section 5).
* **award/project-number rule** — the same suffix equals USDA's
  ``Project Number`` (discovered mid-project, Section 10).

Both are exact-equality rules after extracting the suffix, so they can be
evaluated over full tables with an index rather than over A x B.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import RuleError
from ..table import Table
from ..table.column import is_missing
from ..text.patterns import award_number_suffix

Extractor = Callable[[Any], Any]


def _identity(value: Any) -> Any:
    return value


@dataclass(frozen=True)
class ExactNumberRule:
    """A positive rule: extractor(left attr) == extractor(right attr).

    Missing values (or extractors returning ``None``) never fire the rule.
    """

    name: str
    l_attr: str
    r_attr: str
    l_extract: Extractor = field(default=_identity)
    r_extract: Extractor = field(default=_identity)

    def _left_value(self, l_row: dict[str, Any]) -> Any:
        value = l_row.get(self.l_attr)
        if is_missing(value):
            return None
        return self.l_extract(value)

    def _right_value(self, r_row: dict[str, Any]) -> Any:
        value = r_row.get(self.r_attr)
        if is_missing(value):
            return None
        return self.r_extract(value)

    def matches(self, l_row: dict[str, Any], r_row: dict[str, Any]) -> bool:
        """True when the rule declares (l_row, r_row) a sure match."""
        left = self._left_value(l_row)
        if left is None:
            return False
        right = self._right_value(r_row)
        if right is None:
            return False
        return left == right

    def pairs(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str, name: str = ""
    ) -> CandidateSet:
        """All pairs of A x B firing this rule, computed via an index."""
        if self.l_attr not in ltable:
            raise RuleError(f"rule {self.name!r}: no column {self.l_attr!r} in left table")
        if self.r_attr not in rtable:
            raise RuleError(f"rule {self.name!r}: no column {self.r_attr!r} in right table")
        index: dict[Any, list[Any]] = {}
        for rid, value in zip(rtable[r_key], rtable[self.r_attr]):
            if is_missing(value):
                continue
            extracted = self.r_extract(value)
            if extracted is not None:
                index.setdefault(extracted, []).append(rid)
        pairs: list[Pair] = []
        for lid, value in zip(ltable[l_key], ltable[self.l_attr]):
            if is_missing(value):
                continue
            extracted = self.l_extract(value)
            if extracted is None:
                continue
            for rid in index.get(extracted, ()):
                pairs.append((lid, rid))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.name)


def m1_rule(l_attr: str = "AwardNumber", r_attr: str = "AwardNumber") -> ExactNumberRule:
    """The M1 positive rule over the projected tables."""
    return ExactNumberRule(
        name="M1",
        l_attr=l_attr,
        r_attr=r_attr,
        l_extract=award_number_suffix,
    )


def award_project_rule(
    l_attr: str = "AwardNumber", r_attr: str = "ProjectNumber"
) -> ExactNumberRule:
    """The Section-10 rule: UMETRICS award number vs USDA project number."""
    return ExactNumberRule(
        name="award_number=project_number",
        l_attr=l_attr,
        r_attr=r_attr,
        l_extract=award_number_suffix,
    )


def sure_matches(
    rules: Sequence[ExactNumberRule],
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    name: str = "sure_matches",
) -> CandidateSet:
    """Union of all pairs fired by the positive *rules*."""
    if not rules:
        raise RuleError("need at least one positive rule")
    result = rules[0].pairs(ltable, rtable, l_key, r_key)
    for rule in rules[1:]:
        result = result.union(rule.pairs(ltable, rtable, l_key, r_key))
    result.name = name
    return result
