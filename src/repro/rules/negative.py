"""Negative (match-flipping) rules.

Section 12: the domain experts defined a rule flipping predicted matches to
non-matches when identifying numbers are *comparable* — they follow the
same pattern (see :func:`repro.text.patterns.comparable`) — yet differ:

* UMETRICS award-number suffix vs USDA award number, or
* UMETRICS award-number suffix vs USDA project number.

Applying such rules to a learner's output buys precision at a small recall
cost ("localized changes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..blocking.candidate_set import CandidateSet, Pair
from ..text.patterns import KNOWN_AWARD_PATTERNS, award_number_suffix, comparable

Extractor = Callable[[Any], Any]


def _identity(value: Any) -> Any:
    return value


@dataclass(frozen=True)
class ComparableMismatchRule:
    """Flip a match when comparable identifiers differ.

    Fires when both extracted values are present, share a pattern from
    *known_patterns*, and are unequal.
    """

    name: str
    l_attr: str
    r_attr: str
    l_extract: Extractor = field(default=_identity)
    r_extract: Extractor = field(default=_identity)
    known_patterns: frozenset[str] = frozenset(KNOWN_AWARD_PATTERNS)

    def fires(self, l_row: dict[str, Any], r_row: dict[str, Any]) -> bool:
        left = l_row.get(self.l_attr)
        right = r_row.get(self.r_attr)
        left = None if left is None else self.l_extract(left)
        right = None if right is None else self.r_extract(right)
        if left is None or right is None:
            return False
        if left == right:
            return False
        return comparable(left, right, set(self.known_patterns))


def default_negative_rules(
    l_attr: str = "AwardNumber",
    r_award_attr: str = "AwardNumber",
    r_project_attr: str = "ProjectNumber",
) -> list[ComparableMismatchRule]:
    """The two clauses of the Section-12 negative matching rule."""
    return [
        ComparableMismatchRule(
            name="comparable_award_numbers_differ",
            l_attr=l_attr,
            r_attr=r_award_attr,
            l_extract=award_number_suffix,
        ),
        ComparableMismatchRule(
            name="comparable_project_numbers_differ",
            l_attr=l_attr,
            r_attr=r_project_attr,
            l_extract=award_number_suffix,
        ),
    ]


def apply_negative_rules(
    matches: Sequence[Pair],
    candidates: CandidateSet,
    rules: Sequence[ComparableMismatchRule],
) -> tuple[list[Pair], list[tuple[Pair, str]]]:
    """Filter *matches* through the negative rules.

    Returns ``(kept_matches, flipped)`` where *flipped* lists each removed
    pair with the name of the rule that fired (for the audit trail the
    domain experts reviewed).
    """
    kept: list[Pair] = []
    flipped: list[tuple[Pair, str]] = []
    for pair in matches:
        l_row, r_row = candidates.record_pair(tuple(pair))
        fired = next((rule.name for rule in rules if rule.fires(l_row, r_row)), None)
        if fired is None:
            kept.append(tuple(pair))
        else:
            flipped.append((tuple(pair), fired))
    return kept, flipped
