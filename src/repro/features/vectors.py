"""Feature-vector extraction: candidate pairs -> numpy matrices.

Converts candidate pairs (or any list of id pairs over the base tables)
into a dense feature matrix, with NaN marking features whose inputs were
missing. The companion :class:`FeatureMatrix` keeps the pair ids and
feature names aligned with the rows/columns, which the debugging tools
need to point back at records.

Extraction is the Section-9 hot path (n pairs x d features Python calls);
``extract_feature_vectors`` accepts ``workers=`` to spread contiguous
pair-index chunks over a process pool. Worker processes rebuild the
feature functions from their :attr:`~repro.features.feature.Feature.spec`
recipes (the closures themselves do not pickle); features without a spec
(custom black-box features) force the serial path, which is also the
fallback whenever the pool cannot run. Parallel results are identical to
serial ones: same chunk code, concatenated in pair order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import FeatureError
from ..ml.impute import MeanImputer
from ..runtime.executor import ChunkedExecutor, chunk_ranges
from ..runtime.instrument import Instrumentation, count, stage
from .feature import feature_from_spec
from .generate import FeatureSet


@dataclass
class FeatureMatrix:
    """A feature matrix with row (pair) and column (feature) identity."""

    pairs: list[Pair]
    feature_names: list[str]
    values: np.ndarray
    #: Lazy pair -> row-index map; built on first ``row_for`` call so the
    #: matcher-debugging loop stays O(1) per lookup instead of O(n).
    _row_index: dict[Pair, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.values.shape != (len(self.pairs), len(self.feature_names)):
            raise FeatureError(
                f"matrix shape {self.values.shape} does not match "
                f"{len(self.pairs)} pairs x {len(self.feature_names)} features"
            )

    def __len__(self) -> int:
        return len(self.pairs)

    def row_for(self, pair: Pair) -> np.ndarray:
        if self._row_index is None:
            self._row_index = {tuple(p): i for i, p in enumerate(self.pairs)}
        try:
            index = self._row_index[tuple(pair)]
        except KeyError:
            # same exception family list.index raised before the dict lookup
            raise ValueError(f"pair {tuple(pair)!r} is not in the feature matrix") from None
        return self.values[index]

    def select_rows(self, indices: Sequence[int]) -> "FeatureMatrix":
        indices = list(indices)
        return FeatureMatrix(
            pairs=[self.pairs[i] for i in indices],
            feature_names=list(self.feature_names),
            values=self.values[indices],
        )

    def impute_means(self, imputer: MeanImputer | None = None) -> "FeatureMatrix":
        """Fill NaN with column means; pass a fitted imputer to reuse the
        training-set means on a new matrix (Section 9 applies the same
        imputation to the labeled set and the candidate set)."""
        if imputer is None:
            imputer = MeanImputer()
            imputer.fit(self.values)
        filled = imputer.transform(self.values)
        return FeatureMatrix(list(self.pairs), list(self.feature_names), filled)


def _extract_chunk(
    row_pairs: list[tuple[dict[str, Any], dict[str, Any]]],
    specs: list[tuple],
) -> np.ndarray:
    """Compute the sub-matrix for a chunk of record pairs.

    Runs in worker processes: *specs* are rebuilt into live features there.
    """
    features = [feature_from_spec(spec) for spec in specs]
    values = np.empty((len(row_pairs), len(features)))
    for i, (l_row, r_row) in enumerate(row_pairs):
        for j, feature in enumerate(features):
            values[i, j] = feature.from_rows(l_row, r_row)
    return values


def extract_feature_vectors(
    candidates: CandidateSet,
    feature_set: FeatureSet,
    pairs: Sequence[Pair] | None = None,
    workers: int = 1,
    instrumentation: Instrumentation | None = None,
    store=None,
) -> FeatureMatrix:
    """Compute the feature matrix for *pairs* (default: all candidates).

    ``workers >= 2`` splits the pair list into contiguous index chunks and
    evaluates them in a process pool; the result is identical to the
    serial computation (``workers=1``, the default). With a *store*, the
    extraction is memoized by the content fingerprints of the base
    tables, the pair list and the feature-set recipes (lazy import: the
    store's codecs build :class:`FeatureMatrix` objects from this module).
    """
    if store is not None:
        from ..store.stages import cached_extract

        return cached_extract(
            store,
            candidates,
            feature_set,
            pairs=pairs,
            workers=workers,
            instrumentation=instrumentation,
        )
    if pairs is None:
        pairs = candidates.pairs
    pairs = [tuple(p) for p in pairs]
    n, d = len(pairs), len(feature_set)
    features = list(feature_set)
    specs = [f.spec for f in features]
    with stage(instrumentation, "extract_features"):
        count(instrumentation, "pairs", n)
        count(instrumentation, "cells", n * d)
        if workers > 1 and n > 1 and all(spec is not None for spec in specs):
            values = _extract_parallel(
                candidates, pairs, specs, workers, instrumentation, d
            )
        else:
            values = np.empty((n, d))
            for i, pair in enumerate(pairs):
                l_row, r_row = candidates.record_pair(pair)
                for j, feature in enumerate(features):
                    values[i, j] = feature.from_rows(l_row, r_row)
    return FeatureMatrix(pairs=pairs, feature_names=feature_set.names, values=values)


def _extract_parallel(
    candidates: CandidateSet,
    pairs: list[Pair],
    specs: list[tuple],
    workers: int,
    instrumentation: Instrumentation | None,
    d: int,
) -> np.ndarray:
    ranges = chunk_ranges(len(pairs), workers)
    payloads = []
    for start, stop in ranges:
        row_pairs = [candidates.record_pair(pair) for pair in pairs[start:stop]]
        payloads.append((row_pairs, specs))
    executor = ChunkedExecutor(workers=workers, instrumentation=instrumentation)
    blocks = executor.map(
        _extract_chunk, payloads, sizes=[stop - start for start, stop in ranges]
    )
    if not blocks:
        return np.empty((0, d))
    return np.vstack(blocks)
