"""Feature-vector extraction: candidate pairs -> numpy matrices.

Converts candidate pairs (or any list of id pairs over the base tables)
into a dense feature matrix, with NaN marking features whose inputs were
missing. The companion :class:`FeatureMatrix` keeps the pair ids and
feature names aligned with the rows/columns, which the debugging tools
need to point back at records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import FeatureError
from ..ml.impute import MeanImputer
from .generate import FeatureSet


@dataclass
class FeatureMatrix:
    """A feature matrix with row (pair) and column (feature) identity."""

    pairs: list[Pair]
    feature_names: list[str]
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != (len(self.pairs), len(self.feature_names)):
            raise FeatureError(
                f"matrix shape {self.values.shape} does not match "
                f"{len(self.pairs)} pairs x {len(self.feature_names)} features"
            )

    def __len__(self) -> int:
        return len(self.pairs)

    def row_for(self, pair: Pair) -> np.ndarray:
        index = self.pairs.index(tuple(pair))
        return self.values[index]

    def select_rows(self, indices: Sequence[int]) -> "FeatureMatrix":
        indices = list(indices)
        return FeatureMatrix(
            pairs=[self.pairs[i] for i in indices],
            feature_names=list(self.feature_names),
            values=self.values[indices],
        )

    def impute_means(self, imputer: MeanImputer | None = None) -> "FeatureMatrix":
        """Fill NaN with column means; pass a fitted imputer to reuse the
        training-set means on a new matrix (Section 9 applies the same
        imputation to the labeled set and the candidate set)."""
        if imputer is None:
            imputer = MeanImputer()
            imputer.fit(self.values)
        filled = imputer.transform(self.values)
        return FeatureMatrix(list(self.pairs), list(self.feature_names), filled)


def extract_feature_vectors(
    candidates: CandidateSet,
    feature_set: FeatureSet,
    pairs: Sequence[Pair] | None = None,
) -> FeatureMatrix:
    """Compute the feature matrix for *pairs* (default: all candidates)."""
    if pairs is None:
        pairs = candidates.pairs
    pairs = [tuple(p) for p in pairs]
    n, d = len(pairs), len(feature_set)
    values = np.empty((n, d))
    features = list(feature_set)
    for i, pair in enumerate(pairs):
        l_row, r_row = candidates.record_pair(pair)
        for j, feature in enumerate(features):
            values[i, j] = feature.from_rows(l_row, r_row)
    return FeatureMatrix(pairs=pairs, feature_names=feature_set.names, values=values)
