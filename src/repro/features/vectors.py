"""Feature-vector extraction: candidate pairs -> numpy matrices.

Converts candidate pairs (or any list of id pairs over the base tables)
into a dense feature matrix, with NaN marking features whose inputs were
missing. The companion :class:`FeatureMatrix` keeps the pair ids and
feature names aligned with the rows/columns, which the debugging tools
need to point back at records.

Extraction is the Section-9 hot path (n pairs x d features Python calls).
When the kernel switch (:func:`~repro.similarity.kernels.kernels_enabled`)
is on — the default — extraction runs *columnar over interned ids*:

* token set measures (``jac``/``cos``/``dice``/``overlap_coeff``) are
  gathered into :class:`~repro.runtime.columnar.TokenColumn` chunk
  columns from the shared :class:`~repro.runtime.cache.TokenCache` (each
  cell tokenized and interned once per recipe, not once per pair per
  feature) and scored one *chunk* per call by the batch kernels in
  :mod:`repro.similarity.batch` — no per-pair Python call survives on
  the hot path;
* Monge-Elkan reads token *bags* in tokenizer order and memoizes its
  inner Jaro-Winkler calls per distinct token-id pair;
* string/numeric features keep their reference functions but memoize per
  distinct ``(left value, right value)`` pair — cell values repeat
  heavily across candidate pairs.

All of it produces cell-for-cell identical matrices to the legacy
row-dict loop (the kernels mirror the reference float expressions, and
memoization only caches pure functions), which the bit-identity tests
assert.

``extract_feature_vectors`` resolves an
:class:`~repro.runtime.context.EngineSession` (ambient, or built from the
deprecated ``workers=``/``pool=`` shims) and spreads contiguous
pair-index chunks over the session's process pool;
kernel chunks ship compact id arrays, legacy chunks rebuild feature
functions from their :attr:`~repro.features.feature.Feature.spec` recipes
(the closures themselves do not pickle). Features without a spec (custom
black-box features) force the serial path, which is also the fallback
whenever the pool cannot run. Parallel results are identical to serial
ones: same chunk code, concatenated in pair order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import FeatureError
from ..ml.impute import MeanImputer
from ..runtime.cache import TokenCache, lowercase
from ..runtime.columnar import TokenColumn, gather_column
from ..runtime.context import EngineSession, resolve_session
from ..runtime.executor import WorkerPool, chunk_ranges
from ..runtime.instrument import Instrumentation, count, stage
from ..similarity import batch, kernels
from ..similarity.sequence import jaro_winkler
from .feature import NAN, Feature, feature_from_spec
from .generate import FeatureSet


@dataclass
class FeatureMatrix:
    """A feature matrix with row (pair) and column (feature) identity."""

    pairs: list[Pair]
    feature_names: list[str]
    values: np.ndarray
    #: Lazy pair -> row-index map; built on first ``row_for`` call so the
    #: matcher-debugging loop stays O(1) per lookup instead of O(n).
    _row_index: dict[Pair, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.values.shape != (len(self.pairs), len(self.feature_names)):
            raise FeatureError(
                f"matrix shape {self.values.shape} does not match "
                f"{len(self.pairs)} pairs x {len(self.feature_names)} features"
            )

    def __len__(self) -> int:
        return len(self.pairs)

    def row_for(self, pair: Pair) -> np.ndarray:
        if self._row_index is None:
            self._row_index = {tuple(p): i for i, p in enumerate(self.pairs)}
        try:
            index = self._row_index[tuple(pair)]
        except KeyError:
            # same exception family list.index raised before the dict lookup
            raise ValueError(f"pair {tuple(pair)!r} is not in the feature matrix") from None
        return self.values[index]

    def select_rows(self, indices: Sequence[int]) -> "FeatureMatrix":
        indices = list(indices)
        return FeatureMatrix(
            pairs=[self.pairs[i] for i in indices],
            feature_names=list(self.feature_names),
            values=self.values[indices],
        )

    def impute_means(self, imputer: MeanImputer | None = None) -> "FeatureMatrix":
        """Fill NaN with column means; pass a fitted imputer to reuse the
        training-set means on a new matrix (Section 9 applies the same
        imputation to the labeled set and the candidate set)."""
        if imputer is None:
            imputer = MeanImputer()
            imputer.fit(self.values)
        filled = imputer.transform(self.values)
        return FeatureMatrix(list(self.pairs), list(self.feature_names), filled)


def _extract_chunk(
    row_pairs: list[tuple[dict[str, Any], dict[str, Any]]],
    specs: list[tuple],
) -> np.ndarray:
    """Compute the sub-matrix for a chunk of record pairs (legacy path).

    Runs in worker processes: *specs* are rebuilt into live features there.
    """
    features = [feature_from_spec(spec) for spec in specs]
    values = np.empty((len(row_pairs), len(features)))
    for i, (l_row, r_row) in enumerate(row_pairs):
        for j, feature in enumerate(features):
            values[i, j] = feature.from_rows(l_row, r_row)
    return values


def _monge_elkan_ids(
    a: Sequence[int],
    b: Sequence[int],
    token_map: dict[int, str],
    jw_memo: dict[tuple[int, int], float],
) -> float:
    """Monge-Elkan over interned token bags, Jaro-Winkler inner similarity.

    Mirrors :func:`~repro.similarity.hybrid.monge_elkan` step for step —
    same guards, same left-to-right accumulation order — so the float is
    bit-identical; the memo only skips *recomputing* a pure inner call.
    """
    if not len(a) and not len(b):
        return 1.0
    if not len(a) or not len(b):
        return 0.0
    total = 0.0
    for ia in a:
        ta = token_map[ia]
        best = None
        for ib in b:
            key = (ia, ib)
            sim = jw_memo.get(key)
            if sim is None:
                sim = jw_memo[key] = jaro_winkler(ta, token_map[ib])
            if best is None or sim > best:
                best = sim
        total += best
    return total / len(a)


def _kernel_columns(
    candidates: CandidateSet,
    pairs: list[Pair],
    features: list[Feature],
    cache: TokenCache,
) -> tuple[list[tuple], dict[int, str]]:
    """Columnar inputs for the kernel extraction, one entry per feature.

    Each column is ``(kind, meta, a_list, b_list)`` with the per-pair
    inputs already gathered (``a_list[i]`` belongs to ``pairs[i]``):

    * ``("set", measure, TokenColumn, TokenColumn)`` — columnar token-id
      sets for the batch kernels in :mod:`repro.similarity.batch`
      (missing cells ride along as the columns' ``missing`` rows and
      come out as NaN);
    * ``("mel", None, bag, bag)`` — tokenizer-order id bags;
    * ``("value", spec, value, value)`` — raw cell values for
      string/numeric/custom features (``spec`` rebuilds the function in
      workers; it is ``None`` for custom features, which never leave the
      serial path).

    Also returns the token-id -> string map the Monge-Elkan inner
    similarity needs (only ids actually reachable from *pairs*).
    """
    from ..text.tokenizers import TOKENIZERS

    ltable, rtable = candidates.ltable, candidates.rtable
    l_index, r_index = candidates.l_row_index, candidates.r_row_index
    li = [l_index[pair[0]] for pair in pairs]
    ri = [r_index[pair[1]] for pair in pairs]
    columns: list[tuple] = []
    mel_ids: set[int] = set()
    for feature in features:
        spec = feature.spec
        if spec is not None and spec[0] == "token":
            _, l_attr, r_attr, measure, tokenizer_name, casefold = spec
            tokenizer = TOKENIZERS[tokenizer_name]
            normalizer = lowercase if casefold else None
            if measure in batch.BATCH_KERNELS:
                l_col = cache.column_token_ids(ltable, l_attr, tokenizer, normalizer)
                r_col = cache.column_token_ids(rtable, r_attr, tokenizer, normalizer)
                columns.append(
                    ("set", measure, gather_column(l_col, li), gather_column(r_col, ri))
                )
                continue
            if measure == "mel":
                l_col = cache.column_token_bag_ids(ltable, l_attr, tokenizer, normalizer)
                r_col = cache.column_token_bag_ids(rtable, r_attr, tokenizer, normalizer)
                a_list = [l_col[i] for i in li]
                b_list = [r_col[i] for i in ri]
                for bag in a_list:
                    if bag is not None:
                        mel_ids.update(bag)
                for bag in b_list:
                    if bag is not None:
                        mel_ids.update(bag)
                columns.append(("mel", None, a_list, b_list))
                continue
        l_col = ltable[feature.l_attr]
        r_col = rtable[feature.r_attr]
        columns.append(
            ("value", spec, [l_col[i] for i in li], [r_col[i] for i in ri])
        )
    token_of = cache.vocabulary.token_of
    token_map = {tid: token_of(tid) for tid in mel_ids}
    return columns, token_map


def _extract_kernel_chunk(
    n: int,
    columns: list[tuple],
    token_map: dict[int, str],
    functions: list[Any] | None = None,
) -> np.ndarray:
    """Evaluate kernel columns for *n* pairs (the serial path runs it
    inline over all pairs; workers run it per chunk with *functions*
    unset and rebuild value-feature functions from their specs)."""
    values = np.empty((n, len(columns)))
    jw_memo: dict[tuple[int, int], float] = {}
    for j, (kind, meta, a_list, b_list) in enumerate(columns):
        if kind == "set":
            # one batch-kernel call scores the whole chunk column; missing
            # cells surface as NaN straight from the kernel
            values[:, j] = np.frombuffer(batch.score_batch(meta, a_list, b_list))
        elif kind == "mel":
            for i in range(n):
                a, b = a_list[i], b_list[i]
                values[i, j] = (
                    NAN
                    if a is None or b is None
                    else _monge_elkan_ids(a, b, token_map, jw_memo)
                )
        else:
            fn = functions[j] if functions is not None else feature_from_spec(meta).function
            if meta is None:
                # custom feature: purity unknown, never memoize
                for i in range(n):
                    values[i, j] = fn(a_list[i], b_list[i])
                continue
            memo: dict[tuple[Any, Any], float] = {}
            for i in range(n):
                a, b = a_list[i], b_list[i]
                try:
                    value = memo[(a, b)]
                except KeyError:
                    value = memo[(a, b)] = fn(a, b)
                except TypeError:  # unhashable cell value
                    value = fn(a, b)
                values[i, j] = value
    return values


def _slice_column(column: tuple, start: int, stop: int) -> tuple:
    kind, meta, a_list, b_list = column
    if isinstance(a_list, TokenColumn):
        return (kind, meta, a_list.slice(start, stop), b_list.slice(start, stop))
    return (kind, meta, a_list[start:stop], b_list[start:stop])


def extract_feature_vectors(
    candidates: CandidateSet,
    feature_set: FeatureSet,
    pairs: Sequence[Pair] | None = None,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    store=None,
    pool: WorkerPool | None = None,
    *,
    session: EngineSession | None = None,
) -> FeatureMatrix:
    """Compute the feature matrix for *pairs* (default: all candidates).

    Runs as an :class:`~repro.store.stages.ExtractStage` through the
    resolved :class:`~repro.runtime.context.EngineSession`: a session with
    ``workers >= 2`` (or a shared pool) splits the pair list into
    contiguous index chunks and evaluates them in a process pool — the
    result is identical to the serial computation — and a session with a
    store memoizes the extraction by the content fingerprints of the base
    tables, the pair list and the feature-set recipes.
    ``workers``/``instrumentation``/``store``/``pool`` are deprecated
    shims over the ambient session (``None`` inherits).
    """
    # Lazy import: the store's codecs build FeatureMatrix objects from
    # this module.
    from ..store.stages import ExtractStage

    resolved = resolve_session(
        session,
        workers=workers,
        instrumentation=instrumentation,
        store=store,
        pool=pool,
    )
    return resolved.run_stage(ExtractStage(candidates, feature_set, pairs=pairs))


def _extract_impl(
    candidates: CandidateSet,
    feature_set: FeatureSet,
    pairs: Sequence[Pair] | None,
    session: EngineSession,
) -> FeatureMatrix:
    """The extraction body (no store glue — the session already applied it)."""
    workers = session.workers
    instrumentation = session.instrumentation
    pool = session.worker_pool
    if pairs is None:
        pairs = candidates.pairs
    pairs = [tuple(p) for p in pairs]
    n, d = len(pairs), len(feature_set)
    features = list(feature_set)
    specs = [f.spec for f in features]
    parallel_ok = (
        (workers > 1 or (pool is not None and pool.active))
        and n > 1
        and all(spec is not None for spec in specs)
    )
    with stage(instrumentation, "extract_features"):
        count(instrumentation, "pairs", n)
        count(instrumentation, "cells", n * d)
        if session.kernels_enabled():
            columns, token_map = _kernel_columns(
                candidates, pairs, features, session.token_cache
            )
            if parallel_ok:
                values = _extract_kernel_parallel(
                    columns, token_map, n, d, workers, instrumentation, pool,
                    [f.function for f in features],
                )
            else:
                values = _extract_kernel_chunk(
                    n, columns, token_map, [f.function for f in features]
                )
        elif parallel_ok:
            values = _extract_parallel(candidates, pairs, specs, d, session)
        else:
            values = np.empty((n, d))
            for i, pair in enumerate(pairs):
                l_row, r_row = candidates.record_pair(pair)
                for j, feature in enumerate(features):
                    values[i, j] = feature.from_rows(l_row, r_row)
    return FeatureMatrix(pairs=pairs, feature_names=feature_set.names, values=values)


def _extract_kernel_parallel(
    columns: list[tuple],
    token_map: dict[int, str],
    n: int,
    d: int,
    workers: int,
    instrumentation: Instrumentation | None,
    pool: WorkerPool | None,
    functions: list[Any],
) -> np.ndarray:
    """Parallel kernel extraction with the mel columns kept in the parent.

    Monge-Elkan resists row chunking: its cost is dominated by the
    *distinct* token-pair Jaro-Winkler evaluations, and nearly every
    distinct pair occurs in every row chunk — so each worker would redo
    close to the whole memoized workload. Instead the set/value columns
    (cleanly row-parallel) are submitted to the pool asynchronously and
    the parent computes the mel columns with the run-wide memo *while the
    workers run*, then scatters both into the result. Any pool failure
    recomputes the submitted columns inline — identical either way.
    """
    effective = workers if workers > 1 else (pool.workers if pool else 1)
    mel_idx = [j for j, c in enumerate(columns) if c[0] == "mel"]
    rest_idx = [j for j, c in enumerate(columns) if c[0] != "mel"]
    rest_cols = [columns[j] for j in rest_idx]
    ranges = chunk_ranges(n, effective)
    submitted = None
    owner: WorkerPool | None = None
    target = pool
    if rest_cols and len(ranges) > 1:
        if target is None:
            target = owner = WorkerPool(min(effective, len(ranges)))
        payloads = [
            (stop - start, [_slice_column(c, start, stop) for c in rest_cols], {})
            for start, stop in ranges
        ]
        submitted = target.submit_chunks(_extract_kernel_chunk, payloads)
    values = np.empty((n, d))
    if mel_idx:
        values[:, mel_idx] = _extract_kernel_chunk(
            n, [columns[j] for j in mel_idx], token_map
        )
    outcomes = None
    if submitted is not None:
        futures, shipped = submitted
        outcomes = target.gather(futures)
        if outcomes is not None:
            count(instrumentation, "pickled_bytes", shipped)
            count(instrumentation, "pickled_chunks", len(futures))
            for (start, stop), (block, seconds, pid, extras) in zip(ranges, outcomes):
                if instrumentation is not None:
                    instrumentation.record_chunk(pid, stop - start, seconds, **extras)
                values[start:stop, rest_idx] = block
    if owner is not None:
        owner.shutdown()
    if rest_cols and outcomes is None:
        count(instrumentation, "parallel_fallbacks")
        values[:, rest_idx] = _extract_kernel_chunk(
            n, rest_cols, {}, [functions[j] for j in rest_idx]
        )
    return values


def _extract_parallel(
    candidates: CandidateSet,
    pairs: list[Pair],
    specs: list[tuple],
    d: int,
    session: EngineSession,
) -> np.ndarray:
    workers = session.workers
    pool = session.worker_pool
    ranges = chunk_ranges(len(pairs), workers if workers > 1 else (pool.workers if pool else 1))
    payloads = []
    for start, stop in ranges:
        row_pairs = [candidates.record_pair(pair) for pair in pairs[start:stop]]
        payloads.append((row_pairs, specs))
    blocks = session.map_chunks(
        _extract_chunk, payloads, sizes=[stop - start for start, stop in ranges]
    )
    if not blocks:
        return np.empty((0, d))
    return np.vstack(blocks)
