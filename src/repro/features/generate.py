"""Automatic feature generation from two table schemas.

Section 9 (footnote 7): "we applied PyMatcher to the schemas of the two
tables ... to automatically generate a large set of features, which include
both string related features (e.g., Jaccard over 3grams, edit distance,
etc.) and numeric features". :func:`generate_features` reproduces that:
same-named attribute pairs are typed (:mod:`repro.table.schema`) and each
pair expands into the recipe list of :mod:`repro.features.types`.

After matcher debugging revealed mismatches caused purely by letter case,
the team "added more features to handle this problem" rather than
lower-casing the data (footnote 8) — :func:`add_case_insensitive_variants`
is that step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..errors import FeatureError
from ..table import Table
from ..table.schema import infer_type
from ..text.tokenizers import TOKENIZERS
from .feature import Feature, numeric_feature, string_feature, token_feature
from .types import recipes_for


@dataclass
class FeatureSet:
    """An ordered collection of features with unique names."""

    features: list[Feature] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.features)

    def __iter__(self) -> Iterator[Feature]:
        return iter(self.features)

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.features]

    def add(self, feature: Feature) -> None:
        if feature.name in set(self.names):
            raise FeatureError(f"duplicate feature name {feature.name!r}")
        self.features.append(feature)

    def get(self, name: str) -> Feature:
        for f in self.features:
            if f.name == name:
                return f
        raise FeatureError(f"no feature named {name!r}")

    def drop(self, names: Sequence[str]) -> "FeatureSet":
        """A new set without the named features."""
        unknown = set(names) - set(self.names)
        if unknown:
            raise FeatureError(f"cannot drop unknown features {sorted(unknown)}")
        return FeatureSet([f for f in self.features if f.name not in set(names)])


def _build(recipe, l_attr: str, r_attr: str, casefold: bool) -> Feature:
    kind = recipe[0]
    if kind == "string":
        return string_feature(l_attr, r_attr, recipe[1], casefold=casefold)
    if kind == "token":
        tokenizer_name = recipe[2]
        return token_feature(
            l_attr, r_attr, recipe[1], TOKENIZERS[tokenizer_name], tokenizer_name,
            casefold=casefold,
        )
    if kind == "numeric":
        return numeric_feature(l_attr, r_attr, recipe[1])
    raise FeatureError(f"unknown recipe kind {kind!r}")


def generate_features(
    ltable: Table,
    rtable: Table,
    exclude_attrs: Sequence[str] = (),
) -> FeatureSet:
    """Generate features for every same-named attribute pair.

    Attributes listed in *exclude_attrs* (keys, output-only bookkeeping
    columns like "AccessionNumber") are skipped, as are pairs whose types
    do not combine (see :func:`repro.features.types.combined_type`).
    """
    skip = set(exclude_attrs)
    feature_set = FeatureSet()
    for attr in ltable.columns:
        if attr in skip or attr not in rtable:
            continue
        l_type = infer_type(ltable[attr])
        r_type = infer_type(rtable[attr])
        for recipe in recipes_for(l_type, r_type):
            feature_set.add(_build(recipe, attr, attr, casefold=False))
    return feature_set


def add_case_insensitive_variants(
    feature_set: FeatureSet, attrs: Sequence[str] | None = None
) -> FeatureSet:
    """Return a new set with ``_ci`` variants of the string/token features.

    *attrs* restricts the duplication to given attribute names (the case
    study only needed title features); ``None`` duplicates all eligible
    features. Numeric features have no case to fold and are skipped.
    """
    out = FeatureSet(list(feature_set.features))
    for feature in feature_set.features:
        if attrs is not None and feature.l_attr not in set(attrs):
            continue
        if feature.name.endswith("_ci"):
            continue
        ci_feature = _casefolded_variant(feature)
        if ci_feature is not None and ci_feature.name not in set(out.names):
            out.add(ci_feature)
    return out


def _casefolded_variant(feature: Feature) -> Feature | None:
    """The ``_ci`` twin of *feature*, or ``None`` when it has no case to fold.

    The structured :attr:`~repro.features.feature.Feature.spec` recipe is
    authoritative when present (it survives custom names). Name parsing is
    only a fallback for hand-built features, and verifies the
    ``{l_attr}_{r_attr}_`` prefix actually matches before slicing — a
    custom-named feature must be skipped, not mangled into a garbage
    measure string.
    """
    if feature.spec is not None:
        kind = feature.spec[0]
        if kind == "string":
            _, l_attr, r_attr, measure, casefold = feature.spec
            if casefold:
                return None  # already case-insensitive
            return string_feature(l_attr, r_attr, measure, casefold=True)
        if kind == "token":
            _, l_attr, r_attr, measure, tokenizer_name, casefold = feature.spec
            if casefold:
                return None
            return token_feature(
                l_attr, r_attr, measure, TOKENIZERS[tokenizer_name], tokenizer_name,
                casefold=True,
            )
        return None  # numeric (or future kinds): nothing to casefold
    prefix = f"{feature.l_attr}_{feature.r_attr}_"
    if not feature.name.startswith(prefix):
        return None
    return _rebuild_casefolded(feature, feature.name[len(prefix):])


def _rebuild_casefolded(feature: Feature, measure_part: str) -> Feature | None:
    """Rebuild a feature with casefolding from its name; None for numerics."""
    from .feature import STRING_MEASURES, TOKEN_MEASURES

    if measure_part in STRING_MEASURES:
        return string_feature(feature.l_attr, feature.r_attr, measure_part, casefold=True)
    for measure in TOKEN_MEASURES:
        prefix = measure + "_"
        if measure_part.startswith(prefix):
            tokenizer_name = measure_part[len(prefix) :]
            if tokenizer_name in TOKENIZERS:
                return token_feature(
                    feature.l_attr,
                    feature.r_attr,
                    measure,
                    TOKENIZERS[tokenizer_name],
                    tokenizer_name,
                    casefold=True,
                )
    return None
