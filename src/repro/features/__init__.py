"""Automatic feature generation and feature-vector extraction."""

from .corpus import soft_tfidf_feature
from .feature import (
    Feature,
    custom_feature,
    feature_from_spec,
    numeric_feature,
    string_feature,
    token_feature,
)
from .generate import FeatureSet, add_case_insensitive_variants, generate_features
from .types import combined_type, recipes_for
from .vectors import FeatureMatrix, extract_feature_vectors

__all__ = [
    "Feature",
    "FeatureMatrix",
    "FeatureSet",
    "add_case_insensitive_variants",
    "combined_type",
    "custom_feature",
    "extract_feature_vectors",
    "feature_from_spec",
    "generate_features",
    "numeric_feature",
    "recipes_for",
    "soft_tfidf_feature",
    "string_feature",
    "token_feature",
]
