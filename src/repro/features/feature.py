"""Feature objects: named similarity functions over record pairs.

A :class:`Feature` computes one number from the values of a left and right
attribute; missing inputs yield NaN (imputed later, Section 9). Factory
helpers build the token-based, character-based and numeric feature flavours
that automatic generation composes, including the case-insensitive variants
the case study added after matcher debugging revealed letter-case
mismatches (footnote 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from ..similarity import (
    absolute_difference,
    cosine_set,
    dice,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein_similarity,
    monge_elkan,
    overlap_coefficient,
    relative_difference,
)
from ..table.column import is_missing
from ..text.tokenizers import Tokenizer

PairFunction = Callable[[Any, Any], float]

NAN = float("nan")


@dataclass(frozen=True)
class Feature:
    """A named feature over (left attribute, right attribute).

    ``spec`` is the feature's structured recipe — enough to rebuild the
    (closure-based, hence unpicklable) ``function`` in another process via
    :func:`feature_from_spec`, and to derive variants (e.g. case-insensitive
    twins) without parsing the name. Features wrapping arbitrary callables
    have ``spec=None`` and are evaluated in-process only.
    """

    name: str
    l_attr: str
    r_attr: str
    function: PairFunction = field(repr=False)
    spec: tuple | None = field(default=None, compare=False)

    def __call__(self, l_value: Any, r_value: Any) -> float:
        return self.function(l_value, r_value)

    def from_rows(self, l_row: dict[str, Any], r_row: dict[str, Any]) -> float:
        """Evaluate on full records (pulls out the right attributes)."""
        return self.function(l_row[self.l_attr], r_row[self.r_attr])


def _guard_missing(fn: Callable[[str, str], float], casefold: bool) -> PairFunction:
    def wrapped(a: Any, b: Any) -> float:
        if is_missing(a) or is_missing(b):
            return NAN
        a, b = str(a), str(b)
        if casefold:
            a, b = a.lower(), b.lower()
        return float(fn(a, b))

    return wrapped


#: Character-level similarity registry (PyMatcher short names).
STRING_MEASURES: dict[str, Callable[[str, str], float]] = {
    "lev_sim": levenshtein_similarity,
    "jaro": jaro,
    "jw": jaro_winkler,
    # named exact_str so generated names stay distinct from the numeric
    # "exact" feature (both would otherwise serialize to "{a}_{a}_exact")
    "exact_str": lambda a, b: 1.0 if a == b else 0.0,
}

#: Token-level similarity registry.
TOKEN_MEASURES: dict[str, Callable[[list[str], list[str]], float]] = {
    "jac": jaccard,
    "cos": cosine_set,
    "dice": dice,
    "overlap_coeff": overlap_coefficient,
    "mel": monge_elkan,
}


def string_feature(
    l_attr: str,
    r_attr: str,
    measure: str,
    casefold: bool = False,
) -> Feature:
    """A character-level feature, e.g. Jaro over the raw attribute values."""
    fn = STRING_MEASURES[measure]
    suffix = "_ci" if casefold else ""
    return Feature(
        name=f"{l_attr}_{r_attr}_{measure}{suffix}",
        l_attr=l_attr,
        r_attr=r_attr,
        function=_guard_missing(fn, casefold),
        spec=("string", l_attr, r_attr, measure, casefold),
    )


def token_feature(
    l_attr: str,
    r_attr: str,
    measure: str,
    tokenizer: Tokenizer,
    tokenizer_name: str,
    casefold: bool = False,
) -> Feature:
    """A token-level feature, e.g. Jaccard over 3-grams of the values."""
    fn = TOKEN_MEASURES[measure]
    suffix = "_ci" if casefold else ""

    def wrapped(a: Any, b: Any) -> float:
        if is_missing(a) or is_missing(b):
            return NAN
        a, b = str(a), str(b)
        if casefold:
            a, b = a.lower(), b.lower()
        return float(fn(tokenizer(a), tokenizer(b)))

    return Feature(
        name=f"{l_attr}_{r_attr}_{measure}_{tokenizer_name}{suffix}",
        l_attr=l_attr,
        r_attr=r_attr,
        function=wrapped,
        spec=("token", l_attr, r_attr, measure, tokenizer_name, casefold),
    )


def numeric_feature(l_attr: str, r_attr: str, measure: str) -> Feature:
    """A numeric feature: ``exact``, ``abs_diff`` or ``rel_diff``."""

    def wrapped(a: Any, b: Any) -> float:
        if is_missing(a) or is_missing(b):
            return NAN
        try:
            fa, fb = float(a), float(b)
        except (TypeError, ValueError):
            return NAN
        if measure == "exact":
            return 1.0 if fa == fb else 0.0
        if measure == "abs_diff":
            return absolute_difference(fa, fb)
        if measure == "rel_diff":
            return relative_difference(fa, fb)
        raise KeyError(measure)

    if measure not in ("exact", "abs_diff", "rel_diff"):
        raise KeyError(measure)
    return Feature(
        name=f"{l_attr}_{r_attr}_{measure}",
        l_attr=l_attr,
        r_attr=r_attr,
        function=wrapped,
        spec=("numeric", l_attr, r_attr, measure),
    )


def feature_from_spec(spec: tuple) -> Feature:
    """Rebuild a feature from its :attr:`Feature.spec` recipe.

    This is how worker processes reconstruct feature functions (which are
    closures and cannot be pickled) from plain data.
    """
    from ..text.tokenizers import TOKENIZERS

    kind = spec[0]
    if kind == "string":
        _, l_attr, r_attr, measure, casefold = spec
        return string_feature(l_attr, r_attr, measure, casefold=casefold)
    if kind == "token":
        _, l_attr, r_attr, measure, tokenizer_name, casefold = spec
        return token_feature(
            l_attr, r_attr, measure, TOKENIZERS[tokenizer_name], tokenizer_name,
            casefold=casefold,
        )
    if kind == "numeric":
        _, l_attr, r_attr, measure = spec
        return numeric_feature(l_attr, r_attr, measure)
    raise KeyError(f"unknown feature spec kind {kind!r}")


def custom_feature(
    name: str, l_attr: str, r_attr: str, fn: Callable[[Any, Any], float]
) -> Feature:
    """Wrap an arbitrary pair function as a feature (NaN on missing)."""

    def wrapped(a: Any, b: Any) -> float:
        if is_missing(a) or is_missing(b):
            return NAN
        value = fn(a, b)
        return NAN if value is None or (isinstance(value, float) and math.isnan(value)) else float(value)

    return Feature(name=name, l_attr=l_attr, r_attr=r_attr, function=wrapped)
