"""Corpus-trained features (soft TF-IDF).

Unlike the schema-only features of :mod:`repro.features.generate`, a soft
TF-IDF feature needs a corpus to learn token weights from — both input
tables' values of the attribute. It rewards rare-token agreement and
tolerates per-token typos, which makes it a strong addition for title
attributes when the plain set measures saturate.
"""

from __future__ import annotations

from typing import Any

from ..similarity.hybrid import SoftTfIdf
from ..table import Table
from ..table.column import is_missing
from ..text.normalize import normalize_title
from ..text.tokenizers import Tokenizer, whitespace
from .feature import NAN, Feature


def _tokenize_cell(value: Any, tokenizer: Tokenizer, casefold: bool) -> list[str]:
    text = str(value)
    if casefold:
        text = str(normalize_title(text))
    return tokenizer(text)


def soft_tfidf_feature(
    ltable: Table,
    rtable: Table,
    l_attr: str,
    r_attr: str,
    tokenizer: Tokenizer = whitespace,
    tokenizer_name: str = "ws",
    threshold: float = 0.9,
    casefold: bool = True,
) -> Feature:
    """Build a soft TF-IDF feature trained on both tables' values.

    The IDF table is learned from every non-missing value of *l_attr* in
    *ltable* and *r_attr* in *rtable*; cells are normalized (lower-cased,
    special characters stripped) when *casefold* is set, matching how the
    blocking step treats titles.
    """
    corpus = [
        _tokenize_cell(v, tokenizer, casefold)
        for v in list(ltable[l_attr]) + list(rtable[r_attr])
        if not is_missing(v)
    ]
    measure = SoftTfIdf(corpus, threshold=threshold)
    suffix = "_ci" if casefold else ""

    def evaluate(a: Any, b: Any) -> float:
        if is_missing(a) or is_missing(b):
            return NAN
        return measure.score(
            _tokenize_cell(a, tokenizer, casefold),
            _tokenize_cell(b, tokenizer, casefold),
        )

    return Feature(
        name=f"{l_attr}_{r_attr}_soft_tfidf_{tokenizer_name}{suffix}",
        l_attr=l_attr,
        r_attr=r_attr,
        function=evaluate,
    )
