"""Feature recipes per attribute type.

PyMatcher picks similarity functions for an attribute pair from the coarser
of the two inferred types. The recipe table below follows its published
defaults: short strings get character-level measures, longer strings get
token-set measures over words and q-grams, numerics get exact/absolute/
relative difference.
"""

from __future__ import annotations

from ..table.schema import AttrType

#: recipe entries: ("string", measure) | ("token", measure, tokenizer_name)
#: | ("numeric", measure)
Recipe = tuple

RECIPES: dict[AttrType, list[Recipe]] = {
    AttrType.STR_EQ_1W: [
        ("string", "lev_sim"),
        ("string", "jaro"),
        ("string", "jw"),
        ("string", "exact_str"),
        ("token", "jac", "qgm_3"),
    ],
    AttrType.STR_BT_1W_5W: [
        ("token", "jac", "qgm_3"),
        ("token", "cos", "ws"),
        ("token", "jac", "ws"),
        ("token", "mel", "ws"),
        ("string", "lev_sim"),
    ],
    AttrType.STR_BT_5W_10W: [
        ("token", "jac", "qgm_3"),
        ("token", "cos", "ws"),
        ("token", "mel", "ws"),
    ],
    AttrType.STR_GT_10W: [
        ("token", "jac", "qgm_3"),
        ("token", "cos", "ws"),
    ],
    AttrType.NUMERIC: [
        ("numeric", "exact"),
        ("numeric", "abs_diff"),
        ("numeric", "rel_diff"),
    ],
    AttrType.BOOLEAN: [
        ("numeric", "exact"),
    ],
    AttrType.UNKNOWN: [],
}

_STRING_ORDER = [
    AttrType.STR_EQ_1W,
    AttrType.STR_BT_1W_5W,
    AttrType.STR_BT_5W_10W,
    AttrType.STR_GT_10W,
]


def combined_type(left: AttrType, right: AttrType) -> AttrType:
    """Resolve the recipe type for an attribute pair.

    Two string types resolve to the *longer* class (token measures stay
    meaningful; character measures on long strings are wasteful). A string
    paired with a non-string, or anything with UNKNOWN, yields UNKNOWN, so
    no features are generated — PyMatcher likewise skips type-mismatched
    attribute pairs.
    """
    if left == right:
        return left
    if left.is_string and right.is_string:
        index = max(_STRING_ORDER.index(left), _STRING_ORDER.index(right))
        return _STRING_ORDER[index]
    if {left, right} == {AttrType.NUMERIC, AttrType.BOOLEAN}:
        return AttrType.NUMERIC
    return AttrType.UNKNOWN


def recipes_for(left: AttrType, right: AttrType) -> list[Recipe]:
    """Feature recipes for an attribute pair."""
    return list(RECIPES[combined_type(left, right)])
