"""Feature-set registry: build feature sets from declarative configs.

A feature config names a registered *generator* plus its parameters:

    {"generator": "auto",
     "exclude_attrs": ["RecordId", "AccessionNumber", "ProjectNumber"],
     "case_insensitive_attrs": ["AwardTitle"]}

``auto`` is the paper's schema-driven generator
(:func:`repro.features.generate.generate_features`); the optional
``case_insensitive_attrs`` post-pass adds the Section-9 ``_ci`` variants
via :func:`~repro.features.generate.add_case_insensitive_variants`.
Because the builders delegate to the same functions the hand-written
recipe calls, a config-built set is value-equal to the legacy one — the
store's feature fingerprints cannot tell them apart.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..errors import FeatureError
from .generate import FeatureSet, add_case_insensitive_variants, generate_features


def _auto(ltable: Any, rtable: Any, exclude_attrs: Any = ()) -> FeatureSet:
    return generate_features(ltable, rtable, exclude_attrs=tuple(exclude_attrs))


#: generator name -> builder(ltable, rtable, **params) -> FeatureSet.
FEATURE_REGISTRY: dict[str, Callable[..., FeatureSet]] = {
    "auto": _auto,
}


def register_feature_generator(name: str, builder: Callable[..., Any]) -> None:
    """Register a feature-set generator (overwriting fails)."""
    if name in FEATURE_REGISTRY:
        raise FeatureError(f"feature generator {name!r} is already registered")
    FEATURE_REGISTRY[name] = builder


def section9_feature_config() -> dict[str, Any]:
    """The case study's Section-9 feature recipe as a config."""
    return {
        "generator": "auto",
        "exclude_attrs": ["RecordId", "AccessionNumber", "ProjectNumber"],
        "case_insensitive_attrs": ["AwardTitle"],
    }


def create_feature_set(
    config: "str | Mapping[str, Any]", ltable: Any, rtable: Any
) -> FeatureSet:
    """Build a feature set for a table pair from a config."""
    if isinstance(config, str):
        config = {"generator": config}
    if not isinstance(config, Mapping):
        raise FeatureError(
            f"feature config must be a generator name or mapping, got {config!r}"
        )
    params = dict(config)
    name = params.pop("generator", "auto")
    ci_attrs = params.pop("case_insensitive_attrs", None)
    builder = FEATURE_REGISTRY.get(name)
    if builder is None:
        raise FeatureError(
            f"unknown feature generator {name!r}; available: "
            f"{sorted(FEATURE_REGISTRY)}"
        )
    try:
        feature_set = builder(ltable, rtable, **params)
    except TypeError as exc:
        raise FeatureError(
            f"bad parameters for feature generator {name!r}: {exc}"
        ) from exc
    if ci_attrs is not None:
        feature_set = add_case_insensitive_variants(feature_set, attrs=list(ci_attrs))
    return feature_set
