"""Exception hierarchy for the :mod:`repro` toolkit.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class. Sub-classes mirror the major subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TableError(ReproError):
    """Problem with a :class:`repro.table.Table` operation."""


class SchemaError(TableError):
    """A referenced column does not exist or has an unexpected type."""


class KeyConstraintError(TableError):
    """A declared key or foreign key is violated by the data."""


class CatalogError(ReproError):
    """Metadata (key/foreign-key registration) is missing or inconsistent."""


class BlockingError(ReproError):
    """Invalid configuration or inputs for a blocker."""


class IncrementalBlockingError(BlockingError):
    """A blocker was asked for incremental (upsert/delete) maintenance it
    does not support, or an incremental handle was misused. Raised instead
    of silently falling back to a full re-block: callers must opt into the
    cost of ``block_tables`` explicitly."""


class FeatureError(ReproError):
    """Feature generation or feature-vector extraction failed."""


class MatcherError(ReproError):
    """A matcher was mis-configured, or used before being trained."""


class NotFittedError(MatcherError):
    """A model was asked to predict before :meth:`fit` was called."""


class RuleError(ReproError):
    """A matching rule is malformed or references unknown attributes."""


class LabelingError(ReproError):
    """Invalid labeling-protocol usage (e.g. unknown label value)."""


class LabelingToolLockedError(LabelingError):
    """The simulated cloud labeling tool only admits one active session."""


class EvaluationError(ReproError):
    """Accuracy estimation received inconsistent inputs."""


class WorkflowError(ReproError):
    """An EM workflow graph is malformed or a stage failed."""


class PlanError(WorkflowError):
    """A :class:`repro.plan.PipelineSpec` is malformed: unknown node kind,
    duplicate node id or artifact producer, a missing artifact edge, a
    dependency cycle, or a spec that cannot be serialized canonically."""


class DatasetError(ReproError):
    """Synthetic scenario generation was given invalid parameters."""


class StoreError(ReproError):
    """The artifact store hit a bad root, unknown kind or corrupt artifact."""


class UncacheableError(StoreError):
    """A pipeline input has no stable fingerprint (e.g. an unregistered
    callable), so its stage must be computed rather than cached."""


class ObsError(ReproError):
    """Telemetry problem: a malformed trace or manifest, an invalid
    metric configuration, or provenance that was never collected."""


class ServingError(ReproError):
    """The online match service was mis-configured or received a patch
    it cannot apply (e.g. rows missing the key column)."""
