"""Matcher selection by cross-validation.

Section 9: "we selected the best (i.e., the most accurate) matcher using
five-fold cross validation ... among decision tree, SVM, random forest,
logistic regression, naive Bayes, and linear regression matchers". The
selection table reports mean precision/recall/F1 per matcher and picks the
highest mean F1 (ties broken by precision, then name, for determinism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import MatcherError
from ..features.vectors import FeatureMatrix
from ..ml import (
    CVResult,
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    LinearRegressionClassifier,
    LinearSVM,
    LogisticRegression,
    MeanImputer,
    RandomForestClassifier,
    cross_validate,
)
from .ml_matcher import MLMatcher


def default_matchers(seed: int = 0) -> list[MLMatcher]:
    """The paper's six-matcher lineup."""
    return [
        MLMatcher(DecisionTreeClassifier(min_samples_leaf=4, seed=seed), "Decision Tree"),
        MLMatcher(RandomForestClassifier(n_trees=50, min_samples_leaf=2, seed=seed), "Random Forest"),
        MLMatcher(LinearSVM(seed=seed), "SVM"),
        MLMatcher(LogisticRegression(), "Logistic Regression"),
        MLMatcher(GaussianNaiveBayes(), "Naive Bayes"),
        MLMatcher(LinearRegressionClassifier(), "Linear Regression"),
    ]


@dataclass(frozen=True)
class MatcherScore:
    """Cross-validation outcome for one matcher."""

    name: str
    cv: CVResult

    @property
    def precision(self) -> float:
        return self.cv.mean_precision

    @property
    def recall(self) -> float:
        return self.cv.mean_recall

    @property
    def f1(self) -> float:
        return self.cv.mean_f1


@dataclass(frozen=True)
class SelectionResult:
    """All matcher scores plus the winner."""

    scores: tuple[MatcherScore, ...]
    best: MLMatcher

    def table(self) -> str:
        """Render the selection table."""
        lines = [f"{'matcher':<22} {'precision':>10} {'recall':>10} {'F1':>10}"]
        for s in sorted(self.scores, key=lambda s: -s.f1):
            marker = " <- selected" if s.name == self.best.name else ""
            lines.append(
                f"{s.name:<22} {s.precision:>9.1%} {s.recall:>9.1%} {s.f1:>9.1%}{marker}"
            )
        return "\n".join(lines)


def select_matcher(
    matchers: Sequence[MLMatcher],
    matrix: FeatureMatrix,
    labels: Sequence[int],
    n_folds: int = 5,
    seed: int = 0,
) -> SelectionResult:
    """Cross-validate every matcher on the labeled matrix and pick a winner.

    NaN cells are imputed once with the full labeled matrix's column means
    before cross-validating, matching the case study's procedure (impute,
    then select).
    """
    if not matchers:
        raise MatcherError("select_matcher needs at least one matcher")
    labels = np.asarray(labels, dtype=int)
    if len(labels) != len(matrix):
        raise MatcherError(f"{len(matrix)} feature rows but {len(labels)} labels")
    values = MeanImputer().fit_transform(matrix.values)
    scores = []
    for matcher in matchers:
        cv = cross_validate(matcher.model, values, labels, n_folds=n_folds, seed=seed)
        scores.append(MatcherScore(name=matcher.name, cv=cv))
    by_name = {m.name: m for m in matchers}
    best_score = max(scores, key=lambda s: (s.f1, s.precision, s.name))
    return SelectionResult(scores=tuple(scores), best=by_name[best_score.name])
