"""Learning-based matcher: a classifier + consistent imputation.

Wraps one of the :mod:`repro.ml` learners with the bookkeeping the EM
pipeline needs: the imputer fitted on the training matrix is reused when
predicting on the candidate set (Section 9 imputes both with training-set
column means), and predictions are returned keyed by record-id pair.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..blocking.candidate_set import Pair
from ..errors import MatcherError, NotFittedError
from ..features.vectors import FeatureMatrix
from ..ml.base import Classifier
from ..ml.impute import MeanImputer


class MLMatcher:
    """A named learning-based matcher.

    Parameters
    ----------
    model:
        An unfitted :class:`repro.ml.base.Classifier`.
    name:
        Display name used in selection tables ("Decision Tree", ...).
    """

    def __init__(self, model: Classifier, name: str) -> None:
        self.model = model
        self.name = name
        self._imputer: MeanImputer | None = None
        self._feature_names: list[str] | None = None

    @property
    def is_fitted(self) -> bool:
        return self._imputer is not None and self.model.is_fitted

    def clone(self) -> "MLMatcher":
        """An unfitted copy with the same underlying model configuration."""
        return MLMatcher(self.model.clone(), self.name)

    def fit(self, matrix: FeatureMatrix, labels: Sequence[int]) -> "MLMatcher":
        """Train on a labeled feature matrix (NaN allowed; imputed here)."""
        labels = np.asarray(labels, dtype=int)
        if len(labels) != len(matrix):
            raise MatcherError(
                f"{len(matrix)} feature rows but {len(labels)} labels"
            )
        self._imputer = MeanImputer().fit(matrix.values)
        self._feature_names = list(matrix.feature_names)
        self.model.fit(self._imputer.transform(matrix.values), labels)
        return self

    def _check_matrix(self, matrix: FeatureMatrix) -> np.ndarray:
        if not self.is_fitted:
            raise NotFittedError(f"matcher {self.name!r} is not fitted yet")
        if matrix.feature_names != self._feature_names:
            raise MatcherError(
                f"feature mismatch: matcher {self.name!r} was trained on "
                f"{len(self._feature_names)} features, got {len(matrix.feature_names)}"
            )
        return self._imputer.transform(matrix.values)

    def predict(self, matrix: FeatureMatrix) -> dict[Pair, int]:
        """Predict 0/1 for every pair in *matrix* (training-set imputation)."""
        values = self._check_matrix(matrix)
        predictions = self.model.predict(values)
        return {pair: int(p) for pair, p in zip(matrix.pairs, predictions)}

    def predict_matches(self, matrix: FeatureMatrix) -> list[Pair]:
        """Only the pairs predicted to match, in matrix order."""
        predictions = self.predict(matrix)
        return [pair for pair in matrix.pairs if predictions[pair] == 1]

    def predict_proba(self, matrix: FeatureMatrix) -> dict[Pair, float]:
        """Match probability per pair."""
        values = self._check_matrix(matrix)
        probs = self.model.predict_proba(values)
        return {pair: float(p) for pair, p in zip(matrix.pairs, probs)}
