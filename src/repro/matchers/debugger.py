"""Matcher debugging.

Section 9 debugs the selected matcher by random half/half splitting: train
on I, find mismatches in J; train on J, find mismatches in I. Examining
those mismatches surfaced the letter-case problem that led to adding
case-insensitive features. :func:`find_mismatches` implements the split
protocol; :func:`explain_prediction` renders the decision-tree path for a
single pair (the "decision tree matcher debugger").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..blocking.candidate_set import Pair
from ..errors import MatcherError
from ..features.vectors import FeatureMatrix
from ..ml import MeanImputer
from ..ml.model_selection import train_test_split
from ..ml.tree import DecisionTreeClassifier
from .ml_matcher import MLMatcher


@dataclass(frozen=True)
class Mismatch:
    """One labeled pair the matcher got wrong during debugging."""

    pair: Pair
    given_label: int
    predicted_label: int

    @property
    def kind(self) -> str:
        return "false positive" if self.predicted_label == 1 else "false negative"


def find_mismatches(
    matcher: MLMatcher,
    matrix: FeatureMatrix,
    labels: Sequence[int],
    seed: int = 0,
) -> list[Mismatch]:
    """Half/half split debugging: every labeled pair is predicted exactly
    once by a model trained on the other half; disagreements are returned."""
    labels = np.asarray(labels, dtype=int)
    if len(labels) != len(matrix):
        raise MatcherError(f"{len(matrix)} feature rows but {len(labels)} labels")
    if len(labels) < 4:
        raise MatcherError("need at least 4 labeled pairs to split-debug")
    rng = np.random.default_rng(seed)
    half_i, half_j = train_test_split(len(labels), test_fraction=0.5, rng=rng)
    mismatches: list[Mismatch] = []
    for train, test in ((half_i, half_j), (half_j, half_i)):
        fold = matcher.clone()
        fold.fit(matrix.select_rows(list(train)), labels[train])
        predictions = fold.predict(matrix.select_rows(list(test)))
        for index in test:
            pair = matrix.pairs[index]
            predicted = predictions[pair]
            if predicted != labels[index]:
                mismatches.append(
                    Mismatch(pair=pair, given_label=int(labels[index]), predicted_label=predicted)
                )
    return mismatches


def explain_prediction(
    matcher: MLMatcher, matrix: FeatureMatrix, pair: Pair
) -> str:
    """Describe the decision path a fitted decision-tree matcher takes for
    *pair* — the per-record explanation the tree debugger shows."""
    if not isinstance(matcher.model, DecisionTreeClassifier):
        raise MatcherError(
            f"explain_prediction needs a decision-tree matcher, got {matcher.name!r}"
        )
    if not matcher.is_fitted:
        raise MatcherError(f"matcher {matcher.name!r} is not fitted yet")
    row = matrix.row_for(pair)
    imputer: MeanImputer = matcher._imputer
    filled = imputer.transform(row.reshape(1, -1))[0]
    path = matcher.model.decision_path(filled)
    lines = [f"decision path for pair {pair}:"]
    for feature_index, threshold, went_left in path:
        name = matrix.feature_names[feature_index]
        op = "<=" if went_left else ">"
        lines.append(
            f"  {name} = {filled[feature_index]:.4f} {op} {threshold:.4f}"
        )
    probability = matcher.model.predict_proba(filled.reshape(1, -1))[0]
    verdict = "MATCH" if probability >= 0.5 else "NON-MATCH"
    lines.append(f"  => {verdict} (p={probability:.2f})")
    return "\n".join(lines)


def top_disagreeing_features(
    matrix: FeatureMatrix, mismatches: Sequence[Mismatch], k: int = 5
) -> list[tuple[str, float]]:
    """Features whose mean value differs most between mismatched false
    negatives and the rest of the matrix — a quick signal for *why* the
    matcher misses (the case study's letter-case issue shows up as the
    case-sensitive title features scoring low on false negatives)."""
    if not mismatches:
        return []
    miss_idx = [matrix.pairs.index(m.pair) for m in mismatches]
    mask = np.zeros(len(matrix), dtype=bool)
    mask[miss_idx] = True
    with np.errstate(invalid="ignore"):
        miss_mean = np.nanmean(matrix.values[mask], axis=0)
        rest_mean = np.nanmean(matrix.values[~mask], axis=0)
    gaps = np.abs(miss_mean - rest_mean)
    gaps = np.where(np.isnan(gaps), 0.0, gaps)
    order = np.argsort(-gaps)[:k]
    return [(matrix.feature_names[i], float(gaps[i])) for i in order]
