"""Matching layer: ML matchers, rule matchers, selection, debugging."""

from .debugger import (
    Mismatch,
    explain_prediction,
    find_mismatches,
    top_disagreeing_features,
)
from .ml_matcher import MLMatcher
from .rule_matcher import (
    BooleanRuleMatcher,
    Condition,
    PositiveRuleMatcher,
    parse_condition,
)
from .select import MatcherScore, SelectionResult, default_matchers, select_matcher

__all__ = [
    "BooleanRuleMatcher",
    "Condition",
    "MLMatcher",
    "MatcherScore",
    "Mismatch",
    "PositiveRuleMatcher",
    "SelectionResult",
    "default_matchers",
    "explain_prediction",
    "find_mismatches",
    "parse_condition",
    "select_matcher",
    "top_disagreeing_features",
]
