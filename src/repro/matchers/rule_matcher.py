"""Rule-based matchers.

Two flavours:

* :class:`PositiveRuleMatcher` — declares a match when any of its exact
  positive rules fires; this is both the sure-match extractor of the
  paper's workflows and the deployed IRIS baseline.
* :class:`BooleanRuleMatcher` — PyMatcher's boolean rule language over
  *generated features*: a matcher is a disjunction of rules, each rule a
  conjunction of ``feature <op> threshold`` conditions given as strings,
  e.g. ``"AwardTitle_AwardTitle_jac_ws > 0.7"``.
"""

from __future__ import annotations

import operator
import re
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import RuleError
from ..features.vectors import FeatureMatrix
from ..rules.positive import ExactNumberRule, sure_matches
from ..table import Table


class PositiveRuleMatcher:
    """Match exactly the pairs fired by a set of positive rules."""

    def __init__(self, rules: Sequence[ExactNumberRule], name: str = "rule_matcher") -> None:
        if not rules:
            raise RuleError("PositiveRuleMatcher needs at least one rule")
        self.rules = list(rules)
        self.name = name

    def predict_tables(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str
    ) -> CandidateSet:
        """All matching pairs over the full tables."""
        return sure_matches(
            self.rules, ltable, rtable, l_key, r_key, name=f"{self.name}_matches"
        )

    def predict_pairs(self, candidates: CandidateSet) -> list[Pair]:
        """Matching pairs restricted to a candidate set."""
        out = []
        for pair in candidates:
            l_row, r_row = candidates.record_pair(pair)
            if any(rule.matches(l_row, r_row) for rule in self.rules):
                out.append(pair)
        return out


_CONDITION_RE = re.compile(
    r"^\s*(?P<feature>[A-Za-z0-9_.]+)\s*(?P<op><=|>=|==|!=|<|>)\s*(?P<value>-?\d+(?:\.\d+)?)\s*$"
)

_OPS = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


@dataclass(frozen=True)
class Condition:
    """One parsed ``feature <op> threshold`` condition."""

    feature: str
    op: str
    value: float

    def evaluate(self, feature_value: float) -> bool:
        if np.isnan(feature_value):
            return False
        return _OPS[self.op](feature_value, self.value)

    def __str__(self) -> str:
        return f"{self.feature} {self.op} {self.value:g}"


def parse_condition(text: str) -> Condition:
    """Parse ``"feature > 0.7"`` into a :class:`Condition`."""
    match = _CONDITION_RE.match(text)
    if match is None:
        raise RuleError(f"cannot parse rule condition {text!r}")
    return Condition(
        feature=match.group("feature"),
        op=match.group("op"),
        value=float(match.group("value")),
    )


class BooleanRuleMatcher:
    """A disjunction of conjunctive feature rules.

    ``add_rule(["f1 > 0.7", "f2 <= 0.2"])`` adds the rule *f1 > 0.7 AND
    f2 <= 0.2*; a pair matches when any added rule is fully satisfied.
    Conditions on NaN feature values evaluate false.
    """

    def __init__(self, name: str = "boolean_rules") -> None:
        self.name = name
        self._rules: list[list[Condition]] = []

    @property
    def rules(self) -> list[list[Condition]]:
        return [list(r) for r in self._rules]

    def add_rule(self, conditions: Sequence[str]) -> None:
        if not conditions:
            raise RuleError("a rule needs at least one condition")
        self._rules.append([parse_condition(c) for c in conditions])

    def predict(self, matrix: FeatureMatrix) -> dict[Pair, int]:
        """0/1 prediction per pair in the feature matrix."""
        if not self._rules:
            raise RuleError(f"matcher {self.name!r} has no rules")
        column = {name: j for j, name in enumerate(matrix.feature_names)}
        for rule in self._rules:
            for cond in rule:
                if cond.feature not in column:
                    raise RuleError(
                        f"rule condition references unknown feature {cond.feature!r}"
                    )
        out: dict[Pair, int] = {}
        for i, pair in enumerate(matrix.pairs):
            row = matrix.values[i]
            matched = any(
                all(cond.evaluate(row[column[cond.feature]]) for cond in rule)
                for rule in self._rules
            )
            out[pair] = int(matched)
        return out

    def predict_matches(self, matrix: FeatureMatrix) -> list[Pair]:
        predictions = self.predict(matrix)
        return [pair for pair in matrix.pairs if predictions[pair] == 1]
