"""Matcher registry: build the paper's matcher lineup by kind name.

Mirrors :mod:`repro.blocking.factory` for the matcher family so plan
specs (:mod:`repro.plan`) can reference matchers as data. Each builder
reproduces exactly one entry of
:func:`repro.matchers.select.default_matchers`, including its display
name — fingerprints and Section-9 selection behave identically whether a
matcher came from the registry or the hand-written lineup.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..errors import MatcherError
from ..ml import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    LinearRegressionClassifier,
    LinearSVM,
    LogisticRegression,
    RandomForestClassifier,
)
from .ml_matcher import MLMatcher


def _decision_tree(seed: int = 0, min_samples_leaf: int = 4) -> MLMatcher:
    return MLMatcher(
        DecisionTreeClassifier(min_samples_leaf=min_samples_leaf, seed=seed),
        "Decision Tree",
    )


def _random_forest(
    seed: int = 0, n_trees: int = 50, min_samples_leaf: int = 2
) -> MLMatcher:
    return MLMatcher(
        RandomForestClassifier(
            n_trees=n_trees, min_samples_leaf=min_samples_leaf, seed=seed
        ),
        "Random Forest",
    )


def _svm(seed: int = 0) -> MLMatcher:
    return MLMatcher(LinearSVM(seed=seed), "SVM")


def _logistic_regression() -> MLMatcher:
    return MLMatcher(LogisticRegression(), "Logistic Regression")


def _naive_bayes() -> MLMatcher:
    return MLMatcher(GaussianNaiveBayes(), "Naive Bayes")


def _linear_regression() -> MLMatcher:
    return MLMatcher(LinearRegressionClassifier(), "Linear Regression")


#: kind name -> builder taking keyword params. Extend via
#: :func:`register_matcher`.
MATCHER_REGISTRY: dict[str, Callable[..., MLMatcher]] = {
    "decision_tree": _decision_tree,
    "random_forest": _random_forest,
    "svm": _svm,
    "logistic_regression": _logistic_regression,
    "naive_bayes": _naive_bayes,
    "linear_regression": _linear_regression,
}


def register_matcher(kind: str, builder: Callable[..., Any]) -> None:
    """Register a new matcher kind (overwriting an existing kind fails)."""
    if kind in MATCHER_REGISTRY:
        raise MatcherError(f"matcher kind {kind!r} is already registered")
    MATCHER_REGISTRY[kind] = builder


def create_matcher(config: "str | Mapping[str, Any]") -> MLMatcher:
    """Build one (untrained) matcher from a kind name or config mapping."""
    if isinstance(config, str):
        kind, params = config, {}
    elif isinstance(config, Mapping):
        if "kind" not in config:
            raise MatcherError(f"matcher config is missing 'kind': {config!r}")
        kind = config["kind"]
        params = {k: v for k, v in config.items() if k != "kind"}
    else:
        raise MatcherError(
            f"matcher config must be a kind name or mapping, got {config!r}"
        )
    builder = MATCHER_REGISTRY.get(kind)
    if builder is None:
        raise MatcherError(
            f"unknown matcher kind {kind!r}; available: {sorted(MATCHER_REGISTRY)}"
        )
    try:
        return builder(**params)
    except TypeError as exc:
        raise MatcherError(
            f"bad parameters for matcher kind {kind!r}: {exc}"
        ) from exc
