"""Section 9 — selecting, debugging and applying a learning-based matcher.

The steps:

1. drop Unsure pairs and sure matches (M1 pairs) from the labeled set,
   extract feature vectors, impute missing values with column means;
2. select the best of six learners by five-fold cross-validation
   (the paper's first winner was a random forest);
3. debug the winner with half/half split mismatch analysis — the case
   study found mismatches driven by letter case and responded by *adding
   case-insensitive features* (not by lower-casing the data);
4. re-select (the decision tree won after the new features: ~97 P,
   ~95 R, ~94.7 F1 averaged over folds);
5. train the winner on all labeled pairs and predict over C minus the
   sure matches; the final match set is sure matches ∪ predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blocking.candidate_set import CandidateSet, Pair
from ..features.generate import (
    FeatureSet,
    add_case_insensitive_variants,
    generate_features,
)
from ..features.vectors import extract_feature_vectors
from ..labeling.labels import LabeledPairs
from ..matchers import (
    MLMatcher,
    Mismatch,
    SelectionResult,
    default_matchers,
    find_mismatches,
    select_matcher,
)
from ..rules.positive import ExactNumberRule, m1_rule
from ..runtime.context import EngineSession, resolve_session
from ..runtime.instrument import Instrumentation, stage
from .preprocess import ProjectedTables


def base_feature_set(tables: ProjectedTables) -> FeatureSet:
    """Auto-generate features from the projected schemas (footnote 7).

    Keys and output-only columns are excluded, as is "ProjectNumber"
    (USDA-only, no same-named UMETRICS attribute to pair with).
    """
    return generate_features(
        tables.umetrics,
        tables.usda,
        exclude_attrs=["RecordId", "AccessionNumber", "ProjectNumber"],
    )


@dataclass(frozen=True)
class MatchingOutcome:
    """Everything Section 9 produced."""

    initial_selection: SelectionResult
    mismatches: tuple[Mismatch, ...]
    final_selection: SelectionResult
    feature_set: FeatureSet
    matcher: MLMatcher  # trained on the full labeled set
    sure_pairs: tuple[Pair, ...]
    predicted_pairs: tuple[Pair, ...]
    matches: tuple[Pair, ...]

    def summary(self) -> str:
        best = self.final_selection.best.name
        return (
            f"winner={best}; sure={len(self.sure_pairs)}, "
            f"predicted={len(self.predicted_pairs)}, "
            f"total={len(self.matches)}"
        )


def sure_match_pairs(
    candidates: CandidateSet, rules: list[ExactNumberRule] | None = None
) -> list[Pair]:
    """Candidate pairs fired by the positive rules (default: M1 only)."""
    rules = rules or [m1_rule()]
    out = []
    for pair in candidates:
        l_row, r_row = candidates.record_pair(pair)
        if any(rule.matches(l_row, r_row) for rule in rules):
            out.append(pair)
    return out


def training_labels(
    labels: LabeledPairs, sure: list[Pair]
) -> tuple[list[Pair], list[int]]:
    """The labeled pairs actually used for learning: no Unsure, no sure
    matches (an exact-rule match needs no statistical model)."""
    return labels.without_unsure().without_pairs(sure).to_training_data()


def run_matching(
    candidates: CandidateSet,
    labels: LabeledPairs,
    tables: ProjectedTables,
    seed: int = 45,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    store=None,
    pool=None,
    *,
    session: EngineSession | None = None,
) -> MatchingOutcome:
    """Execute the full Section-9 pipeline.

    A session store memoizes the three feature extractions (training
    matrix, case-insensitive training matrix, prediction matrix) by
    content; the session's workers/instrumentation parallelize and time
    those extractions plus the two cross-validated selections. The
    ``workers``/``instrumentation``/``store``/``pool`` kwargs are
    deprecated shims over the ambient session.
    """
    resolved = resolve_session(
        session,
        workers=workers,
        instrumentation=instrumentation,
        store=store,
        pool=pool,
    )
    instrumentation = resolved.instrumentation
    features = base_feature_set(tables)
    sure = sure_match_pairs(candidates)
    pairs, y = training_labels(labels, sure)

    matrix = extract_feature_vectors(
        candidates, features, pairs=pairs, session=resolved
    )
    with stage(instrumentation, "select_matcher"):
        initial_selection = select_matcher(
            default_matchers(seed=seed), matrix, y, n_folds=5, seed=seed
        )

    # debug the first winner: half/half mismatch analysis
    with stage(instrumentation, "find_mismatches"):
        mismatches = find_mismatches(
            initial_selection.best.clone(), matrix, y, seed=seed
        )

    # the fix: case-insensitive variants of the title features
    features_ci = add_case_insensitive_variants(features, attrs=["AwardTitle"])
    matrix_ci = extract_feature_vectors(
        candidates, features_ci, pairs=pairs, session=resolved
    )
    with stage(instrumentation, "select_matcher"):
        final_selection = select_matcher(
            default_matchers(seed=seed), matrix_ci, y, n_folds=5, seed=seed
        )

    # train the final winner on all usable labeled pairs
    with stage(instrumentation, "fit_matcher"):
        matcher = final_selection.best.clone()
        matcher.fit(matrix_ci, y)

    # predict over C minus the sure matches
    to_predict = candidates.difference(
        candidates.subset(sure, name="sure"), name="C_minus_sure"
    )
    predict_matrix = extract_feature_vectors(
        to_predict, features_ci, session=resolved
    )
    with stage(instrumentation, "predict"):
        predicted = matcher.predict_matches(predict_matrix)

    matches = list(sure) + [p for p in predicted if p not in set(sure)]
    return MatchingOutcome(
        initial_selection=initial_selection,
        mismatches=tuple(mismatches),
        final_selection=final_selection,
        feature_set=features_ci,
        matcher=matcher,
        sure_pairs=tuple(sure),
        predicted_pairs=tuple(predicted),
        matches=tuple(matches),
    )
