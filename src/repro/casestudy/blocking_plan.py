"""Section 7 — the three-blocker blocking plan.

1. an attribute-equivalence blocker on the award-number suffix (so every
   M1 pair survives into the candidate set) -> C1;
2. an overlap blocker on normalized titles, word tokens, K=3 -> C2;
3. an overlap-coefficient blocker (threshold 0.7) to rescue similar titles
   shorter than 3 tokens -> C3;
4. C = C1 ∪ C2 ∪ C3, then the blocking debugger confirms the top-ranked
   pairs *outside* C are not matches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blocking import (
    AttrEquivalenceBlocker,
    CandidateSet,
    MissedPairReport,
    OverlapBlocker,
    OverlapCoefficientBlocker,
    OverlapReport,
    debug_blocker,
    overlap_report,
    union_candidates,
)
from ..errors import BlockingError
from ..runtime.context import EngineSession, resolve_session
from ..runtime.instrument import stage
from ..text.normalize import normalize_title
from ..text.patterns import award_number_suffix
from .preprocess import ProjectedTables

OVERLAP_THRESHOLD = 3
COEFFICIENT_THRESHOLD = 0.7


def make_blockers() -> list:
    """The paper's three blockers, in application order."""
    return [
        AttrEquivalenceBlocker(
            "AwardNumber", "AwardNumber", l_preprocess=award_number_suffix
        ),
        OverlapBlocker(
            "AwardTitle", "AwardTitle",
            threshold=OVERLAP_THRESHOLD, normalizer=normalize_title,
        ),
        OverlapCoefficientBlocker(
            "AwardTitle", "AwardTitle",
            threshold=COEFFICIENT_THRESHOLD, normalizer=normalize_title,
        ),
    ]


@dataclass(frozen=True)
class BlockingOutcome:
    """All Section-7 artifacts."""

    c1: CandidateSet
    c2: CandidateSet
    c3: CandidateSet
    candidates: CandidateSet  # the consolidated C
    c2_c3_report: OverlapReport
    debugger_top: tuple[MissedPairReport, ...]

    def summary(self) -> str:
        return (
            f"|C1|={len(self.c1)}, |C2|={len(self.c2)}, |C3|={len(self.c3)}, "
            f"|C|={len(self.candidates)}; {self.c2_c3_report}"
        )


def run_blocking(
    tables: ProjectedTables,
    debug_top_k: int = 100,
    *,
    session: EngineSession | None = None,
    blockers: "list | None" = None,
) -> BlockingOutcome:
    """Execute the blocking plan and the debugger check.

    Runs under *session* (or the ambient session when ``None``): a
    session with ``workers >= 2`` parallelises the two title blockers
    (the AE blocker is a hash join, not worth chunking); its
    instrumentation records per-blocker stage timings and pair counts;
    its store memoizes each blocker's candidate set by content
    fingerprints; its pool lets both title blockers (and any later
    stage) reuse one set of worker processes.

    *blockers* substitutes a custom three-blocker plan (e.g. built by
    :func:`repro.blocking.create_blockers` from ``casestudy --blocker``
    configs) for the paper's recipe; it must supply exactly three
    blockers, applied in C1/C2/C3 order.
    """
    resolved = resolve_session(session)
    instrumentation = resolved.instrumentation
    if blockers is None:
        blockers = make_blockers()
    if len(blockers) != 3:
        raise BlockingError(
            f"the Section-7 plan takes exactly 3 blockers, got {len(blockers)}"
        )
    ae, overlap, coefficient = blockers
    args = (tables.umetrics, tables.usda, tables.l_key, tables.r_key)
    with stage(instrumentation, "C1:attr_equiv"):
        c1 = ae.block_tables(*args, name="C1", session=resolved)
    with stage(instrumentation, "C2:overlap_k3"):
        c2 = overlap.block_tables(*args, name="C2", session=resolved)
    with stage(instrumentation, "C3:coefficient"):
        c3 = coefficient.block_tables(*args, name="C3", session=resolved)
    with stage(instrumentation, "union"):
        candidates = union_candidates([c1, c2, c3], name="C")
    # The debugger ranks excluded pairs by the blocking attribute (titles):
    # a pair blocking dropped *because its titles diverge* cannot re-rank
    # high on titles, which is exactly why the paper's check came back
    # clean. (Adding EmployeeName here is a worthwhile extension — it
    # surfaces number-rule matches with rewritten titles — but it changes
    # the Section-7 narrative; see the blocking debugger example.)
    top = debug_blocker(
        candidates,
        attr_pairs=[("AwardTitle", "AwardTitle")],
        top_k=debug_top_k,
    )
    return BlockingOutcome(
        c1=c1,
        c2=c2,
        c3=c3,
        candidates=candidates,
        c2_c3_report=overlap_report(c2, c3),
        debugger_top=tuple(top),
    )


def threshold_sweep(
    tables: ProjectedTables, thresholds: tuple[int, ...] = (1, 2, 3, 5, 7)
) -> dict[int, int]:
    """Candidate-set size per overlap threshold K — the experiment behind
    the paper's choice of K=3 (K=1 -> ~200K pairs, K=7 -> a few hundred)."""
    sizes = {}
    for k in thresholds:
        blocker = OverlapBlocker(
            "AwardTitle", "AwardTitle", threshold=k, normalizer=normalize_title
        )
        sizes[k] = len(
            blocker.block_tables(
                tables.umetrics, tables.usda, tables.l_key, tables.r_key
            )
        )
    return sizes
