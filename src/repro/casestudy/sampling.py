"""Section 8 — sampling and labeling, with all its logistics.

The protocol the two teams actually followed:

1. sample 100 pairs from C, upload them to the cloud labeling tool; the
   UMETRICS team's trained student labels them (one session at a time);
2. the EM team labels the same pairs with its own understanding;
   cross-checking the two label sets surfaced 22 mismatches, discussed in
   a face-to-face meeting where the UMETRICS team updated 4 labels;
3. two more iterations of 100 pairs each are labeled by the (now
   calibrated) expert team — 300 labeled pairs total;
4. the labeled sample is debugged with leave-one-out cross-validation;
   discrepancies fall into classes D1 (similar titles, "NC/NRSP" suffix),
   D2 (different numbers, same titles) and D3 (missing USDA number,
   similar titles); the domain experts rule: D1 -> Unsure, D2 -> keep,
   D3 -> match if the transaction dates are within a couple of years.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..datasets import vocab
from ..datasets.scenario import make_borderline_predicate, numbers_comparable_but_differ
from ..features.generate import FeatureSet
from ..labeling import (
    CloudLabelingTool,
    ExpertOracle,
    Label,
    LabelCounts,
    LabelDiscrepancy,
    LabeledPairs,
    StudentLabeler,
    cross_check,
    debug_labels,
    group_discrepancies,
    resolve_with_authority,
)
from ..rules.positive import m1_rule
from ..similarity.numeric import years_within
from ..table.column import is_missing
from ..text.normalize import normalize_title


@dataclass(frozen=True)
class LabelingOutcome:
    """Everything Section 8 produced."""

    labels: LabeledPairs  # final, post-debugging
    iteration_counts: tuple[LabelCounts, ...]
    initial_mismatches: int
    labels_updated_after_meeting: int
    discrepancy_buckets: dict[str, int]
    labels_updated_after_debugging: int

    def summary(self) -> str:
        return (
            f"labels: {self.labels.counts()}; "
            f"round-1 cross-check mismatches: {self.initial_mismatches} "
            f"({self.labels_updated_after_meeting} updated); "
            f"LOO discrepancy buckets: {self.discrepancy_buckets} "
            f"({self.labels_updated_after_debugging} updated)"
        )


def make_oracles(
    truth: set[Pair], seed: int
) -> tuple[ExpertOracle, StudentLabeler, ExpertOracle]:
    """(domain-expert authority, trained student, EM-team labeler).

    The authority is the UMETRICS team after discussion — mild unsure rate
    on genuinely hard pairs, essentially no errors. The *trained student*
    carries the domain knowledge and errs rarely; the EM team, labeling
    "using our own understanding of the match definition", errs more —
    which is why the paper's round-1 cross-check surfaced 22 mismatches
    but the meeting only flipped 4 of the student's labels.
    """
    borderline = make_borderline_predicate()
    authority = ExpertOracle(
        truth, borderline=borderline,
        unsure_probability=0.17, error_probability=0.02, seed=seed,
    )
    student = StudentLabeler(
        truth, borderline=borderline,
        unsure_probability=0.22, error_probability=0.08, seed=seed + 1,
    )
    em_team = ExpertOracle(
        truth, borderline=borderline,
        unsure_probability=0.12, error_probability=0.28, seed=seed + 2,
    )
    return authority, student, em_team


# --- discrepancy-class predicates (over projected-table rows) -----------
_MULTISTATE_MARKERS = tuple(normalize_title(c) for c in vocab.MULTISTATE_CODES)


def is_d1(l_row: dict[str, Any], r_row: dict[str, Any]) -> bool:
    """D1: the USDA title carries a multistate NC/NRSP suffix."""
    title = r_row.get("AwardTitle")
    if is_missing(title):
        return False
    normalized = str(normalize_title(title))
    return any(marker in normalized for marker in _MULTISTATE_MARKERS)


def is_d2(l_row: dict[str, Any], r_row: dict[str, Any]) -> bool:
    """D2: identifying numbers present but different."""
    return numbers_comparable_but_differ(l_row, r_row)


def is_d3(l_row: dict[str, Any], r_row: dict[str, Any]) -> bool:
    """D3: the USDA award number is missing (titles must decide)."""
    return is_missing(r_row.get("AwardNumber"))


def run_sampling_and_labeling(
    candidates: CandidateSet,
    truth: set[Pair],
    feature_set: FeatureSet,
    seed: int = 45,
    rounds: tuple[int, ...] = (100, 100, 100),
) -> LabelingOutcome:
    """Execute the full Section-8 protocol."""
    rng = np.random.default_rng(seed)
    authority, student, em_team = make_oracles(truth, seed)
    tool = CloudLabelingTool()

    iteration_counts: list[LabelCounts] = []
    initial_mismatches = 0
    updated_after_meeting = 0

    # --- iteration 1: student labels, EM team cross-checks ------------
    sampled = candidates.sample(rounds[0], rng)
    tool.upload_pairs(sampled)
    tool.open_session("umetrics-student")
    student_labels = student.label_pairs(candidates, sampled)
    for pair, label in student_labels.items():
        tool.submit_label(pair, label)
    tool.close_session()

    em_labels = em_team.label_pairs(candidates, sampled)
    disagreements = cross_check(tool.labeled(), em_labels)
    initial_mismatches = len(disagreements)
    resolved, updated_after_meeting = resolve_with_authority(
        tool.labeled(), disagreements, authority
    )
    for pair in resolved.pairs():
        if resolved.get(pair) is not tool.labeled().get(pair):
            tool.update_label(pair, resolved.get(pair))
    iteration_counts.append(tool.labeled().counts())

    # --- iterations 2..n: the calibrated expert team labels -----------
    for round_size in rounds[1:]:
        already = set(tool.labeled().pairs())
        fresh: list[Pair] = []
        while len(fresh) < round_size:
            for pair in candidates.sample(round_size * 2, rng):
                if pair not in already and pair not in set(fresh):
                    fresh.append(pair)
                    if len(fresh) == round_size:
                        break
        tool.upload_pairs(fresh)
        tool.open_session("umetrics-team")
        for pair, label in authority.label_pairs(candidates, fresh).items():
            tool.submit_label(pair, label)
        tool.close_session()
        iteration_counts.append(tool.labeled().counts())

    labels = tool.labeled()

    # --- debugging the labeled sample ----------------------------------
    sure = [p for p in labels.pairs() if _m1_fires(candidates, p)]
    discrepancies = debug_labels(
        candidates, labels, feature_set, exclude_pairs=sure
    )
    buckets = group_discrepancies(
        candidates, discrepancies,
        classifiers={"D1": is_d1, "D2": is_d2, "D3": is_d3},
    )
    updated = 0
    for discrepancy in buckets["D1"]:
        labels.set(discrepancy.pair, Label.UNSURE)
        updated += 1
    # D2: labels retained as given.
    for discrepancy in buckets["D3"]:
        l_row, r_row = candidates.record_pair(discrepancy.pair)
        if discrepancy.predicted_label == 1 and years_within(
            l_row.get("FirstTransDate"), r_row.get("FirstTransDate"), max_gap=2
        ):
            if authority.is_match(discrepancy.pair) and labels.get(
                discrepancy.pair
            ) is not Label.YES:
                labels.set(discrepancy.pair, Label.YES)
                updated += 1
    return LabelingOutcome(
        labels=labels,
        iteration_counts=tuple(iteration_counts),
        initial_mismatches=initial_mismatches,
        labels_updated_after_meeting=updated_after_meeting,
        discrepancy_buckets={k: len(v) for k, v in buckets.items()},
        labels_updated_after_debugging=updated,
    )


def _m1_fires(candidates: CandidateSet, pair: Pair) -> bool:
    l_row, r_row = candidates.record_pair(pair)
    return m1_rule().matches(l_row, r_row)
