"""Section 6 — pre-processing the raw tables.

Reproduces the paper's steps: (1) keep the two UMETRICS tables the matching
document deems relevant (award aggregate + employees) and the USDA table;
(2) validate keys and the employees foreign key; (3) check whether the four
remaining UMETRICS tables share data with USDA (the vendor OrgName/DUNS
overlap check — it comes back empty, so they are dropped); (4) project,
align column names, join in the concatenated employee names, and add a
RecordId key.

RecordId values equal the natural keys (UniqueAwardNumber /
AccessionNumber), which the paper verifies are keys of their tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blocking.candidate_set import Pair
from ..datasets.scenario import Scenario
from ..table import (
    Table,
    group_concat,
    hash_join,
    validate_foreign_key,
    validate_key,
    values_overlap,
)

#: Attribute pairs with similar names found during manual schema matching
#: (pre-processing step 3). The paper checked value overlap and found none.
SCHEMA_MATCH_CHECKS = [
    ("UMETRICSVendorMatching.OrgName", "RecipientOrganization"),
    ("UMETRICSVendorMatching.DUNS", "RecipientDUNS"),
]


@dataclass(frozen=True)
class ProjectedTables:
    """The two matching-ready tables plus record-level ground truth."""

    umetrics: Table  # UMETRICSProjected
    usda: Table  # USDAProjected
    truth: set[Pair]  # (umetrics RecordId, usda RecordId)

    @property
    def l_key(self) -> str:
        return "RecordId"

    @property
    def r_key(self) -> str:
        return "RecordId"


def check_discarded_tables(scenario: Scenario) -> dict[str, float]:
    """Step 3: value overlap between similarly-named attribute pairs.

    Returns the overlap score per check; all ~0.0, which is the evidence
    the paper used to drop the vendor (and the other three) tables.
    """
    return {
        "VendorMatching.OrgName vs USDA.RecipientOrganization": values_overlap(
            scenario.vendors, scenario.usda, "OrgName", "RecipientOrganization"
        ),
        "VendorMatching.DUNS vs USDA.RecipientDUNS": values_overlap(
            scenario.vendors, scenario.usda, "DUNS", "RecipientDUNS"
        ),
    }


def _project_umetrics(award_agg: Table, employees: Table, name: str) -> Table:
    """Project the award table and join in concatenated employee names."""
    validate_key(award_agg, "UniqueAwardNumber")
    projected = award_agg.project(
        ["UniqueAwardNumber", "AwardTitle", "FirstTransDate", "LastTransDate"],
        name=name,
    ).rename({"UniqueAwardNumber": "AwardNumber"}, name=name)
    names = group_concat(
        employees, key="UniqueAwardNumber", value="FullName", sep="|",
        name="employee_names",
    ).rename({"UniqueAwardNumber": "AwardNumber", "FullName": "EmployeeName"})
    joined = hash_join(
        projected, names, left_on="AwardNumber", right_on="AwardNumber",
        how="left", name=name,
    )
    joined.add_column("RecordId", list(joined["AwardNumber"]))
    return joined.project(
        ["RecordId", "AwardNumber", "AwardTitle", "FirstTransDate",
         "LastTransDate", "EmployeeName"],
        name=name,
    )


def _project_usda(usda: Table, include_project_number: bool) -> Table:
    validate_key(usda, "AccessionNumber")
    columns = [
        "AwardNumber", "ProjectTitle", "ProjectStartDate", "ProjectEndDate",
        "AccessionNumber", "ProjectDirector",
    ]
    if include_project_number:
        columns.append("ProjectNumber")
    projected = usda.project(columns, name="USDAProjected").rename(
        {
            "ProjectTitle": "AwardTitle",
            "ProjectStartDate": "FirstTransDate",
            "ProjectEndDate": "LastTransDate",
            "ProjectDirector": "EmployeeName",
        },
        name="USDAProjected",
    )
    projected.add_column("RecordId", list(projected["AccessionNumber"]))
    order = ["RecordId", "AwardNumber", "AwardTitle", "FirstTransDate",
             "LastTransDate", "AccessionNumber", "EmployeeName"]
    if include_project_number:
        order.append("ProjectNumber")
    return projected.project(order, name="USDAProjected")


def preprocess(
    scenario: Scenario, include_project_number: bool = False
) -> ProjectedTables:
    """Run the full Section-6 pipeline on the original data slice.

    ``include_project_number=False`` matches the paper's first pass; the
    Section-10 revision re-runs with ``True`` (USDA's "ProjectNumber" is
    pulled into USDAProjected so the new positive rule can fire).
    """
    validate_foreign_key(
        scenario.employees, "UniqueAwardNumber",
        # the employees table spans original + extra awards
        _all_awards(scenario), "UniqueAwardNumber",
    )
    umetrics = _project_umetrics(
        scenario.award_agg, scenario.employees, name="UMETRICSProjected"
    )
    usda = _project_usda(scenario.usda, include_project_number)
    truth = {
        (u, s)
        for (u, s) in scenario.truth
        if u in set(umetrics["RecordId"])
    }
    return ProjectedTables(umetrics=umetrics, usda=usda, truth=truth)


def preprocess_extra(
    scenario: Scenario, include_project_number: bool = True
) -> ProjectedTables:
    """Project the 496 late-arriving UMETRICS records (Section 10)."""
    umetrics = _project_umetrics(
        scenario.extra_award_agg, scenario.employees, name="UMETRICSProjectedExtra"
    )
    usda = _project_usda(scenario.usda, include_project_number)
    truth = {
        (u, s)
        for (u, s) in scenario.truth
        if u in set(umetrics["RecordId"])
    }
    return ProjectedTables(umetrics=umetrics, usda=usda, truth=truth)


def _all_awards(scenario: Scenario) -> Table:
    """Original + extra award records (for FK validation of employees)."""
    from ..table.ops import concat

    return concat(
        [scenario.award_agg, scenario.extra_award_agg], name="all_awards"
    )
