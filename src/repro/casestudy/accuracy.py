"""Section 11 — Corleone-style accuracy estimation of all matchers.

The protocol:

1. both matchers (ours and the deployed IRIS rule matcher) must predict
   over the same candidate universe E; IRIS predictions outside E are
   audited (the paper found one — a terminated award — and dropped it);
2. a random sample of 200 pairs of E is labeled by the domain experts and
   precision/recall intervals are estimated per matcher;
3. the intervals being wide, 200 *more* pairs are labeled and the
   estimates recomputed over all 400.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..evaluation.corleone import AccuracyEstimate, compare_matchers
from ..labeling.labels import LabelCounts, LabeledPairs
from ..labeling.oracle import ExpertOracle


@dataclass(frozen=True)
class AccuracyOutcome:
    """Estimates per matcher at each labeling stage."""

    stray_predictions_dropped: dict[str, int]
    estimates_by_stage: dict[int, dict[str, AccuracyEstimate]]
    sample_counts: dict[int, LabelCounts]

    def table(self, stage: int | None = None) -> str:
        """Render the comparison table for a stage (default: largest)."""
        stage = stage if stage is not None else max(self.estimates_by_stage)
        estimates = self.estimates_by_stage[stage]
        lines = [
            f"{'matcher':<28} {'precision':>22} {'recall':>22}   (n={stage})"
        ]
        for name, estimate in estimates.items():
            lines.append(
                f"{name:<28} {str(estimate.precision):>22} {str(estimate.recall):>22}"
            )
        return "\n".join(lines)


def run_accuracy_estimation(
    universe: CandidateSet,
    predictions: dict[str, list[Pair]],
    oracle: ExpertOracle,
    sample_sizes: tuple[int, ...] = (200, 400),
    seed: int = 45,
) -> AccuracyOutcome:
    """Estimate every matcher's accuracy from nested labeled samples."""
    population = universe.pair_set()
    cleaned: dict[str, list[Pair]] = {}
    strays: dict[str, int] = {}
    for name, matches in predictions.items():
        inside = [tuple(p) for p in matches if tuple(p) in population]
        strays[name] = len(matches) - len(inside)
        cleaned[name] = inside

    rng = np.random.default_rng(seed)
    # clamp to the universe size (small scenarios have few candidate pairs)
    order = sorted({min(s, len(universe)) for s in sample_sizes})
    largest = order[-1]
    sampled = universe.sample(largest, rng)

    estimates_by_stage: dict[int, dict[str, AccuracyEstimate]] = {}
    counts: dict[int, LabelCounts] = {}
    labeled = LabeledPairs()
    taken = 0
    for stage in order:
        batch = sampled[taken:stage]
        taken = stage
        labeled = labeled.merge(oracle.label_pairs(universe, batch))
        estimates_by_stage[stage] = compare_matchers(
            universe.pairs, cleaned, labeled
        )
        counts[stage] = labeled.counts()
    return AccuracyOutcome(
        stray_predictions_dropped=strays,
        estimates_by_stage=estimates_by_stage,
        sample_counts=counts,
    )
