"""Paper-vs-measured reporting.

The paper's quantitative narrative is encoded here as constants; benches
compute the corresponding measured values on the synthetic scenario and
render side-by-side tables. Absolute equality is not expected (the data is
synthetic); the *shape* — who wins, by what rough factor, where the
crossovers fall — is what the reproduction asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Section 7 / footnote 3 blocking counts.
PAPER_BLOCKING = {
    "cartesian_product": 2_558_440,  # 1336 x 1915
    "C1_m1_pairs_in_C": 210,
    "C2_overlap_k3": 2_937,
    "C3_coefficient_0.7": 1_375,
    "C2_and_C3": 1_140,
    "C2_minus_C3": 1_797,
    "C3_minus_C2": 235,
    "C_consolidated": 3_177,
    "overlap_k1": 200_000,
    "overlap_k7": 400,  # "a few hundred"
}

#: Section 8 labeling narrative.
PAPER_LABELING = {
    "round1_mismatches": 22,
    "round1_updated": 4,
    "final_yes": 68,
    "final_no": 200,
    "final_unsure": 32,
    "total_labeled": 300,
}

#: Section 9 matcher selection & first workflow.
PAPER_MATCHING = {
    "first_winner": "Random Forest",
    "final_winner": "Decision Tree",
    "final_precision": 0.97,
    "final_recall": 0.95,
    "final_f1": 0.947,
    "sure_matches": 210,
    "predicted": 807,
    "total_matches": 1_017,
}

#: Section 10 updated workflow (Figure 9).
PAPER_UPDATED_WORKFLOW = {
    "rule2_pairs_in_product": 473,
    "rule2_pairs_in_C": 411,
    "rule2_predicted_as_match": 397,
    "sure_original": 683,
    "sure_extra": 55,
    "candidates_original": 2_556,
    "candidates_extra": 1_220,
    "predicted_original": 399,
    "predicted_extra": 0,
    "total_matches": 1_137,
}

#: Section 11/12 accuracy estimates (point ranges from the paper).
PAPER_ACCURACY = {
    "learned": {"precision": (0.752, 0.803), "recall": (0.981, 0.996)},
    "iris": {"precision": (1.0, 1.0), "recall": (0.651, 0.718)},
    "learned_plus_rules": {"precision": (0.967, 0.988), "recall": (0.942, 0.9705)},
    "final_matches": 845,
}


@dataclass(frozen=True)
class ReportRow:
    """One paper-vs-measured comparison line."""

    name: str
    paper: Any
    measured: Any

    def render(self, width: int = 44) -> str:
        return f"{self.name:<{width}} paper={self.paper!s:>14}  measured={self.measured!s}"


def render_report(title: str, rows: list[ReportRow]) -> str:
    """Render a titled paper-vs-measured block."""
    bar = "=" * 78
    lines = [bar, title, bar]
    lines.extend(row.render() for row in rows)
    return "\n".join(lines)


def interval_str(interval) -> str:
    """Format an Interval (or (low, high) tuple) as the paper does."""
    low, high = (
        (interval.low, interval.high)
        if hasattr(interval, "low")
        else (interval[0], interval[1])
    )
    return f"({low:.1%}, {high:.1%})"
