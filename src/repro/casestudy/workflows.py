"""Sections 10 & 12 — the updated (Figure 9) and final (Figure 10) workflows.

Section 10 brought two complications without a redo:

* a *new positive rule* (UMETRICS award number = USDA project number) was
  discovered; the paper checks how the existing pipeline handles it (411 of
  473 rule pairs were already in C; the matcher already predicted most as
  matches) and then patches the workflow rather than re-labeling;
* 496 *extra UMETRICS records* surfaced; the same patched workflow is run
  over them with the already-trained matcher.

The Figure-9 procedure: sure matches C1/D1 from both rules; blocking ->
C2/D2; predict on C2-C1 and D2-D1 with the matcher trained on the existing
labels (minus Unsure, minus sure matches); final matches = C1 ∪ D1 ∪ R1 ∪
R2. Figure 10 adds the negative rules to R1/R2 (S1/S2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blocking.candidate_set import CandidateSet, Pair
from ..core.workflow import WorkflowResult
from ..features.generate import FeatureSet
from ..labeling.labels import LabeledPairs
from ..matchers.ml_matcher import MLMatcher
from ..plan.compile import compile_plan
from ..plan.figure10 import drop_train_nodes, figure10_spec, strip_negative_rules
from ..plan.spec import NodeSpec, PipelineSpec
from ..rules.positive import award_project_rule, m1_rule
from ..runtime.context import EngineSession, resolve_session
from ..runtime.instrument import Instrumentation
from ..table.ops import concat
from .matching import sure_match_pairs
from .preprocess import ProjectedTables


def positive_rules() -> list:
    """Both positive rules of the revised match definition."""
    return [m1_rule(), award_project_rule()]


@dataclass(frozen=True)
class RuleCoverage:
    """Section 10's pre-patch check of the new positive rule."""

    pairs_in_product: int     # rule pairs in A x B (paper: 473)
    pairs_in_candidates: int  # of those, already in C (paper: 411)
    predicted_as_match: int   # of those, already predicted matches (397)


def check_new_rule_coverage(
    tables: ProjectedTables,
    candidates: CandidateSet,
    predicted_matches: list[Pair],
) -> RuleCoverage:
    """Would a redo be needed? The paper's three-step audit of the new rule."""
    rule_pairs = award_project_rule().pairs(
        tables.umetrics, tables.usda, tables.l_key, tables.r_key
    )
    in_c = [p for p in rule_pairs if p in candidates]
    predicted = set(map(tuple, predicted_matches))
    sure = sure_match_pairs(candidates)  # M1 pairs were matches by definition
    covered = [p for p in in_c if p in predicted or p in set(sure)]
    return RuleCoverage(
        pairs_in_product=len(rule_pairs),
        pairs_in_candidates=len(in_c),
        predicted_as_match=len(covered),
    )


@dataclass(frozen=True)
class CombinedWorkflowOutcome:
    """Results of the Figure 9 / Figure 10 combined workflow."""

    original: WorkflowResult
    extra: WorkflowResult
    matches: tuple[Pair, ...]
    consolidated_candidates: CandidateSet  # E = C2 ∪ D2 (over merged tables)

    def summary(self) -> str:
        return (
            f"original: [{self.original.summary()}]; "
            f"extra: [{self.extra.summary()}]; "
            f"final matches={len(self.matches)}"
        )

    def explain_pair(self, a, b):
        """Lineage of pair ``(a, b)`` from whichever table slice saw it.

        The combined match set is the union of the two slices' final
        matches, so the slice that knows the pair owns its lineage;
        unknown pairs explain through the original slice (an all-negative
        lineage). Requires ``provenance=True`` at workflow time.
        """
        from ..obs.provenance import require_provenance

        for result in (self.original, self.extra):
            provenance = require_provenance(result.provenance)
            if provenance.knows((a, b)):
                return provenance.explain_pair(a, b)
        return require_provenance(self.original.provenance).explain_pair(a, b)


def train_workflow_matcher(
    candidates: CandidateSet,
    labels: LabeledPairs,
    feature_set: FeatureSet,
    matcher: MLMatcher,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    store=None,
    pool=None,
    *,
    session: EngineSession | None = None,
) -> MLMatcher:
    """Train (a clone of) *matcher* exactly as Section 9 did: drop Unsure
    pairs and the *M1* sure matches, keep the project-number-rule pairs.

    The paper verified the Section-9 matcher "was already learning the
    above positive rule from the labeled data" — i.e. rule-2 pairs were in
    its training set; removing them as well would strip nearly every clean
    high-similarity positive from the sample. The rules still take
    precedence at prediction time (the workflow only predicts on C minus
    the sure matches of *both* rules).

    A thin wrapper over a single plan ``train`` node (protocol
    ``workflow_matcher``) — the same node the Figure-10 spec runs."""
    resolved = resolve_session(
        session,
        workers=workers,
        instrumentation=instrumentation,
        store=store,
        pool=pool,
    )
    spec = PipelineSpec(
        name="train_workflow_matcher",
        nodes=(
            NodeSpec(
                id="train",
                kind="train",
                params={"protocol": "workflow_matcher"},
                inputs={
                    "candidates": "candidates",
                    "labels": "labels",
                    "feature_set": "feature_set",
                    "matcher": "matcher_proto",
                },
                outputs={"matcher": "matcher"},
            ),
        ),
        inputs=("candidates", "labels", "feature_set", "matcher_proto"),
        outputs={"matcher": "matcher"},
    )
    result = compile_plan(spec).execute(
        resolved,
        inputs={
            "candidates": candidates,
            "labels": labels,
            "feature_set": feature_set,
            "matcher_proto": matcher,
        },
    )
    return result.artifacts["matcher"]


def merged_candidate_universe(
    original: ProjectedTables,
    extra: ProjectedTables,
    original_result: WorkflowResult,
    extra_result: WorkflowResult,
) -> CandidateSet:
    """E = all candidate pairs from both slices, over a merged left table.

    Corleone estimation needs one finite population containing every
    matcher's predictions, so the two slices' candidate sets are re-keyed
    onto a concatenated UMETRICS table.
    """
    merged_left = concat(
        [original.umetrics, extra.umetrics], name="UMETRICSProjectedAll"
    )
    universe = CandidateSet(
        merged_left, original.usda, original.l_key, original.r_key, name="E"
    )
    for result in (original_result, extra_result):
        for pair in result.blocked:
            universe.add(pair)
    return universe


def _slice_result(outputs: dict, prefix: str, collector) -> WorkflowResult:
    """Assemble one slice's :class:`WorkflowResult` from plan outputs."""
    return WorkflowResult(
        sure_matches=outputs[f"{prefix}_sure"],
        blocked=outputs[f"{prefix}_blocked"],
        to_predict=outputs[f"{prefix}_to_predict"],
        predicted_matches=tuple(outputs[f"{prefix}_predicted"]),
        flipped=tuple(outputs[f"{prefix}_flipped"]),
        matches=tuple(outputs[f"{prefix}_matches"]),
        provenance=collector,
    )


def run_combined_workflow(
    original: ProjectedTables,
    extra: ProjectedTables,
    labels: LabeledPairs,
    feature_set: FeatureSet,
    matcher: MLMatcher,
    with_negative_rules: bool = False,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    store=None,
    provenance: "bool | object | None" = None,
    pool=None,
    *,
    session: EngineSession | None = None,
    plan: PipelineSpec | None = None,
) -> CombinedWorkflowOutcome:
    """Run the Figure-9 (or, with negative rules, Figure-10) workflow.

    A thin wrapper over ``compile_plan(spec).execute(session)``: the
    default *plan* is :func:`repro.plan.figure10.figure10_spec` — the one
    shared recipe — with its ``train`` node dropped (*matcher* is already
    trained) and, when ``with_negative_rules`` is false, the negative-rule
    nodes emptied (the Figure-9 variant). A custom *plan* must export the
    same output names (``matches``, ``original_*``/``extra_*``) and group
    its slice nodes under ``original_slice``/``extra_slice``.

    A resolved session with ``workers >= 2`` fans the blocking probes and
    feature extraction of both table slices over its process pool; its
    instrumentation collects a stage tree (one subtree per slice)
    renderable via
    :meth:`~repro.runtime.instrument.Instrumentation.report`; its store
    makes the run incremental: re-running with added negative rules (the
    Figure-10 patch) reuses every blocking, extraction and prediction
    artifact, since those stages' input fingerprints are unchanged.
    ``provenance=True`` (or a session with ``provenance=True``) records
    per-pair match lineage on both slices — each slice gets its own fresh
    collector (see :meth:`CombinedWorkflowOutcome.explain_pair`); the
    other kwargs are deprecated shims over the ambient session.
    """
    resolved = resolve_session(
        session,
        workers=workers,
        instrumentation=instrumentation,
        store=store,
        pool=pool,
    )
    spec = plan if plan is not None else figure10_spec()
    if not with_negative_rules:
        spec = strip_negative_rules(spec)
    spec = drop_train_nodes(spec)
    result = compile_plan(spec).execute(
        resolved,
        inputs={
            "tables": original,
            "extra_tables": extra,
            "feature_set": feature_set,
            "matcher": matcher,
            "labels": labels,
        },
        provenance=provenance,
    )
    outputs = result.outputs
    original_result = _slice_result(
        outputs, "original", result.collectors.get("original_slice")
    )
    extra_result = _slice_result(
        outputs, "extra", result.collectors.get("extra_slice")
    )
    universe = merged_candidate_universe(original, extra, original_result, extra_result)
    return CombinedWorkflowOutcome(
        original=original_result,
        extra=extra_result,
        matches=tuple(outputs["matches"]),
        consolidated_candidates=universe,
    )
