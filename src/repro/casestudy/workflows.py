"""Sections 10 & 12 — the updated (Figure 9) and final (Figure 10) workflows.

Section 10 brought two complications without a redo:

* a *new positive rule* (UMETRICS award number = USDA project number) was
  discovered; the paper checks how the existing pipeline handles it (411 of
  473 rule pairs were already in C; the matcher already predicted most as
  matches) and then patches the workflow rather than re-labeling;
* 496 *extra UMETRICS records* surfaced; the same patched workflow is run
  over them with the already-trained matcher.

The Figure-9 procedure: sure matches C1/D1 from both rules; blocking ->
C2/D2; predict on C2-C1 and D2-D1 with the matcher trained on the existing
labels (minus Unsure, minus sure matches); final matches = C1 ∪ D1 ∪ R1 ∪
R2. Figure 10 adds the negative rules to R1/R2 (S1/S2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blocking.candidate_set import CandidateSet, Pair
from ..blocking.combiner import union_candidates
from ..core.patch import merge_match_sets
from ..core.workflow import EMWorkflow, WorkflowResult
from ..features.generate import FeatureSet
from ..features.vectors import extract_feature_vectors
from ..labeling.labels import LabeledPairs
from ..matchers.ml_matcher import MLMatcher
from ..rules.negative import default_negative_rules
from ..rules.positive import award_project_rule, m1_rule
from ..runtime.context import EngineSession, resolve_session
from ..runtime.instrument import Instrumentation, stage
from ..table.ops import concat
from .blocking_plan import make_blockers
from .matching import sure_match_pairs, training_labels
from .preprocess import ProjectedTables


def positive_rules() -> list:
    """Both positive rules of the revised match definition."""
    return [m1_rule(), award_project_rule()]


@dataclass(frozen=True)
class RuleCoverage:
    """Section 10's pre-patch check of the new positive rule."""

    pairs_in_product: int     # rule pairs in A x B (paper: 473)
    pairs_in_candidates: int  # of those, already in C (paper: 411)
    predicted_as_match: int   # of those, already predicted matches (397)


def check_new_rule_coverage(
    tables: ProjectedTables,
    candidates: CandidateSet,
    predicted_matches: list[Pair],
) -> RuleCoverage:
    """Would a redo be needed? The paper's three-step audit of the new rule."""
    rule_pairs = award_project_rule().pairs(
        tables.umetrics, tables.usda, tables.l_key, tables.r_key
    )
    in_c = [p for p in rule_pairs if p in candidates]
    predicted = set(map(tuple, predicted_matches))
    sure = sure_match_pairs(candidates)  # M1 pairs were matches by definition
    covered = [p for p in in_c if p in predicted or p in set(sure)]
    return RuleCoverage(
        pairs_in_product=len(rule_pairs),
        pairs_in_candidates=len(in_c),
        predicted_as_match=len(covered),
    )


@dataclass(frozen=True)
class CombinedWorkflowOutcome:
    """Results of the Figure 9 / Figure 10 combined workflow."""

    original: WorkflowResult
    extra: WorkflowResult
    matches: tuple[Pair, ...]
    consolidated_candidates: CandidateSet  # E = C2 ∪ D2 (over merged tables)

    def summary(self) -> str:
        return (
            f"original: [{self.original.summary()}]; "
            f"extra: [{self.extra.summary()}]; "
            f"final matches={len(self.matches)}"
        )

    def explain_pair(self, a, b):
        """Lineage of pair ``(a, b)`` from whichever table slice saw it.

        The combined match set is the union of the two slices' final
        matches, so the slice that knows the pair owns its lineage;
        unknown pairs explain through the original slice (an all-negative
        lineage). Requires ``provenance=True`` at workflow time.
        """
        from ..obs.provenance import require_provenance

        for result in (self.original, self.extra):
            provenance = require_provenance(result.provenance)
            if provenance.knows((a, b)):
                return provenance.explain_pair(a, b)
        return require_provenance(self.original.provenance).explain_pair(a, b)


def train_workflow_matcher(
    candidates: CandidateSet,
    labels: LabeledPairs,
    feature_set: FeatureSet,
    matcher: MLMatcher,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    store=None,
    pool=None,
    *,
    session: EngineSession | None = None,
) -> MLMatcher:
    """Train (a clone of) *matcher* exactly as Section 9 did: drop Unsure
    pairs and the *M1* sure matches, keep the project-number-rule pairs.

    The paper verified the Section-9 matcher "was already learning the
    above positive rule from the labeled data" — i.e. rule-2 pairs were in
    its training set; removing them as well would strip nearly every clean
    high-similarity positive from the sample. The rules still take
    precedence at prediction time (the workflow only predicts on C minus
    the sure matches of *both* rules)."""
    resolved = resolve_session(
        session,
        workers=workers,
        instrumentation=instrumentation,
        store=store,
        pool=pool,
    )
    sure = sure_match_pairs(candidates)  # M1 only, as in Section 9
    pairs, y = training_labels(labels, sure)
    matrix = extract_feature_vectors(
        candidates, feature_set, pairs=pairs, session=resolved
    )
    with stage(resolved.instrumentation, "fit_matcher"):
        trained = matcher.clone()
        trained.fit(matrix, y)
    return trained


def merged_candidate_universe(
    original: ProjectedTables,
    extra: ProjectedTables,
    original_result: WorkflowResult,
    extra_result: WorkflowResult,
) -> CandidateSet:
    """E = all candidate pairs from both slices, over a merged left table.

    Corleone estimation needs one finite population containing every
    matcher's predictions, so the two slices' candidate sets are re-keyed
    onto a concatenated UMETRICS table.
    """
    merged_left = concat(
        [original.umetrics, extra.umetrics], name="UMETRICSProjectedAll"
    )
    universe = CandidateSet(
        merged_left, original.usda, original.l_key, original.r_key, name="E"
    )
    for result in (original_result, extra_result):
        for pair in result.blocked:
            universe.add(pair)
    return universe


def run_combined_workflow(
    original: ProjectedTables,
    extra: ProjectedTables,
    labels: LabeledPairs,
    feature_set: FeatureSet,
    matcher: MLMatcher,
    with_negative_rules: bool = False,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    store=None,
    provenance: "bool | object | None" = None,
    pool=None,
    *,
    session: EngineSession | None = None,
) -> CombinedWorkflowOutcome:
    """Run the Figure-9 (or, with negative rules, Figure-10) workflow.

    A resolved session with ``workers >= 2`` fans the blocking probes and
    feature extraction of both table slices over its process pool; its
    instrumentation collects a stage tree (one subtree per slice)
    renderable via
    :meth:`~repro.runtime.instrument.Instrumentation.report`; its store
    makes the run incremental: re-running with added negative rules (the
    Figure-10 patch) reuses every blocking, extraction and prediction
    artifact, since those stages' input fingerprints are unchanged.
    ``provenance=True`` (or a session with ``provenance=True``) records
    per-pair match lineage on both slices — each slice gets its own fresh
    collector (see :meth:`CombinedWorkflowOutcome.explain_pair`); the
    other kwargs are deprecated shims over the ambient session.
    """
    resolved = resolve_session(
        session,
        workers=workers,
        instrumentation=instrumentation,
        store=store,
        pool=pool,
    )
    instrumentation = resolved.instrumentation
    workflow = EMWorkflow(
        name="figure10" if with_negative_rules else "figure9",
        positive_rules=positive_rules(),
        blockers=make_blockers(),
        negative_rules=default_negative_rules() if with_negative_rules else [],
    )
    with stage(instrumentation, "original_slice"):
        original_result = workflow.run(
            original.umetrics, original.usda, original.l_key, original.r_key,
            matcher, feature_set,
            provenance=provenance, session=resolved,
        )
    with stage(instrumentation, "extra_slice"):
        extra_result = workflow.run(
            extra.umetrics, extra.usda, extra.l_key, extra.r_key,
            matcher, feature_set,
            provenance=provenance, session=resolved,
        )
    kept_original = [
        p for p in original_result.predicted_matches
        if p not in {f for f, _ in original_result.flipped}
    ]
    kept_extra = [
        p for p in extra_result.predicted_matches
        if p not in {f for f, _ in extra_result.flipped}
    ]
    matches = merge_match_sets(
        [
            original_result.sure_matches.pairs,
            extra_result.sure_matches.pairs,
            kept_original,
            kept_extra,
        ]
    )
    universe = merged_candidate_universe(original, extra, original_result, extra_result)
    return CombinedWorkflowOutcome(
        original=original_result,
        extra=extra_result,
        matches=tuple(matches),
        consolidated_candidates=universe,
    )
