"""The end-to-end case study, section by section.

:class:`CaseStudyRun` executes the whole pipeline once (scenario ->
pre-processing -> blocking -> labeling -> matching -> updated/final
workflows -> accuracy estimation) with lazily-computed, cached stages, so
examples, tests and benches can share one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..blocking.candidate_set import Pair
from ..datasets.iris import iris_matcher
from ..datasets.scenario import Scenario, ScenarioConfig, generate_scenario
from ..labeling.oracle import ExpertOracle
from ..runtime.context import EngineSession
from ..runtime.executor import WorkerPool
from ..runtime.instrument import Instrumentation, stage
from .accuracy import AccuracyOutcome, run_accuracy_estimation
from .blocking_plan import BlockingOutcome, run_blocking, threshold_sweep
from .matching import MatchingOutcome, base_feature_set, run_matching
from .preprocess import ProjectedTables, preprocess, preprocess_extra
from .sampling import LabelingOutcome, run_sampling_and_labeling
from .workflows import (
    CombinedWorkflowOutcome,
    RuleCoverage,
    check_new_rule_coverage,
    run_combined_workflow,
    train_workflow_matcher,
)

__all__ = [
    "AccuracyOutcome",
    "BlockingOutcome",
    "CaseStudyRun",
    "CombinedWorkflowOutcome",
    "LabelingOutcome",
    "MatchingOutcome",
    "ProjectedTables",
    "RuleCoverage",
    "base_feature_set",
    "check_new_rule_coverage",
    "preprocess",
    "preprocess_extra",
    "run_accuracy_estimation",
    "run_blocking",
    "run_combined_workflow",
    "run_matching",
    "run_sampling_and_labeling",
    "threshold_sweep",
    "train_workflow_matcher",
]


def _plan_fingerprints(spec) -> dict:
    """Per-node content fingerprints (empty for object-mode specs)."""
    from ..errors import PlanError

    try:
        return {"plan": spec.fingerprint(), "nodes": spec.node_fingerprints()}
    except PlanError:
        return {}


@dataclass
class CaseStudyRun:
    """One full execution of the case study over the synthetic scenario.

    Stages are cached properties computed on first access, in dependency
    order; a bench that only needs blocking never pays for matching.

    An optional :class:`~repro.store.store.ArtifactStore` makes the run
    incremental *across processes*: a second run over the same scenario
    (or a patched variant) reuses every blocking / feature-extraction /
    prediction artifact whose input fingerprints are unchanged.

    Telemetry is equally optional: an ``instrumentation`` handle (plain
    or a :class:`~repro.obs.trace.TracingInstrumentation`) collects one
    stage subtree per section — each stage property materializes its
    dependencies *before* opening its own stage, so the tree shape does
    not depend on which property is accessed first — ``workers`` fans the
    hot paths over a process pool, and ``provenance=True`` records
    per-pair match lineage on the updated/final workflows (see
    :meth:`~repro.casestudy.CombinedWorkflowOutcome.explain_pair`). A
    finished run serializes to a machine-readable record via
    :meth:`repro.obs.manifest.RunManifest.from_case_study`.

    Every capability is carried by one
    :class:`~repro.runtime.context.EngineSession`: pass ``session=`` to
    supply it directly (its workers/store/instrumentation/provenance are
    mirrored onto the matching run attributes, so manifests keep
    working), or keep using the legacy
    ``workers``/``store``/``instrumentation``/``provenance``/``pool``
    fields, which are deprecated shims the run folds into an owned
    session on first use. The session's pool is opened once and shared
    across every stage (blocking probes, all feature extractions), so
    process startup is paid once per run; :meth:`close` (or using the
    run as a context manager) releases everything the run owns — a
    supplied ``session`` or ``pool`` is the caller's to close.
    """

    config: ScenarioConfig = field(default_factory=ScenarioConfig)
    store: "object | None" = None
    workers: int = 1
    instrumentation: Instrumentation | None = None
    provenance: bool = False
    pool: WorkerPool | None = None
    session: EngineSession | None = None
    #: Optional custom Section-7 plan (exactly three blockers, C1/C2/C3
    #: order) — e.g. from ``repro.blocking.create_blockers``; ``None``
    #: runs the paper recipe. Deprecated in favour of ``plan``.
    blockers: "list | None" = None
    #: Optional full pipeline plan (:class:`repro.plan.PipelineSpec`) —
    #: e.g. ``PipelineSpec.load("examples/figure10.json")``. Drives the
    #: Section-7 blocking recipe *and* the Section-10/12 combined
    #: workflows; ``None`` runs :func:`repro.plan.figure10_spec`.
    plan: "object | None" = None
    _owned_session: EngineSession | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.session is not None:
            # Mirror the session's fields so existing readers (manifests,
            # reports, tests) see the effective configuration.
            self.workers = self.session.workers
            self.instrumentation = self.session.instrumentation
            self.store = self.session.store
            self.provenance = self.session.provenance

    @property
    def engine_session(self) -> EngineSession:
        """The session every stage runs under: the injected one, else a
        run-owned session folded from the legacy fields on first use."""
        if self.session is not None:
            return self.session
        if self._owned_session is None:
            self._owned_session = EngineSession(
                workers=self.workers,
                store=self.store,
                instrumentation=self.instrumentation,
                provenance=self.provenance,
                pool=self.pool,
                seed=self.config.seed,
            )
        return self._owned_session

    @property
    def worker_pool(self) -> WorkerPool | None:
        """The pool shared by every stage (``None`` for serial runs)."""
        return self.engine_session.worker_pool

    @property
    def effective_plan(self):
        """The pipeline spec this run executes: ``plan``, else the paper
        recipe (with ``blockers`` substituted when given)."""
        from ..plan.figure10 import figure10_spec

        if self.plan is not None:
            return self.plan
        if self.blockers is not None:
            return figure10_spec(blockers=self.blockers)
        return figure10_spec()

    @property
    def _plan_blockers(self) -> "list | None":
        """Section-7 blockers derived from the plan (``None`` = paper
        recipe, letting :func:`run_blocking` use ``make_blockers``)."""
        if self.blockers is not None:
            return list(self.blockers)
        if self.plan is not None:
            from ..plan.figure10 import recipe_from_spec

            return list(recipe_from_spec(self.plan).blockers)
        return None

    def plan_record(self) -> dict:
        """The plan as manifest data: canonical when JSON-safe, else a
        degraded structural sketch (ids/kinds only) for object-mode specs."""
        from ..errors import PlanError

        spec = self.effective_plan
        try:
            record = spec.canonical()
        except PlanError:
            record = {
                "name": spec.name,
                "nodes": [{"id": n.id, "kind": n.kind} for n in spec.nodes],
                "degraded": True,
            }
        record["fingerprints"] = _plan_fingerprints(spec)
        return record

    def close(self) -> None:
        """Release the run-owned session and its worker pool (idempotent;
        an injected ``session`` or ``pool`` is the caller's to close)."""
        owned, self._owned_session = self._owned_session, None
        if owned is not None:
            owned.close()

    def __enter__(self) -> "CaseStudyRun":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @cached_property
    def scenario(self) -> Scenario:
        with stage(self.instrumentation, "generate_scenario"):
            return generate_scenario(self.config)

    # ------------------------------------------------------------ §6
    @cached_property
    def projected(self) -> ProjectedTables:
        """First-pass projected tables (no ProjectNumber yet)."""
        scenario = self.scenario
        with stage(self.instrumentation, "preprocess"):
            return preprocess(scenario, include_project_number=False)

    @cached_property
    def projected_v2(self) -> ProjectedTables:
        """Section-10 revision: USDAProjected gains ProjectNumber."""
        scenario = self.scenario
        with stage(self.instrumentation, "preprocess"):
            return preprocess(scenario, include_project_number=True)

    @cached_property
    def projected_extra(self) -> ProjectedTables:
        scenario = self.scenario
        with stage(self.instrumentation, "preprocess"):
            return preprocess_extra(scenario, include_project_number=True)

    # ------------------------------------------------------------ §7
    @cached_property
    def blocking(self) -> BlockingOutcome:
        tables = self.projected
        with stage(self.instrumentation, "sec7:blocking"):
            return run_blocking(
                tables, session=self.engine_session, blockers=self._plan_blockers
            )

    @cached_property
    def blocking_v2(self) -> BlockingOutcome:
        """Blocking over the revised projected tables (same blockers)."""
        tables = self.projected_v2
        with stage(self.instrumentation, "sec7:blocking"):
            return run_blocking(
                tables, session=self.engine_session, blockers=self._plan_blockers
            )

    # ------------------------------------------------------------ §8
    @cached_property
    def labeling(self) -> LabelingOutcome:
        blocking = self.blocking_v2
        tables = self.projected
        with stage(self.instrumentation, "sec8:labeling"):
            return run_sampling_and_labeling(
                blocking.candidates,
                tables.truth,
                base_feature_set(tables),
                seed=self.config.seed,
            )

    # ------------------------------------------------------------ §9
    @cached_property
    def matching(self) -> MatchingOutcome:
        blocking = self.blocking_v2
        labeling = self.labeling
        tables = self.projected_v2
        with stage(self.instrumentation, "sec9:matching"):
            return run_matching(
                blocking.candidates,
                labeling.labels,
                tables,
                seed=self.config.seed,
                session=self.engine_session,
            )

    # ------------------------------------------------------------ §10/12
    def _combined_workflow(
        self, stage_name: str, with_negative_rules: bool
    ) -> CombinedWorkflowOutcome:
        blocking = self.blocking_v2
        labeling = self.labeling
        matching = self.matching
        original, extra = self.projected_v2, self.projected_extra
        with stage(self.instrumentation, stage_name):
            matcher = train_workflow_matcher(
                blocking.candidates,
                labeling.labels,
                matching.feature_set,
                matching.matcher,
                session=self.engine_session,
            )
            return run_combined_workflow(
                original, extra,
                labeling.labels, matching.feature_set, matcher,
                with_negative_rules=with_negative_rules,
                provenance=self.provenance,
                session=self.engine_session,
                plan=self.effective_plan,
            )

    @cached_property
    def updated_workflow(self) -> CombinedWorkflowOutcome:
        return self._combined_workflow("sec10:updated_workflow", False)

    @cached_property
    def final_workflow(self) -> CombinedWorkflowOutcome:
        return self._combined_workflow("sec12:final_workflow", True)

    # ------------------------------------------------------------ §11
    @cached_property
    def combined_truth(self) -> set[Pair]:
        return self.projected_v2.truth | self.projected_extra.truth

    @cached_property
    def iris_matches(self) -> list[Pair]:
        v2, extra_tables = self.projected_v2, self.projected_extra
        with stage(self.instrumentation, "iris_baseline"):
            matcher = iris_matcher()
            original = matcher.predict_tables(
                v2.umetrics, v2.usda, v2.l_key, v2.r_key,
            )
            extra = matcher.predict_tables(
                extra_tables.umetrics, extra_tables.usda,
                extra_tables.l_key, extra_tables.r_key,
            )
            return list(original.pairs) + list(extra.pairs)

    @cached_property
    def accuracy(self) -> AccuracyOutcome:
        from .sampling import make_oracles

        final = self.final_workflow
        updated = self.updated_workflow
        iris = self.iris_matches
        truth = self.combined_truth
        with stage(self.instrumentation, "sec11:accuracy"):
            authority, _, _ = make_oracles(truth, self.config.seed)
            return run_accuracy_estimation(
                final.consolidated_candidates,
                predictions={
                    "learning-based": list(updated.matches),
                    "IRIS (rules)": iris,
                    "learning + negative rules": list(final.matches),
                },
                oracle=authority,
                sample_sizes=(200, 400),
                seed=self.config.seed,
            )

    # ------------------------------------------------------------ §12
    @cached_property
    def monitoring(self) -> "AccuracyMonitor":
        """One Section-12 monitoring round over the final match batch.

        The returned :class:`~repro.evaluation.monitor.AccuracyMonitor`
        carries the report history; the run manifest embeds its JSON
        export so drift checks are recorded alongside timings.
        """
        from ..evaluation.monitor import AccuracyMonitor
        from .sampling import make_oracles

        final = self.final_workflow
        truth = self.combined_truth
        with stage(self.instrumentation, "sec12:monitoring"):
            authority, _, _ = make_oracles(truth, self.config.seed)
            monitor = AccuracyMonitor(seed=self.config.seed)
            monitor.check_batch(
                "final_workflow",
                final.consolidated_candidates,
                list(final.matches),
                authority,
            )
            return monitor
