"""The end-to-end case study, section by section.

:class:`CaseStudyRun` executes the whole pipeline once (scenario ->
pre-processing -> blocking -> labeling -> matching -> updated/final
workflows -> accuracy estimation) with lazily-computed, cached stages, so
examples, tests and benches can share one run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..blocking.candidate_set import Pair
from ..datasets.iris import iris_matcher
from ..datasets.scenario import Scenario, ScenarioConfig, generate_scenario
from ..labeling.oracle import ExpertOracle
from .accuracy import AccuracyOutcome, run_accuracy_estimation
from .blocking_plan import BlockingOutcome, run_blocking, threshold_sweep
from .matching import MatchingOutcome, base_feature_set, run_matching
from .preprocess import ProjectedTables, preprocess, preprocess_extra
from .sampling import LabelingOutcome, run_sampling_and_labeling
from .workflows import (
    CombinedWorkflowOutcome,
    RuleCoverage,
    check_new_rule_coverage,
    run_combined_workflow,
    train_workflow_matcher,
)

__all__ = [
    "AccuracyOutcome",
    "BlockingOutcome",
    "CaseStudyRun",
    "CombinedWorkflowOutcome",
    "LabelingOutcome",
    "MatchingOutcome",
    "ProjectedTables",
    "RuleCoverage",
    "base_feature_set",
    "check_new_rule_coverage",
    "preprocess",
    "preprocess_extra",
    "run_accuracy_estimation",
    "run_blocking",
    "run_combined_workflow",
    "run_matching",
    "run_sampling_and_labeling",
    "threshold_sweep",
    "train_workflow_matcher",
]


@dataclass
class CaseStudyRun:
    """One full execution of the case study over the synthetic scenario.

    Stages are cached properties computed on first access, in dependency
    order; a bench that only needs blocking never pays for matching.

    An optional :class:`~repro.store.store.ArtifactStore` makes the run
    incremental *across processes*: a second run over the same scenario
    (or a patched variant) reuses every blocking / feature-extraction /
    prediction artifact whose input fingerprints are unchanged.
    """

    config: ScenarioConfig = field(default_factory=ScenarioConfig)
    store: "object | None" = None

    @cached_property
    def scenario(self) -> Scenario:
        return generate_scenario(self.config)

    # ------------------------------------------------------------ §6
    @cached_property
    def projected(self) -> ProjectedTables:
        """First-pass projected tables (no ProjectNumber yet)."""
        return preprocess(self.scenario, include_project_number=False)

    @cached_property
    def projected_v2(self) -> ProjectedTables:
        """Section-10 revision: USDAProjected gains ProjectNumber."""
        return preprocess(self.scenario, include_project_number=True)

    @cached_property
    def projected_extra(self) -> ProjectedTables:
        return preprocess_extra(self.scenario, include_project_number=True)

    # ------------------------------------------------------------ §7
    @cached_property
    def blocking(self) -> BlockingOutcome:
        return run_blocking(self.projected, store=self.store)

    @cached_property
    def blocking_v2(self) -> BlockingOutcome:
        """Blocking over the revised projected tables (same blockers)."""
        return run_blocking(self.projected_v2, store=self.store)

    # ------------------------------------------------------------ §8
    @cached_property
    def labeling(self) -> LabelingOutcome:
        return run_sampling_and_labeling(
            self.blocking_v2.candidates,
            self.projected.truth,
            base_feature_set(self.projected),
            seed=self.config.seed,
        )

    # ------------------------------------------------------------ §9
    @cached_property
    def matching(self) -> MatchingOutcome:
        return run_matching(
            self.blocking_v2.candidates,
            self.labeling.labels,
            self.projected_v2,
            seed=self.config.seed,
            store=self.store,
        )

    # ------------------------------------------------------------ §10/12
    @cached_property
    def updated_workflow(self) -> CombinedWorkflowOutcome:
        matcher = train_workflow_matcher(
            self.blocking_v2.candidates,
            self.labeling.labels,
            self.matching.feature_set,
            self.matching.matcher,
            store=self.store,
        )
        return run_combined_workflow(
            self.projected_v2, self.projected_extra,
            self.labeling.labels, self.matching.feature_set, matcher,
            with_negative_rules=False,
            store=self.store,
        )

    @cached_property
    def final_workflow(self) -> CombinedWorkflowOutcome:
        matcher = train_workflow_matcher(
            self.blocking_v2.candidates,
            self.labeling.labels,
            self.matching.feature_set,
            self.matching.matcher,
            store=self.store,
        )
        return run_combined_workflow(
            self.projected_v2, self.projected_extra,
            self.labeling.labels, self.matching.feature_set, matcher,
            with_negative_rules=True,
            store=self.store,
        )

    # ------------------------------------------------------------ §11
    @cached_property
    def combined_truth(self) -> set[Pair]:
        return self.projected_v2.truth | self.projected_extra.truth

    @cached_property
    def iris_matches(self) -> list[Pair]:
        matcher = iris_matcher()
        original = matcher.predict_tables(
            self.projected_v2.umetrics, self.projected_v2.usda,
            self.projected_v2.l_key, self.projected_v2.r_key,
        )
        extra = matcher.predict_tables(
            self.projected_extra.umetrics, self.projected_extra.usda,
            self.projected_extra.l_key, self.projected_extra.r_key,
        )
        return list(original.pairs) + list(extra.pairs)

    @cached_property
    def accuracy(self) -> AccuracyOutcome:
        from .sampling import make_oracles

        authority, _, _ = make_oracles(self.combined_truth, self.config.seed)
        return run_accuracy_estimation(
            self.final_workflow.consolidated_candidates,
            predictions={
                "learning-based": list(self.updated_workflow.matches),
                "IRIS (rules)": self.iris_matches,
                "learning + negative rules": list(self.final_workflow.matches),
            },
            oracle=authority,
            sample_sizes=(200, 400),
            seed=self.config.seed,
        )
