"""EM workflow architecture: composable workflows, patching, project log."""

from .guide import DEFAULT_GUIDE, GuideAudit, GuideStep, HowToGuide
from .patch import (
    ReuseReport,
    combine_with_precedence,
    label_reuse,
    merge_match_sets,
)
from .project import EMProject, LogEntry, Stage
from .serialize import (
    PackagedWorkflow,
    deserialize_model,
    feature_from_name,
    feature_set_from_names,
    serialize_model,
)
from .workflow import EMWorkflow, WorkflowResult

__all__ = [
    "DEFAULT_GUIDE",
    "EMProject",
    "EMWorkflow",
    "GuideAudit",
    "GuideStep",
    "HowToGuide",
    "LogEntry",
    "PackagedWorkflow",
    "ReuseReport",
    "Stage",
    "WorkflowResult",
    "combine_with_precedence",
    "deserialize_model",
    "feature_from_name",
    "feature_set_from_names",
    "serialize_model",
    "label_reuse",
    "merge_match_sets",
]
