"""The how-to guide, as an object (the paper's first challenge).

Section 13 argues EM systems must ship *how-to guides*: step-by-step
instructions for the whole process, because users "had no idea what to do
first, what to do second". This module encodes PyMatcher's guide — the
sequence the case study followed — with per-step guidance text, and can
audit an :class:`~repro.core.project.EMProject` history against it:
which steps ran, which were skipped, and where the process zig-zagged.
"""

from __future__ import annotations

from dataclasses import dataclass

from .project import EMProject, Stage


@dataclass(frozen=True)
class GuideStep:
    """One step of the guide."""

    stage: Stage
    guidance: str


#: The guide the case study followed (Sections 4-12, in order).
DEFAULT_GUIDE: tuple[GuideStep, ...] = (
    GuideStep(
        Stage.UNDERSTAND_DATA,
        "Browse sample rows and per-column statistics of every raw table; "
        "identify the entities and the key/foreign-key relationships.",
    ),
    GuideStep(
        Stage.MATCH_DEFINITION,
        "Obtain a written match definition from the domain experts; extract "
        "any exact positive rules; expect the definition to be imprecise "
        "and to evolve.",
    ),
    GuideStep(
        Stage.PREPROCESS,
        "Keep only the tables relevant for matching (check value overlap of "
        "similarly-named attributes before discarding); project, align "
        "column names, and add a record id.",
    ),
    GuideStep(
        Stage.BLOCK,
        "Compose recall-oriented blockers; force positive-rule pairs into "
        "the candidate set; sweep thresholds; run the blocking debugger "
        "before freezing.",
    ),
    GuideStep(
        Stage.SAMPLE_AND_LABEL,
        "Label in small iterations with Yes/No/Unsure; cross-check labelers "
        "against each other; debug the labels with leave-one-out CV and "
        "discuss discrepancy classes with the experts.",
    ),
    GuideStep(
        Stage.MATCH,
        "Drop Unsure pairs and sure matches; select a matcher by k-fold CV; "
        "debug its mismatches (expect to add features); train on all labels "
        "and predict over the candidate set minus the sure matches.",
    ),
    GuideStep(
        Stage.ESTIMATE_ACCURACY,
        "Estimate precision/recall from a labeled random sample of the "
        "candidate universe (all compared matchers must predict over the "
        "same universe); label more if the intervals are too wide.",
    ),
    GuideStep(
        Stage.IMPROVE_WITH_RULES,
        "Solicit domain-specific negative rules and apply them to the "
        "learner's output — localized changes that buy precision cheaply.",
    ),
    GuideStep(
        Stage.PRODUCTION,
        "Package the workflow; monitor accuracy on every new data slice by "
        "sampled labeling; return to development when quality drifts.",
    ),
)


@dataclass(frozen=True)
class GuideAudit:
    """How a project's history compares to the guide."""

    followed: tuple[Stage, ...]
    skipped: tuple[Stage, ...]
    revisits: int

    @property
    def complete(self) -> bool:
        return not self.skipped


class HowToGuide:
    """A step sequence with guidance text and project auditing."""

    def __init__(self, steps: tuple[GuideStep, ...] = DEFAULT_GUIDE) -> None:
        self.steps = tuple(steps)

    def guidance_for(self, stage: Stage) -> str:
        """The guide's advice for a stage."""
        for step in self.steps:
            if step.stage is stage:
                return step.guidance
        raise KeyError(stage)

    def next_step(self, project: EMProject) -> GuideStep | None:
        """The first guide step the project has not entered yet (in guide
        order); ``None`` when the project has touched every step."""
        visited = {entry.stage for entry in project.history}
        for step in self.steps:
            if step.stage not in visited:
                return step
        return None

    def audit(self, project: EMProject) -> GuideAudit:
        """Compare a project's history to the guide."""
        visited_in_order: list[Stage] = []
        for entry in project.history:
            if not visited_in_order or visited_in_order[-1] is not entry.stage:
                visited_in_order.append(entry.stage)
        visited = set(visited_in_order)
        return GuideAudit(
            followed=tuple(s.stage for s in self.steps if s.stage in visited),
            skipped=tuple(s.stage for s in self.steps if s.stage not in visited),
            revisits=project.zigzag_count(),
        )

    def render(self) -> str:
        """The guide as numbered text (what a user would read first)."""
        lines = ["How to execute entity matching, end to end:"]
        for i, step in enumerate(self.steps, start=1):
            lines.append(f"  {i}. [{step.stage.value}] {step.guidance}")
        lines.append(
            "Expect to revisit earlier steps as definitions and data change — "
            "the process is a conversation, not a pipeline."
        )
        return "\n".join(lines)
