"""Workflow patching (Section 10's change-handling strategy).

When the match definition or the data changed mid-project, the team did
*not* redo the EM process. They left the current workflow alone and added
a new workflow — a "patch" — whose predictions take precedence where the
two overlap, and whose candidate pairs reuse the existing labeled data.
This module provides the combinators for that strategy plus the reuse
accounting that justifies it (the paper's patches reused 100 % of the
labels: "we did not have to label any new pairs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..blocking.candidate_set import Pair
from ..errors import WorkflowError
from ..labeling.labels import LabeledPairs


def _as_pair(value: object) -> Pair:
    """Coerce to a (left-id, right-id) tuple, rejecting any other arity.

    A 3-tuple in a match set is always a caller bug (a pair zipped with a
    score, or a raw csv row), and letting it through poisons every
    downstream set operation — so fail at the merge boundary.
    """
    pair = tuple(value)  # type: ignore[arg-type]
    if len(pair) != 2:
        raise WorkflowError(
            f"match pairs must be (left-id, right-id) 2-tuples, got {pair!r}"
        )
    return pair


def combine_with_precedence(
    old_predictions: Mapping[Pair, int], new_predictions: Mapping[Pair, int]
) -> dict[Pair, int]:
    """Merge prediction maps; the *new* workflow wins on overlap."""
    combined = {_as_pair(p): int(v) for p, v in old_predictions.items()}
    for pair, value in new_predictions.items():
        combined[_as_pair(pair)] = int(value)
    return combined


def merge_match_sets(match_sets: Sequence[Iterable[Pair]]) -> list[Pair]:
    """Union match lists, de-duplicated, preserving first-seen order.

    This is the final-stage union of the Figure 9/10 workflows:
    C1 ∪ D1 ∪ R1 ∪ R2 (or with S1/S2 after negative rules).
    """
    seen: set[Pair] = set()
    merged: list[Pair] = []
    for matches in match_sets:
        for pair in matches:
            pair = _as_pair(pair)
            if pair not in seen:
                seen.add(pair)
                merged.append(pair)
    return merged


@dataclass(frozen=True)
class ReuseReport:
    """How much existing labeled data a patch workflow could reuse."""

    labeled_total: int
    reusable: int
    new_pairs_to_label: int

    @property
    def reuse_fraction(self) -> float:
        if self.labeled_total == 0:
            return 0.0
        return self.reusable / self.labeled_total

    def __str__(self) -> str:
        return (
            f"{self.reusable}/{self.labeled_total} labels reusable "
            f"({self.reuse_fraction:.0%}); {self.new_pairs_to_label} new pairs need labels"
        )


def label_reuse(
    labels: LabeledPairs,
    new_candidates: Iterable[Pair],
    sample_size: int | None = None,
) -> ReuseReport:
    """Account for label reuse when the candidate set changes.

    *reusable* counts existing labels whose pairs are still in the new
    candidate set. *new_pairs_to_label* is how many pairs a fresh sample of
    *sample_size* (default: the current number of labels) would add beyond
    the reusable ones — 0 when the existing labels already cover a sample
    of that size, which is the paper's "no new labeling needed" case.
    """
    new_set = {tuple(p) for p in new_candidates}
    reusable = sum(1 for pair in labels.pairs() if pair in new_set)
    target = sample_size if sample_size is not None else len(labels)
    return ReuseReport(
        labeled_total=len(labels),
        reusable=reusable,
        new_pairs_to_label=max(0, target - reusable),
    )
