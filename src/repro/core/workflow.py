"""Composable EM workflows (Figures 8-10 of the paper).

A :class:`EMWorkflow` bundles the stages the case study's workflows share:

1. apply positive (sure-match) rules to the input tables -> C1;
2. apply the blockers and union their outputs -> C2;
3. C = C2 - C1 is what a matcher will predict over;
4. apply a trained matcher to C -> R;
5. optionally filter R through negative rules;
6. final matches = C1 ∪ (kept R).

Figure 8 is this workflow with only the M1 rule and no negative rules;
Figure 9 adds the award/project-number rule and a second table slice
(handled by running the same workflow on the extra records — see
:mod:`repro.core.patch`); Figure 10 adds the negative rules.

Since the plan IR landed, :class:`EMWorkflow` is a thin wrapper: it
assembles an object-mode :class:`~repro.plan.spec.PipelineSpec` from its
rules/blockers/matcher and delegates to
``compile_plan(spec).execute(session)`` — the same compiler the CLI's
``--plan`` path and the Figure-10 recipe run through — so every stage
still flows through ``session.run_stage`` with unchanged fingerprints,
trace names and counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..blocking.base import Blocker
from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import WorkflowError
from ..features.generate import FeatureSet
from ..matchers.ml_matcher import MLMatcher
from ..plan.compile import compile_plan
from ..plan.spec import NodeSpec, PipelineSpec
from ..rules.negative import ComparableMismatchRule
from ..rules.positive import ExactNumberRule
from ..runtime.context import EngineSession, resolve_session
from ..runtime.instrument import Instrumentation
from ..table import Table


@dataclass(frozen=True)
class WorkflowResult:
    """Everything a workflow run produced, stage by stage.

    ``provenance`` is populated only when the run asked for it
    (``provenance=True``); :meth:`explain_pair` then reports any pair's
    full decision lineage.
    """

    sure_matches: CandidateSet
    blocked: CandidateSet
    to_predict: CandidateSet
    predicted_matches: tuple[Pair, ...]
    flipped: tuple[tuple[Pair, str], ...]
    matches: tuple[Pair, ...]
    provenance: "object | None" = None

    @property
    def num_matches(self) -> int:
        return len(self.matches)

    def explain_pair(self, a, b):
        """Lineage of pair ``(a, b)`` — blockers, rules, score, verdict.

        Requires the workflow to have run with ``provenance=True``."""
        from ..obs.provenance import require_provenance

        return require_provenance(self.provenance).explain_pair(a, b)

    def summary(self) -> str:
        return (
            f"sure={len(self.sure_matches)}, blocked={len(self.blocked)}, "
            f"to_predict={len(self.to_predict)}, "
            f"predicted={len(self.predicted_matches)}, "
            f"flipped={len(self.flipped)}, total_matches={len(self.matches)}"
        )


@dataclass
class EMWorkflow:
    """A rules + blocking + learning (+ negative rules) workflow."""

    name: str
    positive_rules: list[ExactNumberRule] = field(default_factory=list)
    blockers: list[Blocker] = field(default_factory=list)
    negative_rules: list[ComparableMismatchRule] = field(default_factory=list)

    def _resolve_collector(self, provenance, session: EngineSession):
        """Map the run's provenance argument onto a collector (or None).

        ``None`` inherits the session policy; ``False`` is off; ``True``
        builds a fresh per-run collector; anything else is an explicit
        :class:`~repro.obs.provenance.MatchProvenance`-style collector.
        """
        policy = provenance if provenance is not None else session.provenance
        if policy is None or policy is False:
            return None
        if policy is True:
            from ..obs.provenance import MatchProvenance

            return MatchProvenance(self.name)
        return policy

    # -- plan assembly -------------------------------------------------

    def _candidate_nodes(self) -> list[NodeSpec]:
        """Stages 1-3 as plan nodes: C1, the blockers, C2 = union, C.

        Live rule/blocker objects travel as plan *inputs* (artifact
        edges), not params, so the spec stays purely structural.
        """
        table_edges = {"ltable": "ltable", "rtable": "rtable", "keys": "keys"}
        nodes = [
            NodeSpec(
                id="c1",
                kind="rules",
                params={"mode": "positive", "name": "C1",
                        "trace": "positive_rules"},
                inputs={**table_edges, "rules": "positive_rules"},
                outputs={"matches": "c1"},
            )
        ]
        for i in range(len(self.blockers)):
            nodes.append(
                NodeSpec(
                    id=f"block_{i}",
                    kind="block",
                    inputs={**table_edges, "blocker": f"blocker_{i}"},
                    outputs={"candidates": f"b{i}"},
                )
            )
        if self.blockers:
            union_inputs = {"c1": "c1"}
            union_inputs.update(
                {f"b{i}": f"b{i}" for i in range(len(self.blockers))}
            )
            nodes.append(
                NodeSpec(
                    id="c2",
                    kind="combine",
                    params={"op": "union", "name": "C2"},
                    inputs=union_inputs,
                    outputs={"candidates": "c2"},
                )
            )
        nodes.append(
            NodeSpec(
                id="c",
                kind="combine",
                # count_left records the legacy "candidates" counter: |C2|
                # (|C1| when there is nothing to union, exactly as before).
                params={"op": "difference", "name": "C",
                        "count_left": "candidates"},
                inputs={"left": "c2" if self.blockers else "c1", "right": "c1"},
                outputs={"candidates": "c"},
            )
        )
        return nodes

    def _plan_inputs(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str
    ) -> dict:
        env = {
            "ltable": ltable,
            "rtable": rtable,
            "keys": (l_key, r_key),
            "positive_rules": list(self.positive_rules),
        }
        for i, blocker in enumerate(self.blockers):
            env[f"blocker_{i}"] = blocker
        return env

    def build_candidates(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        workers: int | None = None,
        instrumentation: Instrumentation | None = None,
        store=None,
        provenance=None,
        pool=None,
        *,
        session: EngineSession | None = None,
    ) -> tuple[CandidateSet, CandidateSet, CandidateSet]:
        """Stages 1-3: returns (C1 sure matches, C2 blocked, C = C2 - C1).

        The sure-match pairs are force-included in C2 (the case study's
        blocking step 1 exists precisely to keep every M1 pair in the
        candidate set) and then carved out of C for prediction.

        Each stage runs through ``session.run_stage``: with a store on
        the resolved session, the rule pass and every blocker are
        memoized by the content fingerprints of their inputs (operators
        are built here — not via a blocker kwarg — so third-party
        blockers whose signatures predate the store still cache), and
        with a provenance collector (explicit, or carried by the
        session), each positive rule's pair set and each blocker's
        output are recorded so ``explain_pair`` can name the exact
        emitters of any candidate.

        ``workers``/``instrumentation``/``store``/``pool`` are deprecated
        shims over the ambient session (``None`` inherits).
        """
        if not self.blockers and not self.positive_rules:
            raise WorkflowError(f"workflow {self.name!r} has no rules and no blockers")
        resolved = resolve_session(
            session,
            workers=workers,
            instrumentation=instrumentation,
            store=store,
            pool=pool,
        )
        collector = self._resolve_collector(provenance, resolved)
        env = self._plan_inputs(ltable, rtable, l_key, r_key)
        spec = PipelineSpec(
            name=self.name,
            nodes=tuple(self._candidate_nodes()),
            inputs=tuple(env),
        )
        result = compile_plan(spec).execute(
            resolved,
            inputs=env,
            provenance=collector if collector is not None else False,
        )
        c1 = result.artifacts["c1"]
        c2 = result.artifacts["c2"] if self.blockers else c1
        return c1, c2, result.artifacts["c"]

    def run(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        matcher: MLMatcher,
        feature_set: FeatureSet,
        workers: int | None = None,
        instrumentation: Instrumentation | None = None,
        store=None,
        provenance: "bool | object | None" = None,
        pool=None,
        *,
        session: EngineSession | None = None,
    ) -> WorkflowResult:
        """Run all stages with a *trained* matcher.

        With a store on the resolved session, blocking, feature
        extraction and prediction are each memoized by input
        fingerprints, so a patched re-run (say, added negative rules)
        reuses every unchanged stage.

        *provenance* accepts a
        :class:`~repro.obs.provenance.MatchProvenance` collector (also
        the form a session's ``provenance=`` carries), ``True`` as a shim
        building a fresh per-run collector, ``False`` to force it off, or
        ``None`` to inherit the session policy. A collector records
        per-pair lineage — emitting blockers, firing positive rule,
        matcher score vs threshold, flipping negative rule — at the cost
        of one extra ``predict_proba`` pass; the match results are
        unchanged.
        """
        if not self.blockers and not self.positive_rules:
            raise WorkflowError(f"workflow {self.name!r} has no rules and no blockers")
        if not matcher.is_fitted:
            raise WorkflowError(
                f"workflow {self.name!r} needs a trained matcher; "
                f"{matcher.name!r} is unfitted"
            )
        resolved = resolve_session(
            session,
            workers=workers,
            instrumentation=instrumentation,
            store=store,
            pool=pool,
        )
        collector = self._resolve_collector(provenance, resolved)
        nodes = self._candidate_nodes() + [
            NodeSpec(
                id="extract",
                kind="extract",
                params={"skip_empty": True},
                inputs={"candidates": "c", "feature_set": "feature_set"},
                outputs={"matrix": "matrix"},
            ),
            NodeSpec(
                id="predict",
                kind="predict",
                inputs={"matcher": "matcher", "matrix": "matrix"},
                outputs={"matches": "predicted"},
            ),
            NodeSpec(
                id="negative",
                kind="rules",
                params={"mode": "negative"},
                inputs={"matches": "predicted", "candidates": "c",
                        "rules": "negative_rules"},
                outputs={"kept": "kept", "flipped": "flipped"},
            ),
            NodeSpec(
                id="final",
                kind="combine",
                params={"op": "finalize_matches"},
                inputs={"sure": "c1", "kept": "kept",
                        "predicted": "predicted", "flipped": "flipped"},
                outputs={"matches": "final"},
            ),
        ]
        env = self._plan_inputs(ltable, rtable, l_key, r_key)
        env.update(
            {
                "feature_set": feature_set,
                "matcher": matcher,
                "negative_rules": list(self.negative_rules),
            }
        )
        spec = PipelineSpec(
            name=self.name, nodes=tuple(nodes), inputs=tuple(env),
            outputs={"matches": "final"},
        )
        result = compile_plan(spec).execute(
            resolved,
            inputs=env,
            provenance=collector if collector is not None else False,
        )
        artifacts = result.artifacts
        c1 = artifacts["c1"]
        return WorkflowResult(
            sure_matches=c1,
            blocked=artifacts["c2"] if self.blockers else c1,
            to_predict=artifacts["c"],
            predicted_matches=tuple(artifacts["predicted"]),
            flipped=tuple(artifacts["flipped"]),
            matches=tuple(artifacts["final"]),
            provenance=collector,
        )
