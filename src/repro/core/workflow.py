"""Composable EM workflows (Figures 8-10 of the paper).

A :class:`EMWorkflow` bundles the stages the case study's workflows share:

1. apply positive (sure-match) rules to the input tables -> C1;
2. apply the blockers and union their outputs -> C2;
3. C = C2 - C1 is what a matcher will predict over;
4. apply a trained matcher to C -> R;
5. optionally filter R through negative rules;
6. final matches = C1 ∪ (kept R).

Figure 8 is this workflow with only the M1 rule and no negative rules;
Figure 9 adds the award/project-number rule and a second table slice
(handled by running the same workflow on the extra records — see
:mod:`repro.core.patch`); Figure 10 adds the negative rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..blocking.base import Blocker
from ..blocking.candidate_set import CandidateSet, Pair
from ..blocking.combiner import union_candidates
from ..errors import WorkflowError
from ..features.generate import FeatureSet
from ..features.vectors import extract_feature_vectors
from ..matchers.ml_matcher import MLMatcher
from ..rules.negative import ComparableMismatchRule, apply_negative_rules
from ..rules.positive import ExactNumberRule, sure_matches
from ..runtime.instrument import Instrumentation, count, stage
from ..table import Table


@dataclass(frozen=True)
class WorkflowResult:
    """Everything a workflow run produced, stage by stage.

    ``provenance`` is populated only when the run asked for it
    (``provenance=True``); :meth:`explain_pair` then reports any pair's
    full decision lineage.
    """

    sure_matches: CandidateSet
    blocked: CandidateSet
    to_predict: CandidateSet
    predicted_matches: tuple[Pair, ...]
    flipped: tuple[tuple[Pair, str], ...]
    matches: tuple[Pair, ...]
    provenance: "object | None" = None

    @property
    def num_matches(self) -> int:
        return len(self.matches)

    def explain_pair(self, a, b):
        """Lineage of pair ``(a, b)`` — blockers, rules, score, verdict.

        Requires the workflow to have run with ``provenance=True``."""
        from ..obs.provenance import require_provenance

        return require_provenance(self.provenance).explain_pair(a, b)

    def summary(self) -> str:
        return (
            f"sure={len(self.sure_matches)}, blocked={len(self.blocked)}, "
            f"to_predict={len(self.to_predict)}, "
            f"predicted={len(self.predicted_matches)}, "
            f"flipped={len(self.flipped)}, total_matches={len(self.matches)}"
        )


@dataclass
class EMWorkflow:
    """A rules + blocking + learning (+ negative rules) workflow."""

    name: str
    positive_rules: list[ExactNumberRule] = field(default_factory=list)
    blockers: list[Blocker] = field(default_factory=list)
    negative_rules: list[ComparableMismatchRule] = field(default_factory=list)

    def build_candidates(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        workers: int = 1,
        instrumentation: Instrumentation | None = None,
        store=None,
        provenance=None,
        pool=None,
    ) -> tuple[CandidateSet, CandidateSet, CandidateSet]:
        """Stages 1-3: returns (C1 sure matches, C2 blocked, C = C2 - C1).

        The sure-match pairs are force-included in C2 (the case study's
        blocking step 1 exists precisely to keep every M1 pair in the
        candidate set) and then carved out of C for prediction.

        With a *store*, the rule pass and every blocker are memoized by
        the content fingerprints of their inputs — ``cached_block`` is
        invoked here (not via a blocker kwarg) so third-party blockers
        whose signatures predate the store still cache.

        With a *provenance* collector
        (:class:`~repro.obs.provenance.MatchProvenance`), each positive
        rule's pair set and each blocker's output are recorded so
        ``explain_pair`` can name the exact emitters of any candidate.

        A shared *pool* (:class:`~repro.runtime.executor.WorkerPool`) is
        passed through to every blocker so all stages reuse the same
        worker processes; the caller owns its lifetime.
        """
        if not self.blockers and not self.positive_rules:
            raise WorkflowError(f"workflow {self.name!r} has no rules and no blockers")
        if store is not None:
            from ..store.stages import cached_block, cached_sure_matches
        with stage(instrumentation, "positive_rules"):
            if not self.positive_rules:
                c1 = CandidateSet(ltable, rtable, l_key, r_key, name="C1")
            elif store is not None:
                c1 = cached_sure_matches(
                    store, self.positive_rules, ltable, rtable, l_key, r_key,
                    name="C1", instrumentation=instrumentation,
                )
            else:
                c1 = sure_matches(
                    self.positive_rules, ltable, rtable, l_key, r_key, name="C1"
                )
            count(instrumentation, "sure_pairs", len(c1))
            if provenance is not None:
                for rule in self.positive_rules:
                    provenance.record_rule(
                        rule.name, rule.pairs(ltable, rtable, l_key, r_key).pairs
                    )
        blocked = []
        for blocker in self.blockers:
            with stage(instrumentation, f"block:{blocker.short_name}"):
                if store is not None:
                    result = cached_block(
                        store, blocker, ltable, rtable, l_key, r_key,
                        workers=workers, instrumentation=instrumentation,
                        pool=pool,
                    )
                else:
                    result = blocker.block_tables(
                        ltable, rtable, l_key, r_key,
                        workers=workers, instrumentation=instrumentation,
                        pool=pool,
                    )
                blocked.append(result)
                if provenance is not None:
                    provenance.record_blocker(blocker.short_name, result.pairs)
        c2 = union_candidates([c1] + blocked, name="C2") if blocked else c1
        c = c2.difference(c1, name="C")
        count(instrumentation, "candidates", len(c2))
        return c1, c2, c

    def run(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        matcher: MLMatcher,
        feature_set: FeatureSet,
        workers: int = 1,
        instrumentation: Instrumentation | None = None,
        store=None,
        provenance: bool = False,
        pool=None,
    ) -> WorkflowResult:
        """Run all stages with a *trained* matcher.

        With a *store*, blocking, feature extraction and prediction are
        each memoized by input fingerprints, so a patched re-run (say,
        added negative rules) reuses every unchanged stage.

        With ``provenance=True``, a
        :class:`~repro.obs.provenance.MatchProvenance` records per-pair
        lineage — emitting blockers, firing positive rule, matcher score
        vs threshold, flipping negative rule — at the cost of one extra
        ``predict_proba`` pass; the match results are unchanged.
        """
        if not matcher.is_fitted:
            raise WorkflowError(
                f"workflow {self.name!r} needs a trained matcher; "
                f"{matcher.name!r} is unfitted"
            )
        collector = None
        if provenance:
            from ..obs.provenance import MatchProvenance

            collector = MatchProvenance(self.name)
        c1, c2, c = self.build_candidates(
            ltable, rtable, l_key, r_key,
            workers=workers, instrumentation=instrumentation, store=store,
            provenance=collector, pool=pool,
        )
        if len(c):
            matrix = extract_feature_vectors(
                c, feature_set,
                workers=workers, instrumentation=instrumentation, store=store,
                pool=pool,
            )
            with stage(instrumentation, "predict"):
                if store is not None:
                    from ..store.stages import cached_predict

                    predicted = cached_predict(
                        store, matcher, matrix, instrumentation=instrumentation
                    )
                else:
                    predicted = matcher.predict_matches(matrix)
            if collector is not None:
                collector.record_scores(matcher.predict_proba(matrix))
        else:
            predicted = []
        if self.negative_rules:
            kept, flipped = apply_negative_rules(predicted, c, self.negative_rules)
        else:
            kept, flipped = list(predicted), []
        final = list(c1.pairs) + [p for p in kept if p not in c1]
        if collector is not None:
            collector.record_outcome(predicted, flipped, final)
        return WorkflowResult(
            sure_matches=c1,
            blocked=c2,
            to_predict=c,
            predicted_matches=tuple(predicted),
            flipped=tuple(flipped),
            matches=tuple(final),
            provenance=collector,
        )
