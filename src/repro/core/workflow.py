"""Composable EM workflows (Figures 8-10 of the paper).

A :class:`EMWorkflow` bundles the stages the case study's workflows share:

1. apply positive (sure-match) rules to the input tables -> C1;
2. apply the blockers and union their outputs -> C2;
3. C = C2 - C1 is what a matcher will predict over;
4. apply a trained matcher to C -> R;
5. optionally filter R through negative rules;
6. final matches = C1 ∪ (kept R).

Figure 8 is this workflow with only the M1 rule and no negative rules;
Figure 9 adds the award/project-number rule and a second table slice
(handled by running the same workflow on the extra records — see
:mod:`repro.core.patch`); Figure 10 adds the negative rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..blocking.base import Blocker
from ..blocking.candidate_set import CandidateSet, Pair
from ..blocking.combiner import union_candidates
from ..errors import WorkflowError
from ..features.generate import FeatureSet
from ..features.vectors import extract_feature_vectors
from ..matchers.ml_matcher import MLMatcher
from ..rules.negative import ComparableMismatchRule, apply_negative_rules
from ..rules.positive import ExactNumberRule
from ..runtime.context import EngineSession, resolve_session
from ..runtime.instrument import Instrumentation, count
from ..table import Table


@dataclass(frozen=True)
class WorkflowResult:
    """Everything a workflow run produced, stage by stage.

    ``provenance`` is populated only when the run asked for it
    (``provenance=True``); :meth:`explain_pair` then reports any pair's
    full decision lineage.
    """

    sure_matches: CandidateSet
    blocked: CandidateSet
    to_predict: CandidateSet
    predicted_matches: tuple[Pair, ...]
    flipped: tuple[tuple[Pair, str], ...]
    matches: tuple[Pair, ...]
    provenance: "object | None" = None

    @property
    def num_matches(self) -> int:
        return len(self.matches)

    def explain_pair(self, a, b):
        """Lineage of pair ``(a, b)`` — blockers, rules, score, verdict.

        Requires the workflow to have run with ``provenance=True``."""
        from ..obs.provenance import require_provenance

        return require_provenance(self.provenance).explain_pair(a, b)

    def summary(self) -> str:
        return (
            f"sure={len(self.sure_matches)}, blocked={len(self.blocked)}, "
            f"to_predict={len(self.to_predict)}, "
            f"predicted={len(self.predicted_matches)}, "
            f"flipped={len(self.flipped)}, total_matches={len(self.matches)}"
        )


@dataclass
class EMWorkflow:
    """A rules + blocking + learning (+ negative rules) workflow."""

    name: str
    positive_rules: list[ExactNumberRule] = field(default_factory=list)
    blockers: list[Blocker] = field(default_factory=list)
    negative_rules: list[ComparableMismatchRule] = field(default_factory=list)

    def _resolve_collector(self, provenance, session: EngineSession):
        """Map the run's provenance argument onto a collector (or None).

        ``None`` inherits the session policy; ``False`` is off; ``True``
        builds a fresh per-run collector; anything else is an explicit
        :class:`~repro.obs.provenance.MatchProvenance`-style collector.
        """
        policy = provenance if provenance is not None else session.provenance
        if policy is None or policy is False:
            return None
        if policy is True:
            from ..obs.provenance import MatchProvenance

            return MatchProvenance(self.name)
        return policy

    def build_candidates(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        workers: int | None = None,
        instrumentation: Instrumentation | None = None,
        store=None,
        provenance=None,
        pool=None,
        *,
        session: EngineSession | None = None,
    ) -> tuple[CandidateSet, CandidateSet, CandidateSet]:
        """Stages 1-3: returns (C1 sure matches, C2 blocked, C = C2 - C1).

        The sure-match pairs are force-included in C2 (the case study's
        blocking step 1 exists precisely to keep every M1 pair in the
        candidate set) and then carved out of C for prediction.

        Each stage runs through ``session.run_stage``: with a store on
        the resolved session, the rule pass and every blocker are
        memoized by the content fingerprints of their inputs (operators
        are built here — not via a blocker kwarg — so third-party
        blockers whose signatures predate the store still cache), and
        with a provenance collector (explicit, or carried by the
        session), each positive rule's pair set and each blocker's
        output are recorded so ``explain_pair`` can name the exact
        emitters of any candidate.

        ``workers``/``instrumentation``/``store``/``pool`` are deprecated
        shims over the ambient session (``None`` inherits).
        """
        if not self.blockers and not self.positive_rules:
            raise WorkflowError(f"workflow {self.name!r} has no rules and no blockers")
        from ..store.stages import BlockStage, SureMatchStage

        resolved = resolve_session(
            session,
            workers=workers,
            instrumentation=instrumentation,
            store=store,
            pool=pool,
        )
        collector = self._resolve_collector(provenance, resolved)
        instrumentation = resolved.instrumentation
        c1 = resolved.run_stage(
            SureMatchStage(
                self.positive_rules, ltable, rtable, l_key, r_key,
                name="C1", trace_name="positive_rules",
            ),
            provenance=collector,
        )
        blocked = []
        for blocker in self.blockers:
            result = resolved.run_stage(
                BlockStage(
                    blocker, ltable, rtable, l_key, r_key,
                    trace_name=f"block:{blocker.short_name}",
                ),
                provenance=collector,
            )
            blocked.append(result)
        c2 = union_candidates([c1] + blocked, name="C2") if blocked else c1
        c = c2.difference(c1, name="C")
        count(instrumentation, "candidates", len(c2))
        return c1, c2, c

    def run(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        matcher: MLMatcher,
        feature_set: FeatureSet,
        workers: int | None = None,
        instrumentation: Instrumentation | None = None,
        store=None,
        provenance: "bool | object | None" = None,
        pool=None,
        *,
        session: EngineSession | None = None,
    ) -> WorkflowResult:
        """Run all stages with a *trained* matcher.

        With a store on the resolved session, blocking, feature
        extraction and prediction are each memoized by input
        fingerprints, so a patched re-run (say, added negative rules)
        reuses every unchanged stage.

        *provenance* accepts a
        :class:`~repro.obs.provenance.MatchProvenance` collector (also
        the form a session's ``provenance=`` carries), ``True`` as a shim
        building a fresh per-run collector, ``False`` to force it off, or
        ``None`` to inherit the session policy. A collector records
        per-pair lineage — emitting blockers, firing positive rule,
        matcher score vs threshold, flipping negative rule — at the cost
        of one extra ``predict_proba`` pass; the match results are
        unchanged.
        """
        if not matcher.is_fitted:
            raise WorkflowError(
                f"workflow {self.name!r} needs a trained matcher; "
                f"{matcher.name!r} is unfitted"
            )
        from ..store.stages import PredictStage

        resolved = resolve_session(
            session,
            workers=workers,
            instrumentation=instrumentation,
            store=store,
            pool=pool,
        )
        collector = self._resolve_collector(provenance, resolved)
        c1, c2, c = self.build_candidates(
            ltable, rtable, l_key, r_key,
            provenance=collector if collector is not None else False,
            session=resolved,
        )
        if len(c):
            matrix = extract_feature_vectors(c, feature_set, session=resolved)
            predicted = resolved.run_stage(
                PredictStage(matcher, matrix, trace_name="predict")
            )
            if collector is not None:
                collector.record_scores(matcher.predict_proba(matrix))
        else:
            predicted = []
        if self.negative_rules:
            kept, flipped = apply_negative_rules(predicted, c, self.negative_rules)
        else:
            kept, flipped = list(predicted), []
        final = list(c1.pairs) + [p for p in kept if p not in c1]
        if collector is not None:
            collector.record_outcome(predicted, flipped, final)
        return WorkflowResult(
            sure_matches=c1,
            blocked=c2,
            to_predict=c,
            predicted_matches=tuple(predicted),
            flipped=tuple(flipped),
            matches=tuple(final),
            provenance=collector,
        )
