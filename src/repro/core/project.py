"""EM project orchestration: the zig-zag process log.

The paper stresses that real EM is a *conversation* between the EM team and
the domain experts — stages revisit earlier stages, definitions change,
data arrives late. :class:`EMProject` is the bookkeeping object for that
process: it registers tables and artifacts, records decisions and stage
transitions with their rationale, and renders the chronological history
that Sections 4-12 narrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from ..errors import WorkflowError
from ..table import Table


class Stage(Enum):
    """The how-to-guide stages of the EM process."""

    UNDERSTAND_DATA = "understanding the data"
    MATCH_DEFINITION = "understanding the match definition"
    PREPROCESS = "pre-processing"
    BLOCK = "blocking"
    SAMPLE_AND_LABEL = "sampling and labeling"
    MATCH = "matching"
    ESTIMATE_ACCURACY = "estimating accuracy"
    IMPROVE_WITH_RULES = "improving accuracy with rules"
    PRODUCTION = "production"


@dataclass(frozen=True)
class LogEntry:
    """One step of the project history."""

    sequence: int
    stage: Stage
    actor: str
    note: str


@dataclass
class EMProject:
    """State and history of one EM engagement."""

    name: str
    _tables: dict[str, Table] = field(default_factory=dict)
    _artifacts: dict[str, Any] = field(default_factory=dict)
    _log: list[LogEntry] = field(default_factory=list)
    _stage: Stage = Stage.UNDERSTAND_DATA

    # ------------------------------------------------------------------
    # tables and artifacts
    # ------------------------------------------------------------------
    def register_table(self, table: Table, note: str = "", actor: str = "em-team") -> None:
        """Register a raw or derived table under its name."""
        if not table.name:
            raise WorkflowError("tables must be named before registration")
        self._tables[table.name] = table
        self.record(f"registered table {table.name!r} "
                    f"({table.num_rows} rows x {table.num_cols} cols). {note}".strip(),
                    actor=actor)

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise WorkflowError(f"no table {name!r} registered in project {self.name!r}") from None

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def store(self, key: str, artifact: Any, note: str = "", actor: str = "em-team") -> None:
        """Store any stage output (candidate set, labels, matcher, ...)."""
        self._artifacts[key] = artifact
        self.record(f"stored artifact {key!r}. {note}".strip(), actor=actor)

    def artifact(self, key: str) -> Any:
        try:
            return self._artifacts[key]
        except KeyError:
            raise WorkflowError(f"no artifact {key!r} in project {self.name!r}") from None

    def has_artifact(self, key: str) -> bool:
        return key in self._artifacts

    # ------------------------------------------------------------------
    # stage transitions and history
    # ------------------------------------------------------------------
    @property
    def stage(self) -> Stage:
        return self._stage

    def enter_stage(self, stage: Stage, note: str = "", actor: str = "em-team") -> None:
        """Move to a stage — backwards moves are allowed and *logged as
        such*, because the zig-zag is the point."""
        direction = ""
        stages = list(Stage)
        if stages.index(stage) < stages.index(self._stage):
            direction = " (revisiting an earlier stage)"
        self._stage = stage
        self.record(f"entered stage: {stage.value}{direction}. {note}".strip(), actor=actor)

    def record(self, note: str, actor: str = "em-team") -> None:
        """Append a history entry at the current stage."""
        self._log.append(
            LogEntry(sequence=len(self._log), stage=self._stage, actor=actor, note=note)
        )

    @property
    def history(self) -> list[LogEntry]:
        return list(self._log)

    def zigzag_count(self) -> int:
        """Number of backwards stage transitions (a process-shape metric)."""
        stages = list(Stage)
        count = 0
        previous: Stage | None = None
        for entry in self._log:
            if previous is not None and stages.index(entry.stage) < stages.index(previous):
                count += 1
            previous = entry.stage
        return count

    def render_history(self) -> str:
        """The chronological narrative, one line per entry."""
        lines = [f"EM project {self.name!r} — {len(self._log)} steps"]
        for entry in self._log:
            lines.append(f"  [{entry.sequence:03d}] ({entry.stage.value}) {entry.actor}: {entry.note}")
        return "\n".join(lines)
