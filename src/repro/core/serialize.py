"""Workflow packaging: serialize a trained EM workflow to JSON and back.

Section 12's "next steps": the UMETRICS team wanted the matcher packaged
so it could move into the repository and run over other data slices — and
the paper immediately identifies the challenge: "the EM workflow is rather
complex. It has rules at multiple places and a machine learning-based
matcher. So we need to find out how to represent it effectively."

This module is that representation. A :class:`PackagedWorkflow` bundles

* the positive (sure-match) rules, by name;
* the blocking plan (blocker type + configuration per blocker);
* the generated feature set, by feature *name* (generated features are
  reconstructable from their names — attribute, measure, tokenizer, case
  flag);
* the trained matcher: decision trees / forests serialize their full node
  structure, plus the imputer's column means;
* the negative rules, by name.

Everything round-trips through plain JSON-compatible dicts, so a workflow
developed here can be checked into the production repository and reloaded
without pickling arbitrary code.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from ..blocking.attr_equivalence import AttrEquivalenceBlocker
from ..blocking.lsh import MinHashLSHBlocker, SimHashBlocker
from ..blocking.overlap import OverlapBlocker
from ..blocking.overlap_coefficient import OverlapCoefficientBlocker
from ..blocking.sharded import (
    ShardedOverlapBlocker,
    ShardedOverlapCoefficientBlocker,
)
from ..errors import WorkflowError
from ..features.feature import STRING_MEASURES, TOKEN_MEASURES, numeric_feature, string_feature, token_feature
from ..features.generate import FeatureSet
from ..matchers.ml_matcher import MLMatcher
from ..ml.forest import RandomForestClassifier
from ..ml.impute import MeanImputer
from ..ml.tree import DecisionTreeClassifier, _Node
from ..rules.negative import default_negative_rules
from ..rules.positive import award_project_rule, m1_rule
from ..text.normalize import normalize_title
from ..text.patterns import award_number_suffix
from ..text.tokenizers import TOKENIZERS
from .workflow import EMWorkflow

# ----------------------------------------------------------------------
# registries of named components (rules / preprocessors / normalizers)
# ----------------------------------------------------------------------
_POSITIVE_RULES = {
    "M1": m1_rule,
    "award_number=project_number": award_project_rule,
}

_NEGATIVE_RULE_SETS = {
    "default": default_negative_rules,
}

_PREPROCESSORS = {
    "award_number_suffix": award_number_suffix,
    "normalize_title": normalize_title,
    None: None,
}


# ----------------------------------------------------------------------
# decision trees and forests
# ----------------------------------------------------------------------
def serialize_tree(tree: DecisionTreeClassifier) -> dict[str, Any]:
    """Serialize a fitted tree (hyper-parameters + node structure)."""
    tree._require_fitted()

    def node_to_dict(node: _Node) -> dict[str, Any]:
        out: dict[str, Any] = {
            "n": node.n_samples,
            "p": node.positive_fraction,
        }
        if not node.is_leaf:
            out["f"] = node.feature
            out["t"] = node.threshold
            out["l"] = node_to_dict(node.left)
            out["r"] = node_to_dict(node.right)
        return out

    return {
        "kind": "decision_tree",
        "params": {
            "max_depth": tree.max_depth,
            "min_samples_split": tree.min_samples_split,
            "min_samples_leaf": tree.min_samples_leaf,
            "max_features": tree.max_features,
            "seed": tree.seed,
        },
        "n_features": tree._n_features,
        "importances": list(map(float, tree._importances)),
        "root": node_to_dict(tree._root),
    }


def deserialize_tree(payload: dict[str, Any]) -> DecisionTreeClassifier:
    """Rebuild a fitted tree from :func:`serialize_tree` output."""
    if payload.get("kind") != "decision_tree":
        raise WorkflowError(f"expected a decision_tree payload, got {payload.get('kind')!r}")

    def dict_to_node(data: dict[str, Any]) -> _Node:
        node = _Node(n_samples=int(data["n"]), positive_fraction=float(data["p"]))
        if "f" in data:
            node.feature = int(data["f"])
            node.threshold = float(data["t"])
            node.left = dict_to_node(data["l"])
            node.right = dict_to_node(data["r"])
        return node

    tree = DecisionTreeClassifier(**payload["params"])
    tree._root = dict_to_node(payload["root"])
    tree._n_features = int(payload["n_features"])
    tree._importances = np.asarray(payload["importances"], dtype=float)
    tree._fitted = True
    return tree


def serialize_forest(forest: RandomForestClassifier) -> dict[str, Any]:
    """Serialize a fitted random forest (all member trees)."""
    forest._require_fitted()
    return {
        "kind": "random_forest",
        "params": {
            "n_trees": forest.n_trees,
            "max_depth": forest.max_depth,
            "min_samples_split": forest.min_samples_split,
            "min_samples_leaf": forest.min_samples_leaf,
            "max_features": forest.max_features,
            "seed": forest.seed,
        },
        "trees": [serialize_tree(t) for t in forest._trees],
    }


def deserialize_forest(payload: dict[str, Any]) -> RandomForestClassifier:
    """Rebuild a fitted forest from :func:`serialize_forest` output."""
    if payload.get("kind") != "random_forest":
        raise WorkflowError(f"expected a random_forest payload, got {payload.get('kind')!r}")
    forest = RandomForestClassifier(**payload["params"])
    forest._trees = [deserialize_tree(t) for t in payload["trees"]]
    forest._fitted = True
    return forest


def serialize_model(model) -> dict[str, Any]:
    """Serialize a supported classifier (tree or forest)."""
    if isinstance(model, DecisionTreeClassifier):
        return serialize_tree(model)
    if isinstance(model, RandomForestClassifier):
        return serialize_forest(model)
    raise WorkflowError(
        f"cannot package a {type(model).__name__}; only tree-based matchers "
        "serialize (retrain with a decision tree or random forest)"
    )


def deserialize_model(payload: dict[str, Any]):
    kind = payload.get("kind")
    if kind == "decision_tree":
        return deserialize_tree(payload)
    if kind == "random_forest":
        return deserialize_forest(payload)
    raise WorkflowError(f"unknown model kind {kind!r}")


# ----------------------------------------------------------------------
# feature sets (by name)
# ----------------------------------------------------------------------
def feature_from_name(name: str) -> Any:
    """Rebuild a generated feature from its canonical name.

    Names follow ``{l_attr}_{r_attr}_{measure}[_{tokenizer}][_ci]`` where
    l_attr == r_attr for generated features. Custom features cannot be
    rebuilt this way and are rejected.
    """
    casefold = name.endswith("_ci")
    stem = name[: -len("_ci")] if casefold else name
    # try token measures (with tokenizer suffix) first, then string, then numeric
    for measure in TOKEN_MEASURES:
        for tok_name in TOKENIZERS:
            suffix = f"_{measure}_{tok_name}"
            if stem.endswith(suffix):
                attrs = stem[: -len(suffix)]
                attr = attrs[: len(attrs) // 2]
                if attrs == f"{attr}_{attr}":
                    return token_feature(
                        attr, attr, measure, TOKENIZERS[tok_name], tok_name,
                        casefold=casefold,
                    )
    for measure in STRING_MEASURES:
        suffix = f"_{measure}"
        if stem.endswith(suffix):
            attrs = stem[: -len(suffix)]
            attr = attrs[: len(attrs) // 2]
            if attrs == f"{attr}_{attr}":
                return string_feature(attr, attr, measure, casefold=casefold)
    for measure in ("exact", "abs_diff", "rel_diff"):
        suffix = f"_{measure}"
        if not casefold and stem.endswith(suffix):
            attrs = stem[: -len(suffix)]
            attr = attrs[: len(attrs) // 2]
            if attrs == f"{attr}_{attr}":
                return numeric_feature(attr, attr, measure)
    raise WorkflowError(f"cannot rebuild feature from name {name!r}")


def feature_set_from_names(names: list[str]) -> FeatureSet:
    """Rebuild a whole generated feature set from its names."""
    feature_set = FeatureSet()
    for name in names:
        feature = feature_from_name(name)
        if feature.name != name:
            raise WorkflowError(
                f"feature name round-trip failed: {name!r} -> {feature.name!r}"
            )
        feature_set.add(feature)
    return feature_set


# ----------------------------------------------------------------------
# blockers
# ----------------------------------------------------------------------
def _preprocessor_name(fn) -> str | None:
    for name, candidate in _PREPROCESSORS.items():
        if candidate is fn:
            return name
    raise WorkflowError(f"cannot package preprocessor {fn!r}; register it first")


def _policy_payload(blocker) -> dict[str, Any]:
    """``{"max_block_size": n}`` when capped, else ``{}``.

    The key is *omitted* (not null) for uncapped blockers so every
    pre-existing payload — and therefore every store fingerprint of an
    uncapped plan — stays byte-identical.
    """
    policy = getattr(blocker, "block_size_policy", None)
    if policy is not None and policy.capped:
        return {"max_block_size": policy.max_block_size}
    return {}


def _policy_arg(payload: dict[str, Any]) -> dict[str, Any]:
    cap = payload.get("max_block_size")
    return {"block_size_policy": cap} if cap is not None else {}


def serialize_blocker(blocker) -> dict[str, Any]:
    # Subclass kinds must be tested before their parents: a sharded
    # blocker is-an overlap blocker, but its payload carries the shard
    # count the parent kind would drop.
    if isinstance(blocker, ShardedOverlapBlocker):
        return {
            "kind": "sharded_overlap",
            "l_attr": blocker.l_attr,
            "r_attr": blocker.r_attr,
            "threshold": blocker.threshold,
            "normalizer": _preprocessor_name(blocker.normalizer),
            "shards": blocker.shards,
            **_policy_payload(blocker),
        }
    if isinstance(blocker, ShardedOverlapCoefficientBlocker):
        return {
            "kind": "sharded_overlap_coefficient",
            "l_attr": blocker.l_attr,
            "r_attr": blocker.r_attr,
            "threshold": blocker.threshold,
            "normalizer": _preprocessor_name(blocker.normalizer),
            "shards": blocker.shards,
            **_policy_payload(blocker),
        }
    if isinstance(blocker, AttrEquivalenceBlocker):
        return {
            "kind": "attr_equivalence",
            "l_attr": blocker.l_attr,
            "r_attr": blocker.r_attr,
            "l_preprocess": _preprocessor_name(blocker.l_preprocess),
            "r_preprocess": _preprocessor_name(blocker.r_preprocess),
            **_policy_payload(blocker),
        }
    if isinstance(blocker, OverlapBlocker):
        return {
            "kind": "overlap",
            "l_attr": blocker.l_attr,
            "r_attr": blocker.r_attr,
            "threshold": blocker.threshold,
            "normalizer": _preprocessor_name(blocker.normalizer),
            **_policy_payload(blocker),
        }
    if isinstance(blocker, OverlapCoefficientBlocker):
        return {
            "kind": "overlap_coefficient",
            "l_attr": blocker.l_attr,
            "r_attr": blocker.r_attr,
            "threshold": blocker.threshold,
            "normalizer": _preprocessor_name(blocker.normalizer),
            **_policy_payload(blocker),
        }
    if isinstance(blocker, MinHashLSHBlocker):
        return {
            "kind": "minhash_lsh",
            "l_attr": blocker.l_attr,
            "r_attr": blocker.r_attr,
            "threshold": blocker.threshold,
            "bands": blocker.bands,
            "rows": blocker.rows,
            "seed": blocker.seed,
            "normalizer": _preprocessor_name(blocker.normalizer),
            **_policy_payload(blocker),
        }
    if isinstance(blocker, SimHashBlocker):
        return {
            "kind": "simhash",
            "l_attr": blocker.l_attr,
            "r_attr": blocker.r_attr,
            "max_hamming": blocker.max_hamming,
            "seed": blocker.seed,
            "normalizer": _preprocessor_name(blocker.normalizer),
            **_policy_payload(blocker),
        }
    raise WorkflowError(f"cannot package blocker {type(blocker).__name__}")


def deserialize_blocker(payload: dict[str, Any]):
    kind = payload.get("kind")
    if kind == "attr_equivalence":
        return AttrEquivalenceBlocker(
            payload["l_attr"], payload["r_attr"],
            l_preprocess=_PREPROCESSORS[payload["l_preprocess"]],
            r_preprocess=_PREPROCESSORS[payload["r_preprocess"]],
            **_policy_arg(payload),
        )
    if kind == "overlap":
        return OverlapBlocker(
            payload["l_attr"], payload["r_attr"], threshold=payload["threshold"],
            normalizer=_PREPROCESSORS[payload["normalizer"]],
            **_policy_arg(payload),
        )
    if kind == "overlap_coefficient":
        return OverlapCoefficientBlocker(
            payload["l_attr"], payload["r_attr"], threshold=payload["threshold"],
            normalizer=_PREPROCESSORS[payload["normalizer"]],
            **_policy_arg(payload),
        )
    if kind == "sharded_overlap":
        return ShardedOverlapBlocker(
            payload["l_attr"], payload["r_attr"], threshold=payload["threshold"],
            normalizer=_PREPROCESSORS[payload["normalizer"]],
            shards=payload["shards"],
            **_policy_arg(payload),
        )
    if kind == "sharded_overlap_coefficient":
        return ShardedOverlapCoefficientBlocker(
            payload["l_attr"], payload["r_attr"], threshold=payload["threshold"],
            normalizer=_PREPROCESSORS[payload["normalizer"]],
            shards=payload["shards"],
            **_policy_arg(payload),
        )
    if kind == "minhash_lsh":
        return MinHashLSHBlocker(
            payload["l_attr"], payload["r_attr"], threshold=payload["threshold"],
            bands=payload["bands"], rows=payload["rows"], seed=payload["seed"],
            normalizer=_PREPROCESSORS[payload["normalizer"]],
            **_policy_arg(payload),
        )
    if kind == "simhash":
        return SimHashBlocker(
            payload["l_attr"], payload["r_attr"],
            max_hamming=payload["max_hamming"], seed=payload["seed"],
            normalizer=_PREPROCESSORS[payload["normalizer"]],
            **_policy_arg(payload),
        )
    raise WorkflowError(f"unknown blocker kind {kind!r}")


# ----------------------------------------------------------------------
# the packaged workflow
# ----------------------------------------------------------------------
@dataclass
class PackagedWorkflow:
    """A deployable EM workflow: rules + blocking + features + matcher."""

    workflow: EMWorkflow
    matcher: MLMatcher
    feature_set: FeatureSet

    def to_dict(self) -> dict[str, Any]:
        if not self.matcher.is_fitted:
            raise WorkflowError("package a matcher only after training it")
        unknown = [
            r.name for r in self.workflow.positive_rules if r.name not in _POSITIVE_RULES
        ]
        if unknown:
            raise WorkflowError(f"cannot package unregistered positive rules {unknown}")
        return {
            "format": "repro-packaged-workflow/1",
            "name": self.workflow.name,
            "positive_rules": [r.name for r in self.workflow.positive_rules],
            "blockers": [serialize_blocker(b) for b in self.workflow.blockers],
            "negative_rules": "default" if self.workflow.negative_rules else None,
            "features": list(self.feature_set.names),
            "matcher_name": self.matcher.name,
            "model": serialize_model(self.matcher.model),
            "imputer_means": list(map(float, self.matcher._imputer._means)),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "PackagedWorkflow":
        if payload.get("format") != "repro-packaged-workflow/1":
            raise WorkflowError(f"unknown package format {payload.get('format')!r}")
        workflow = EMWorkflow(
            name=payload["name"],
            positive_rules=[_POSITIVE_RULES[n]() for n in payload["positive_rules"]],
            blockers=[deserialize_blocker(b) for b in payload["blockers"]],
            negative_rules=(
                _NEGATIVE_RULE_SETS[payload["negative_rules"]]()
                if payload["negative_rules"]
                else []
            ),
        )
        feature_set = feature_set_from_names(payload["features"])
        matcher = MLMatcher(deserialize_model(payload["model"]), payload["matcher_name"])
        imputer = MeanImputer()
        imputer._means = np.asarray(payload["imputer_means"], dtype=float)
        matcher._imputer = imputer
        matcher._feature_names = list(payload["features"])
        return cls(workflow=workflow, matcher=matcher, feature_set=feature_set)

    # -- file I/O --------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict()), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "PackagedWorkflow":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # -- running ----------------------------------------------------------
    def run(self, ltable, rtable, l_key: str, r_key: str):
        """Run the packaged workflow on a fresh data slice."""
        return self.workflow.run(
            ltable, rtable, l_key, r_key, self.matcher, self.feature_set
        )
