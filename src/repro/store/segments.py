"""Delta-aware store layer: blocking memoized per table *segment*.

The whole-table :class:`~repro.store.stages.BlockStage` key is all-or-
nothing: patch one row of a 100k-row left table and the store recomputes
all 100k. This module splits the left table into fixed row-range
segments (:func:`~repro.store.fingerprint.fingerprint_table_segments`)
and memoizes one pair-list artifact per ``(blocker, left segment, right
table)``. A table that changed in k rows re-blocks only the segments
containing them — ~1% changed invalidates ~1% of the artifacts — while
every untouched segment hits, even across *different table objects* that
share row ranges (the original and its patched copy).

Validity rests on the same property the incremental handles rely on
(:attr:`~repro.blocking.base.Blocker.supports_incremental`): the
blocker's emission for a left row must not depend on any *other* left
row. All three case-study blockers qualify — the overlap blockers'
global prefix order ``(doc_freq, token)`` is computed from the *right*
table only, and rank-sorting a segment's tokens equals sorting by that
global key restricted to them — so concatenating per-segment pair lists
in segment order reproduces the full-table run's pairs **bit-identically**
(``tests/test_prop_store.py`` asserts this). Blockers whose output mixes
left rows (e.g. sorted neighborhood) raise a typed error instead of
silently caching wrong slices.

This layer is consumed by the serving path and benchmarks; the batch
workflow keeps the whole-table stage, so existing goldens, ledgers and
manifests are untouched.
"""

from __future__ import annotations

from typing import Any

from ..errors import IncrementalBlockingError
from ..runtime.context import EngineSession, StageOperator, resolve_session
from ..table import Table
from .codecs import PAIR_LIST
from .fingerprint import (
    SEGMENT_ROWS,
    fingerprint_blocker,
    fingerprint_table,
    fingerprint_table_segments,
    fingerprint_value,
    segment_bounds,
)


class SegmentBlockStage(StageOperator):
    """One blocker application over a single left-table segment.

    Cached as a plain pair list (:data:`~repro.store.codecs.PAIR_LIST`):
    the artifact must be reusable from a *different* table object whose
    matching segment has the same content, so it cannot embed the live
    candidate-set tables the way :class:`~repro.store.stages.BlockStage`
    artifacts do. The key is content-only — blocker recipe, the
    segment's digest, the right table and the key columns; deliberately
    **not** the segment's position, so a row block that merely moved
    (e.g. rows appended before it) still hits.
    """

    cache_kind = "pairs"
    codec = PAIR_LIST
    trace_name = None

    def __init__(
        self,
        blocker: Any,
        segment: Table,
        segment_digest: str,
        rtable: Table,
        l_key: str,
        r_key: str,
    ) -> None:
        self.blocker = blocker
        self.segment = segment
        self.segment_digest = segment_digest
        self.rtable = rtable
        self.l_key = l_key
        self.r_key = r_key

    def label(self) -> str:
        return f"block_segment:{self.blocker.short_name}:{self.segment_digest[:12]}"

    def fingerprint(self) -> dict[str, str]:
        return {
            "blocker": fingerprint_blocker(self.blocker),
            "lsegment": self.segment_digest,
            "rtable": fingerprint_table(self.rtable),
            "keys": fingerprint_value((self.l_key, self.r_key)),
        }

    def compute(self, session: EngineSession) -> list:
        result = self.blocker._compute_blocking(
            session, self.segment, self.rtable, self.l_key, self.r_key, ""
        )
        return list(result.pairs)


def segmented_block(
    blocker: Any,
    ltable: Table,
    rtable: Table,
    l_key: str,
    r_key: str,
    *,
    name: str = "",
    rows_per_segment: int = SEGMENT_ROWS,
    session: EngineSession | None = None,
) -> "Any":
    """Block ``(ltable, rtable)`` segment-by-segment through the store.

    Returns the same :class:`~repro.blocking.candidate_set.CandidateSet`
    (same pairs, same order) as ``blocker.block_tables(ltable, rtable)``,
    but memoized per left segment: re-running after a k-row patch misses
    only the changed segments. Without a store on the session this is
    just a segmented recompute.
    """
    from ..blocking.candidate_set import CandidateSet

    if not getattr(blocker, "supports_incremental", False):
        raise IncrementalBlockingError(
            f"{type(blocker).__name__} cannot be segment-cached: its emission "
            "may mix left rows, so per-segment artifacts would be wrong; run "
            "block_tables() for a whole-table artifact instead"
        )
    resolved = resolve_session(session)
    digests = fingerprint_table_segments(ltable, rows_per_segment)
    bounds = segment_bounds(len(ltable), rows_per_segment)
    pairs: list = []
    for (start, stop), digest in zip(bounds, digests):
        segment = ltable.take(range(start, stop))
        pairs.extend(
            resolved.run_stage(
                SegmentBlockStage(blocker, segment, digest, rtable, l_key, r_key)
            )
        )
    return CandidateSet(
        ltable, rtable, l_key, r_key, pairs, name=name or blocker.short_name
    )
