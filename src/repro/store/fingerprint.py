"""Stable content fingerprints for pipeline inputs.

A fingerprint is a SHA-256 digest over a *canonical* byte encoding of a
value — type-tagged and length-prefixed, so ``1``, ``1.0``, ``"1"`` and
``[1]`` can never collide, dict key order never matters, and the digest of
a given Table / blocker config / feature set is identical across processes
and sessions. These digests are the cache keys of the
:class:`~repro.store.store.ArtifactStore`: a stage is reusable exactly
when every input fingerprint (plus the code-version salt) is unchanged.

Configured components fingerprint through their *recipes*, not their
Python objects: blockers via :func:`repro.core.serialize.serialize_blocker`
(plus the tokenizer registry, which the packaging format does not need but
a cache key does), feature sets via their
:attr:`~repro.features.feature.Feature.spec` tuples, matchers via
:func:`repro.core.serialize.serialize_model`. Anything that cannot be
reduced to plain data — a custom feature function, an unregistered
normalizer — raises :class:`~repro.errors.UncacheableError`, and callers
fall back to computing the stage (never to guessing a key).
"""

from __future__ import annotations

import hashlib
import weakref
from typing import Any, Iterable, Sequence

import numpy as np

from ..errors import UncacheableError, WorkflowError
from ..table import Table

#: Salt mixed into every store key. Bump when a pipeline stage changes
#: behaviour without changing its config schema, so stale artifacts from
#: older code can never be served as current results.
#: /2: interned-id kernels under blocking/extraction (outputs unchanged by
#: construction, but the hot-path implementations were rebuilt wholesale).
#: /3: batch-columnar scoring — blocker verification and token-feature
#: columns route through chunk-level kernels over TokenColumn buffers
#: (outputs bit-identical again, implementations rebuilt again).
#: /4: segment fingerprints — the delta-aware store layer keys blocking
#: artifacts by table *segments* (see :func:`fingerprint_table_segments`
#: and :func:`repro.store.segments.segmented_block`), so whole-table and
#: segment-level artifacts must never share a key space with /3 entries.
CODE_SALT = "repro-store/4"


# ----------------------------------------------------------------------
# canonical byte encoding
# ----------------------------------------------------------------------
def _walk(obj: Any, out: list[bytes]) -> None:
    if obj is None:
        out.append(b"N;")
    elif obj is True or obj is False:  # before int: bool subclasses int
        out.append(b"B1;" if obj else b"B0;")
    elif isinstance(obj, (int, np.integer)):
        out.append(b"I%d;" % int(obj))
    elif isinstance(obj, (float, np.floating)):
        # repr is the shortest exact round-trip form; nan/inf included
        out.append(b"F" + repr(float(obj)).encode("ascii") + b";")
    elif isinstance(obj, str):
        data = obj.encode("utf-8")
        out.append(b"S%d:" % len(data))
        out.append(data)
    elif isinstance(obj, bytes):
        out.append(b"X%d:" % len(obj))
        out.append(obj)
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        header = f"A{arr.dtype.str}{arr.shape}:".encode("ascii")
        out.append(header)
        out.append(arr.tobytes())
    elif isinstance(obj, (list, tuple)):
        out.append(b"L%d[" % len(obj))
        for item in obj:
            _walk(item, out)
        out.append(b"]")
    elif isinstance(obj, dict):
        out.append(b"D%d{" % len(obj))
        for key in sorted(obj, key=lambda k: canonical_bytes(k)):
            _walk(key, out)
            _walk(obj[key], out)
        out.append(b"}")
    elif isinstance(obj, (set, frozenset)):
        out.append(b"Z%d{" % len(obj))
        for item in sorted(obj, key=canonical_bytes):
            _walk(item, out)
        out.append(b"}")
    else:
        raise UncacheableError(
            f"cannot fingerprint a {type(obj).__name__} value: {obj!r}"
        )


def canonical_bytes(obj: Any) -> bytes:
    """The canonical (type-tagged, order-independent) encoding of *obj*."""
    out: list[bytes] = []
    _walk(obj, out)
    return b"".join(out)


def fingerprint_value(obj: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of *obj*."""
    return hashlib.sha256(canonical_bytes(obj)).hexdigest()


# ----------------------------------------------------------------------
# tables (memoized — fingerprinting a full table walks every cell)
# ----------------------------------------------------------------------
_TABLE_MEMO: "weakref.WeakKeyDictionary[Table, str]" = weakref.WeakKeyDictionary()


def fingerprint_table(table: Table) -> str:
    """Content fingerprint of a table: column names, order and every cell.

    The table *name* is deliberately excluded — the store is
    content-addressed, and renaming a table must not invalidate artifacts.
    The digest is memoized per table object under the same immutability
    idiom the :class:`~repro.runtime.cache.TokenCache` documents (mutating
    methods return new tables); a table whose cell lists are edited in
    place behind the memo must go through a fresh object.
    """
    cached = _TABLE_MEMO.get(table)
    if cached is None:
        payload = {
            "columns": table.columns,
            "cells": [table[c] for c in table.columns],
        }
        cached = fingerprint_value(payload)
        _TABLE_MEMO[table] = cached
    return cached


#: Default rows per fingerprint segment. Small enough that a patch of a
#: few rows invalidates a sliver of a case-study-sized table, large
#: enough that the per-segment store overhead (one artifact + one digest
#: each) stays negligible.
SEGMENT_ROWS = 256

_SEGMENT_MEMO: "weakref.WeakKeyDictionary[Table, dict[int, tuple[str, ...]]]" = (
    weakref.WeakKeyDictionary()
)


def segment_bounds(n_rows: int, rows_per_segment: int = SEGMENT_ROWS) -> list[tuple[int, int]]:
    """Half-open ``(start, stop)`` row ranges of each fingerprint segment."""
    if rows_per_segment < 1:
        raise UncacheableError(
            f"rows_per_segment must be >= 1, got {rows_per_segment}"
        )
    return [
        (start, min(start + rows_per_segment, n_rows))
        for start in range(0, n_rows, rows_per_segment)
    ]


def fingerprint_table_segments(
    table: Table, rows_per_segment: int = SEGMENT_ROWS
) -> tuple[str, ...]:
    """Per-segment content fingerprints of a table (row-range slices).

    Each digest covers the column names plus the cells of one
    ``rows_per_segment``-row slice, and nothing else — no segment index,
    no table name, no neighbouring rows — so an edit to k rows changes
    exactly the digests of the segments containing them, and two tables
    sharing a row range (e.g. the original and a patched copy) share
    those segments' digests. This is what lets the segmented store layer
    (:func:`repro.store.segments.segmented_block`) reuse ~99% of blocking
    artifacts when ~1% of a table changed, where the whole-table
    :func:`fingerprint_table` key would invalidate 100%.

    Memoized per ``(table object, rows_per_segment)`` under the same
    immutability idiom as :func:`fingerprint_table`.
    """
    per_table = _SEGMENT_MEMO.get(table)
    if per_table is None:
        per_table = _SEGMENT_MEMO[table] = {}
    cached = per_table.get(rows_per_segment)
    if cached is None:
        columns = table.columns
        cells = [table[c] for c in columns]
        digests = []
        for start, stop in segment_bounds(len(table), rows_per_segment):
            payload = {
                "columns": columns,
                "cells": [col[start:stop] for col in cells],
            }
            digests.append(fingerprint_value(payload))
        cached = per_table[rows_per_segment] = tuple(digests)
    return cached


# ----------------------------------------------------------------------
# callables go through registries — identity of code, not of objects
# ----------------------------------------------------------------------
def _tokenizer_name(fn: Any) -> str:
    from ..text.tokenizers import TOKENIZERS

    for name, candidate in TOKENIZERS.items():
        if candidate is fn:
            return name
    raise UncacheableError(f"tokenizer {fn!r} is not in the TOKENIZERS registry")


def _extractor_name(fn: Any) -> str:
    from ..rules.positive import _identity
    from ..text.patterns import award_number_suffix

    registry = {_identity: "identity", award_number_suffix: "award_number_suffix"}
    try:
        return registry[fn]
    except (KeyError, TypeError):
        raise UncacheableError(
            f"rule extractor {fn!r} is not a registered extractor"
        ) from None


# ----------------------------------------------------------------------
# pipeline components
# ----------------------------------------------------------------------
def fingerprint_blocker(blocker: Any) -> str:
    """Fingerprint a blocker's full configuration.

    Reuses the :mod:`repro.core.serialize` packaging recipe, extended with
    the tokenizer's registry name (two overlap blockers differing only in
    tokenizer must not share a cache key, even though the packaging format
    pins the default tokenizer and does not record it).
    """
    from ..core.serialize import serialize_blocker

    try:
        config = serialize_blocker(blocker)
    except WorkflowError as exc:
        raise UncacheableError(str(exc)) from exc
    tokenizer = getattr(blocker, "tokenizer", None)
    if tokenizer is not None:
        config["tokenizer"] = _tokenizer_name(tokenizer)
    return fingerprint_value(config)


def fingerprint_positive_rules(rules: Iterable[Any]) -> str:
    """Fingerprint a list of :class:`~repro.rules.positive.ExactNumberRule`."""
    specs = []
    for rule in rules:
        specs.append(
            {
                "name": rule.name,
                "l_attr": rule.l_attr,
                "r_attr": rule.r_attr,
                "l_extract": _extractor_name(rule.l_extract),
                "r_extract": _extractor_name(rule.r_extract),
            }
        )
    return fingerprint_value(specs)


def fingerprint_feature_set(feature_set: Iterable[Any]) -> str:
    """Fingerprint a feature set via the structured spec recipes."""
    specs = []
    for feature in feature_set:
        if feature.spec is None:
            raise UncacheableError(
                f"feature {feature.name!r} wraps a custom function (no spec recipe)"
            )
        specs.append([feature.name, list(feature.spec)])
    return fingerprint_value(specs)


def fingerprint_pairs(pairs: Sequence[Any]) -> str:
    """Fingerprint an ordered list of (left-id, right-id) pairs."""
    return fingerprint_value([list(p) for p in pairs])


def fingerprint_labels(labels: Any) -> str:
    """Fingerprint a :class:`~repro.labeling.labels.LabeledPairs` store."""
    return fingerprint_value(
        [[list(pair), label.value] for pair, label in labels.items()]
    )


def fingerprint_matcher(matcher: Any) -> str:
    """Fingerprint a *fitted* ML matcher (model structure + imputer means)."""
    from ..core.serialize import serialize_model

    if not matcher.is_fitted:
        raise UncacheableError(
            f"matcher {matcher.name!r} is unfitted; only trained matchers fingerprint"
        )
    try:
        model = serialize_model(matcher.model)
    except WorkflowError as exc:
        raise UncacheableError(str(exc)) from exc
    return fingerprint_value(
        {
            "name": matcher.name,
            "model": model,
            "imputer_means": [float(v) for v in matcher._imputer._means],
            "features": list(matcher._feature_names or []),
        }
    )


def fingerprint_matrix(matrix: Any) -> str:
    """Fingerprint a :class:`~repro.features.vectors.FeatureMatrix` by content."""
    return fingerprint_value(
        {
            "pairs": [list(p) for p in matrix.pairs],
            "features": list(matrix.feature_names),
            "values": matrix.values,
        }
    )
