"""Stage operators for the cacheable pipeline stages.

Each operator class describes one expensive stage — blocking, sure
matches, feature extraction, matcher prediction — in the vocabulary of
the stage-operator protocol
(:class:`~repro.runtime.context.StageOperator`): an artifact kind and
codec, content fingerprints over the stage's inputs, the compute
callback, and optional counter/provenance hooks.
:meth:`EngineSession.run_stage <repro.runtime.context.EngineSession.run_stage>`
is the **single** implementation of the store-lookup / tracing /
provenance glue those stages previously each re-implemented; everything
here is declarative.

The pipeline modules import this module lazily inside their functions:
``core.serialize`` imports the blockers and workflow at module level, so
the store package may depend on them but not the other way around.

``workers`` and the shared pool are deliberately **excluded** from every
cache key: the chunked executor guarantees parallel results are
bit-identical to serial ones, so a stage computed with 8 workers is the
same artifact as one computed with 1.

The ``cached_*`` functions survive as deprecated shims for callers that
predate sessions; each builds the matching operator and runs it through
:func:`~repro.runtime.context.resolve_session`.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..runtime.context import StageOperator, resolve_session
from ..runtime.instrument import Instrumentation
from .codecs import CANDIDATES, FEATURE_MATRIX, PAIR_LIST
from .fingerprint import (
    fingerprint_blocker,
    fingerprint_feature_set,
    fingerprint_matcher,
    fingerprint_matrix,
    fingerprint_pairs,
    fingerprint_positive_rules,
    fingerprint_table,
    fingerprint_value,
)


def _table_label(table: Any, fallback: str) -> str:
    return getattr(table, "name", "") or fallback


class BlockStage(StageOperator):
    """One blocker application over a table pair."""

    cache_kind = "candidates"
    codec = CANDIDATES

    def __init__(
        self,
        blocker: Any,
        ltable: Any,
        rtable: Any,
        l_key: str,
        r_key: str,
        *,
        name: str = "",
        trace_name: str | None = None,
    ) -> None:
        self.blocker = blocker
        self.ltable = ltable
        self.rtable = rtable
        self.l_key = l_key
        self.r_key = r_key
        self.name = name
        self.trace_name = trace_name

    def label(self) -> str:
        return (
            f"block:{self.blocker.short_name}:"
            f"{_table_label(self.ltable, 'ltable')}|"
            f"{_table_label(self.rtable, 'rtable')}"
        )

    def fingerprint(self) -> dict[str, str]:
        return {
            "blocker": fingerprint_blocker(self.blocker),
            "ltable": fingerprint_table(self.ltable),
            "rtable": fingerprint_table(self.rtable),
            "keys": fingerprint_value((self.l_key, self.r_key)),
        }

    def store_context(self) -> dict[str, Any]:
        return {"ltable": self.ltable, "rtable": self.rtable, "name": self.name}

    def compute(self, session) -> Any:
        from ..blocking.base import Blocker

        blocker = self.blocker
        if (
            type(blocker)._compute_blocking is Blocker._compute_blocking
            and type(blocker).block_tables is not Blocker.block_tables
        ):
            # Third-party blocker predating the session protocol: its own
            # ``block_tables`` override *is* the compute. Call it with the
            # legacy kwargs (no store — memoization already happened here).
            return blocker.block_tables(
                self.ltable, self.rtable, self.l_key, self.r_key, self.name,
                workers=session.workers,
                instrumentation=session.instrumentation,
                pool=session.worker_pool,
            )
        return blocker._compute_blocking(
            session, self.ltable, self.rtable, self.l_key, self.r_key, self.name
        )

    def record(self, provenance, result) -> None:
        provenance.record_blocker(self.blocker.short_name, result.pairs)


class SureMatchStage(StageOperator):
    """The positive-rule (sure-match) pass of a workflow."""

    cache_kind = "candidates"
    codec = CANDIDATES
    trace_name = None

    def __init__(
        self,
        rules: Sequence[Any],
        ltable: Any,
        rtable: Any,
        l_key: str,
        r_key: str,
        *,
        name: str = "sure_matches",
        trace_name: str | None = None,
    ) -> None:
        self.rules = list(rules)
        self.ltable = ltable
        self.rtable = rtable
        self.l_key = l_key
        self.r_key = r_key
        self.name = name
        self.trace_name = trace_name
        if not self.rules:
            # An empty rule list is a constant empty candidate set — not
            # worth a store entry (and the pre-session code never made one).
            self.cache_kind = None

    def label(self) -> str:
        return (
            f"sure_matches:{_table_label(self.ltable, 'ltable')}|"
            f"{_table_label(self.rtable, 'rtable')}"
        )

    def fingerprint(self) -> dict[str, str]:
        return {
            "rules": fingerprint_positive_rules(self.rules),
            "ltable": fingerprint_table(self.ltable),
            "rtable": fingerprint_table(self.rtable),
            "keys": fingerprint_value((self.l_key, self.r_key)),
        }

    def store_context(self) -> dict[str, Any]:
        return {"ltable": self.ltable, "rtable": self.rtable, "name": self.name}

    def compute(self, session) -> Any:
        from ..blocking.candidate_set import CandidateSet
        from ..rules.positive import sure_matches

        if not self.rules:
            return CandidateSet(
                self.ltable, self.rtable, self.l_key, self.r_key, name=self.name
            )
        return sure_matches(
            self.rules, self.ltable, self.rtable, self.l_key, self.r_key,
            name=self.name,
        )

    def counters(self, result) -> dict[str, float]:
        return {"sure_pairs": len(result)}

    def record(self, provenance, result) -> None:
        for rule in self.rules:
            provenance.record_rule(
                rule.name,
                rule.pairs(self.ltable, self.rtable, self.l_key, self.r_key).pairs,
            )


class ExtractStage(StageOperator):
    """Feature-vector extraction over (a subset of) a candidate set.

    No ``trace_name``: the extraction body opens its own
    ``extract_features`` stage, exactly where the pre-session code did —
    inside the compute, so a store hit adds no stage node.
    """

    cache_kind = "feature_matrix"
    codec = FEATURE_MATRIX

    def __init__(
        self,
        candidates: Any,
        feature_set: Any,
        *,
        pairs: Sequence[Any] | None = None,
    ) -> None:
        self.candidates = candidates
        self.feature_set = feature_set
        self.pairs = pairs

    def label(self) -> str:
        return f"extract:{self.candidates.name or 'candidates'}"

    def _key_pairs(self) -> list[tuple]:
        if self.pairs is None:
            return list(self.candidates.pairs)
        return [tuple(p) for p in self.pairs]

    def fingerprint(self) -> dict[str, str]:
        return {
            "ltable": fingerprint_table(self.candidates.ltable),
            "rtable": fingerprint_table(self.candidates.rtable),
            "keys": fingerprint_value(
                (self.candidates.l_key, self.candidates.r_key)
            ),
            "pairs": fingerprint_pairs(self._key_pairs()),
            "features": fingerprint_feature_set(self.feature_set),
        }

    def compute(self, session) -> Any:
        from ..features.vectors import _extract_impl

        return _extract_impl(
            self.candidates, self.feature_set, self.pairs, session
        )


class PredictStage(StageOperator):
    """One ``matcher.predict_matches`` pass over a feature matrix."""

    cache_kind = "pairs"
    codec = PAIR_LIST

    def __init__(
        self, matcher: Any, matrix: Any, *, trace_name: str | None = None,
        cached: bool = True,
    ) -> None:
        self.matcher = matcher
        self.matrix = matrix
        self.trace_name = trace_name
        if not cached:
            # Section 9's in-loop prediction predates the store and stays
            # uncached so existing store ledgers/baselines are unchanged.
            self.cache_kind = None

    def label(self) -> str:
        return f"predict:{self.matcher.name}"

    def fingerprint(self) -> dict[str, str]:
        return {
            "matrix": fingerprint_matrix(self.matrix),
            "matcher": fingerprint_matcher(self.matcher),
        }

    def compute(self, session) -> list:
        return self.matcher.predict_matches(self.matrix)


# ----------------------------------------------------------------------
# deprecated pre-session shims
# ----------------------------------------------------------------------
def cached_block(
    store: Any,
    blocker: Any,
    ltable: Any,
    rtable: Any,
    l_key: str,
    r_key: str,
    *,
    name: str = "",
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    pool: Any | None = None,
) -> Any:
    """Deprecated: build a session and run a :class:`BlockStage`."""
    session = resolve_session(
        workers=workers, instrumentation=instrumentation, store=store, pool=pool
    )
    return session.run_stage(
        BlockStage(blocker, ltable, rtable, l_key, r_key, name=name)
    )


def cached_sure_matches(
    store: Any,
    rules: Sequence[Any],
    ltable: Any,
    rtable: Any,
    l_key: str,
    r_key: str,
    *,
    name: str = "sure_matches",
    instrumentation: Instrumentation | None = None,
) -> Any:
    """Deprecated: build a session and run a :class:`SureMatchStage`."""
    session = resolve_session(instrumentation=instrumentation, store=store)
    return session.run_stage(
        SureMatchStage(rules, ltable, rtable, l_key, r_key, name=name)
    )


def cached_extract(
    store: Any,
    candidates: Any,
    feature_set: Any,
    *,
    pairs: Sequence[Any] | None = None,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    pool: Any | None = None,
) -> Any:
    """Deprecated: build a session and run an :class:`ExtractStage`."""
    session = resolve_session(
        workers=workers, instrumentation=instrumentation, store=store, pool=pool
    )
    return session.run_stage(ExtractStage(candidates, feature_set, pairs=pairs))


def cached_predict(
    store: Any,
    matcher: Any,
    matrix: Any,
    *,
    instrumentation: Instrumentation | None = None,
) -> list:
    """Deprecated: build a session and run a :class:`PredictStage`."""
    session = resolve_session(instrumentation=instrumentation, store=store)
    return session.run_stage(PredictStage(matcher, matrix))
