"""Store-backed wrappers for the cacheable pipeline stages.

Each ``cached_*`` function mirrors one expensive stage — blocking, sure
matches, feature extraction, prediction — and is what the pipeline calls
when a :class:`~repro.store.store.ArtifactStore` is supplied. The wrapper
fingerprints the stage's inputs, asks the store to memoize, and falls back
to plain computation (recorded as a *bypass*, never an error) whenever an
input has no stable fingerprint.

The pipeline modules import this module lazily inside their functions:
``core.serialize`` imports the blockers and workflow at module level, so
the store package may depend on them but not the other way around.

``workers`` and ``pool`` are deliberately **excluded** from every cache
key: the chunked executor guarantees parallel results are bit-identical
to serial ones, so a stage computed with 8 workers (or through a shared
worker pool) is the same artifact as one computed with 1.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import UncacheableError
from ..features.vectors import extract_feature_vectors
from ..rules.positive import sure_matches
from ..runtime.instrument import Instrumentation
from .codecs import CANDIDATES, FEATURE_MATRIX, PAIR_LIST
from .fingerprint import (
    fingerprint_blocker,
    fingerprint_feature_set,
    fingerprint_matcher,
    fingerprint_matrix,
    fingerprint_pairs,
    fingerprint_positive_rules,
    fingerprint_table,
    fingerprint_value,
)
from .store import ArtifactStore


def _table_label(table: Any, fallback: str) -> str:
    return getattr(table, "name", "") or fallback


def cached_block(
    store: ArtifactStore,
    blocker: Any,
    ltable: Any,
    rtable: Any,
    l_key: str,
    r_key: str,
    *,
    name: str = "",
    workers: int = 1,
    instrumentation: Instrumentation | None = None,
    pool: Any | None = None,
) -> Any:
    """Run (or reuse) ``blocker.block_tables`` through the store."""
    label = (
        f"block:{blocker.short_name}:"
        f"{_table_label(ltable, 'ltable')}|{_table_label(rtable, 'rtable')}"
    )
    try:
        parts = {
            "blocker": fingerprint_blocker(blocker),
            "ltable": fingerprint_table(ltable),
            "rtable": fingerprint_table(rtable),
            "keys": fingerprint_value((l_key, r_key)),
        }
    except UncacheableError as exc:
        store.bypass(label, str(exc), instrumentation)
        return blocker.block_tables(
            ltable,
            rtable,
            l_key,
            r_key,
            name=name,
            workers=workers,
            instrumentation=instrumentation,
            pool=pool,
        )
    return store.memoize(
        "candidates",
        label,
        parts,
        lambda: blocker.block_tables(
            ltable,
            rtable,
            l_key,
            r_key,
            name=name,
            workers=workers,
            instrumentation=instrumentation,
            pool=pool,
        ),
        CANDIDATES,
        instrumentation=instrumentation,
        context={"ltable": ltable, "rtable": rtable, "name": name},
    )


def cached_sure_matches(
    store: ArtifactStore,
    rules: Sequence[Any],
    ltable: Any,
    rtable: Any,
    l_key: str,
    r_key: str,
    *,
    name: str = "sure_matches",
    instrumentation: Instrumentation | None = None,
) -> Any:
    """Run (or reuse) the positive-rule pass through the store."""
    label = (
        f"sure_matches:{_table_label(ltable, 'ltable')}|"
        f"{_table_label(rtable, 'rtable')}"
    )
    try:
        parts = {
            "rules": fingerprint_positive_rules(rules),
            "ltable": fingerprint_table(ltable),
            "rtable": fingerprint_table(rtable),
            "keys": fingerprint_value((l_key, r_key)),
        }
    except UncacheableError as exc:
        store.bypass(label, str(exc), instrumentation)
        return sure_matches(rules, ltable, rtable, l_key, r_key, name=name)
    return store.memoize(
        "candidates",
        label,
        parts,
        lambda: sure_matches(rules, ltable, rtable, l_key, r_key, name=name),
        CANDIDATES,
        instrumentation=instrumentation,
        context={"ltable": ltable, "rtable": rtable, "name": name},
    )


def cached_extract(
    store: ArtifactStore,
    candidates: Any,
    feature_set: Any,
    *,
    pairs: Sequence[Any] | None = None,
    workers: int = 1,
    instrumentation: Instrumentation | None = None,
    pool: Any | None = None,
) -> Any:
    """Run (or reuse) feature-vector extraction through the store."""
    label = f"extract:{candidates.name or 'candidates'}"
    key_pairs = list(candidates.pairs) if pairs is None else [tuple(p) for p in pairs]
    try:
        parts = {
            "ltable": fingerprint_table(candidates.ltable),
            "rtable": fingerprint_table(candidates.rtable),
            "keys": fingerprint_value((candidates.l_key, candidates.r_key)),
            "pairs": fingerprint_pairs(key_pairs),
            "features": fingerprint_feature_set(feature_set),
        }
    except UncacheableError as exc:
        store.bypass(label, str(exc), instrumentation)
        return extract_feature_vectors(
            candidates,
            feature_set,
            pairs=pairs,
            workers=workers,
            instrumentation=instrumentation,
            pool=pool,
        )
    return store.memoize(
        "feature_matrix",
        label,
        parts,
        lambda: extract_feature_vectors(
            candidates,
            feature_set,
            pairs=pairs,
            workers=workers,
            instrumentation=instrumentation,
            pool=pool,
        ),
        FEATURE_MATRIX,
        instrumentation=instrumentation,
    )


def cached_predict(
    store: ArtifactStore,
    matcher: Any,
    matrix: Any,
    *,
    instrumentation: Instrumentation | None = None,
) -> list:
    """Run (or reuse) ``matcher.predict_matches`` through the store."""
    label = f"predict:{matcher.name}"
    try:
        parts = {
            "matrix": fingerprint_matrix(matrix),
            "matcher": fingerprint_matcher(matcher),
        }
    except UncacheableError as exc:
        store.bypass(label, str(exc), instrumentation)
        return matcher.predict_matches(matrix)
    return store.memoize(
        "pairs",
        label,
        parts,
        lambda: matcher.predict_matches(matrix),
        PAIR_LIST,
        instrumentation=instrumentation,
    )
