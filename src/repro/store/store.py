"""The content-addressed on-disk artifact store.

An :class:`ArtifactStore` maps a *key* — the fingerprints of every input
of a pipeline stage, plus the code-version salt — to a stored artifact
(JSON payload + optional CSV sidecar, see :mod:`repro.store.codecs`).
:meth:`ArtifactStore.memoize` is the one entry point the pipeline glue
uses: look the key up, decode on hit, compute-and-store on miss, and
account for every decision so :meth:`ArtifactStore.explain` can answer
"what was reused, what was recomputed, and why".

The "why" comes from a per-stage *manifest*: the store remembers, for each
stage label, the input fingerprints of its previous execution; a miss is
then explained by exactly which inputs changed (a Section-10 patch replay
shows ``predict`` missing because ``matcher`` changed while every blocking
and extraction stage hits). Labels repeat deterministically across runs
(the pipeline's call order is fixed), so each call site compares against
its own previous incarnation via an occurrence counter.

Layout under ``root/``::

    objects/<kind>/<digest>.json   # payload
    objects/<kind>/<digest>.csv    # optional sidecar (feature matrices)
    manifest.json                  # stage label -> last {digest, parts}
    index.json                     # LRU bookkeeping for eviction

Stores are optional everywhere: every ``store=`` parameter in the toolkit
defaults to ``None``, and a storeless run is bit-identical to the
pre-store behaviour.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from ..errors import StoreError
from ..runtime.instrument import Instrumentation, count
from .codecs import ArtifactCodec
from .fingerprint import CODE_SALT, fingerprint_value

_SAFE_KIND = set("abcdefghijklmnopqrstuvwxyz0123456789_")


def _short(digest: str | None) -> str:
    return (digest or "?")[:10]


@dataclass(frozen=True)
class StoreEvent:
    """One memoize/bypass decision, in call order."""

    label: str
    kind: str
    digest: str
    status: str  # "hit" | "miss" | "bypass"
    reason: str


@dataclass(frozen=True)
class StoreStats:
    """Hit/miss/bypass/eviction accounting of one store session."""

    hits: int
    misses: int
    bypasses: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses + self.bypasses

    def __str__(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses / "
            f"{self.bypasses} bypasses / {self.evictions} evictions"
        )


@dataclass
class _Index:
    """LRU state persisted as ``index.json``."""

    seq: int = 0
    entries: dict[str, int] = field(default_factory=dict)


class ArtifactStore:
    """A content-addressed store for pipeline artifacts.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created if absent).
    max_entries:
        Optional artifact-count cap; exceeding it evicts the least
        recently used artifacts. ``None`` (default) never evicts.
    salt:
        Extra user salt mixed into every key (to segregate experiments
        sharing one root directory).
    """

    def __init__(
        self,
        root: str | Path,
        max_entries: int | None = None,
        salt: str = "",
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise StoreError(f"max_entries must be >= 1, got {max_entries}")
        self.root = Path(root)
        (self.root / "objects").mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.salt = salt
        self.hits = 0
        self.misses = 0
        self.bypasses = 0
        self.evictions = 0
        self.events: list[StoreEvent] = []
        self._manifest: dict[str, dict[str, Any]] = self._load_json(
            self.root / "manifest.json", {}
        )
        raw = self._load_json(self.root / "index.json", {"seq": 0, "entries": {}})
        self._index = _Index(seq=int(raw["seq"]), entries=dict(raw["entries"]))
        self._label_calls: dict[str, int] = {}

    # ------------------------------------------------------------------
    # persistence helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _load_json(path: Path, default: Any) -> Any:
        if not path.exists():
            return default
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(f"corrupt store file {path}: {exc}") from exc

    def _save_state(self) -> None:
        (self.root / "manifest.json").write_text(
            json.dumps(self._manifest, sort_keys=True), encoding="utf-8"
        )
        (self.root / "index.json").write_text(
            json.dumps({"seq": self._index.seq, "entries": self._index.entries}),
            encoding="utf-8",
        )

    def _paths(self, kind: str, digest: str) -> tuple[Path, Path]:
        if not kind or not set(kind) <= _SAFE_KIND:
            raise StoreError(f"invalid artifact kind {kind!r}")
        base = self.root / "objects" / kind
        return base / f"{digest}.json", base / f"{digest}.csv"

    # ------------------------------------------------------------------
    # keys
    # ------------------------------------------------------------------
    def digest(self, parts: Mapping[str, str]) -> str:
        """The store key for named input fingerprints (salted)."""
        return fingerprint_value(
            {"code": CODE_SALT, "salt": self.salt, "parts": dict(parts)}
        )

    def _sequenced(self, label: str) -> str:
        """Disambiguate repeated stage labels by call order within a session."""
        n = self._label_calls.get(label, 0)
        self._label_calls[label] = n + 1
        return label if n == 0 else f"{label}#{n + 1}"

    # ------------------------------------------------------------------
    # the memoization entry point
    # ------------------------------------------------------------------
    def memoize(
        self,
        kind: str,
        label: str,
        parts: Mapping[str, str],
        compute: Callable[[], Any],
        codec: ArtifactCodec,
        *,
        instrumentation: Instrumentation | None = None,
        context: Mapping[str, Any] | None = None,
    ) -> Any:
        """Return the artifact for *parts*, computing and storing on miss.

        *label* names the stage for the explain report ("block:overlap:...");
        *parts* maps input names to fingerprints; *context* is forwarded to
        ``codec.decode`` (live tables a payload cannot embed).
        """
        label = self._sequenced(label)
        digest = self.digest(parts)
        json_path, csv_path = self._paths(kind, digest)
        if json_path.exists():
            payload = self._load_json(json_path, None)
            sidecar = (
                csv_path.read_text(encoding="utf-8") if csv_path.exists() else None
            )
            obj = codec.decode(payload, sidecar, **dict(context or {}))
            self.hits += 1
            count(instrumentation, "store_hits")
            self._record(label, kind, digest, "hit", "reused (all inputs unchanged)")
            self._touch(kind, digest)
            self._remember(label, digest, parts)
            self._save_state()
            return obj
        reason = self._miss_reason(label, parts)
        self.misses += 1
        count(instrumentation, "store_misses")
        self._record(label, kind, digest, "miss", reason)
        obj = compute()
        payload, sidecar = codec.encode(obj)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        if sidecar is not None:
            csv_path.write_text(sidecar, encoding="utf-8")
        self._touch(kind, digest)
        self._remember(label, digest, parts)
        self._evict(instrumentation)
        self._save_state()
        return obj

    def bypass(
        self,
        label: str,
        reason: str,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        """Record that a stage could not be cached (and why)."""
        self.bypasses += 1
        count(instrumentation, "store_bypasses")
        self._record(self._sequenced(label), "-", "-", "bypass", reason)

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _record(
        self, label: str, kind: str, digest: str, status: str, reason: str
    ) -> None:
        self.events.append(StoreEvent(label, kind, digest, status, reason))

    def _remember(self, label: str, digest: str, parts: Mapping[str, str]) -> None:
        self._manifest[label] = {"digest": digest, "parts": dict(parts)}

    def _miss_reason(self, label: str, parts: Mapping[str, str]) -> str:
        prev = self._manifest.get(label)
        if prev is None:
            return "first computation (no prior run recorded this stage)"
        prev_parts = prev.get("parts", {})
        changed = sorted(
            k
            for k in set(parts) | set(prev_parts)
            if dict(parts).get(k) != prev_parts.get(k)
        )
        if not changed:
            return "key unchanged but artifact missing (evicted or deleted)"
        diffs = ", ".join(
            f"{k} ({_short(prev_parts.get(k))} -> {_short(dict(parts).get(k))})"
            for k in changed
        )
        return f"inputs changed: {diffs}"

    def _touch(self, kind: str, digest: str) -> None:
        self._index.seq += 1
        self._index.entries[f"{kind}/{digest}"] = self._index.seq

    def _evict(self, instrumentation: Instrumentation | None = None) -> None:
        if self.max_entries is None:
            return
        while len(self._index.entries) > self.max_entries:
            victim = min(self._index.entries, key=self._index.entries.get)
            del self._index.entries[victim]
            kind, _, digest = victim.partition("/")
            json_path, csv_path = self._paths(kind, digest)
            json_path.unlink(missing_ok=True)
            csv_path.unlink(missing_ok=True)
            self.evictions += 1
            count(instrumentation, "store_evictions")

    def stats(self) -> StoreStats:
        return StoreStats(
            hits=self.hits,
            misses=self.misses,
            bypasses=self.bypasses,
            evictions=self.evictions,
        )

    def __len__(self) -> int:
        return len(self._index.entries)

    def clear(self) -> None:
        """Delete every artifact (manifest survives, so explain still works)."""
        for entry in list(self._index.entries):
            kind, _, digest = entry.partition("/")
            json_path, csv_path = self._paths(kind, digest)
            json_path.unlink(missing_ok=True)
            csv_path.unlink(missing_ok=True)
        self._index.entries.clear()
        self._save_state()

    # ------------------------------------------------------------------
    # the explain report
    # ------------------------------------------------------------------
    def explain(self, title: str = "") -> str:
        """Render this session's reuse decisions, stage by stage."""
        lines = []
        if title:
            lines.append(title)
            lines.append("-" * len(title))
        lines.append(f"artifact store @ {self.root}")
        lines.append(f"  {self.stats()}; {len(self)} artifacts on disk")
        width = max((len(e.label) for e in self.events), default=0)
        for event in self.events:
            lines.append(
                f"  {event.status.upper():<6} {event.label:<{width}}  "
                f"{event.kind:<14} {_short(event.digest):<10}  {event.reason}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ArtifactStore {str(self.root)!r}: {len(self)} artifacts>"
