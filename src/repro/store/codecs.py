"""Artifact codecs: pipeline objects <-> JSON payload (+ optional CSV).

Every store artifact is a JSON document plus, for bulk numeric data, a CSV
sidecar; both are plain text so cached artifacts can be inspected, diffed
and checked into a repository like any other file. Codecs are lossless for
the pipeline's purposes: a decoded artifact is bit-identical to the object
that was encoded (float cells round-trip through ``repr``, which is exact
for IEEE doubles).

Objects that reference base tables (:class:`CandidateSet`) store only pair
ids — the caller supplies the live tables at decode time via codec
*context*, and the store key already pins their content fingerprints, so a
decoded candidate set can never silently attach to different data.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..blocking.candidate_set import CandidateSet
from ..errors import StoreError
from ..features.vectors import FeatureMatrix
from ..labeling.labels import Label, LabeledPairs
from ..ml.impute import MeanImputer

Payload = dict[str, Any]


class ArtifactCodec:
    """Encode/decode one artifact kind.

    ``encode`` returns ``(payload, sidecar)`` where *payload* is a
    JSON-serializable dict and *sidecar* is an optional CSV text blob;
    ``decode`` inverts it, with keyword *context* for live objects the
    payload deliberately does not embed (base tables).
    """

    kind = "artifact"

    def encode(self, obj: Any) -> tuple[Payload, str | None]:
        raise NotImplementedError

    def decode(self, payload: Payload, sidecar: str | None, **context: Any) -> Any:
        raise NotImplementedError


class CandidateSetCodec(ArtifactCodec):
    """Pairs + keys; base tables are decode-time context."""

    kind = "candidates"

    def encode(self, candidates: CandidateSet) -> tuple[Payload, str | None]:
        return (
            {
                "name": candidates.name,
                "l_key": candidates.l_key,
                "r_key": candidates.r_key,
                "pairs": [list(p) for p in candidates.pairs],
            },
            None,
        )

    def decode(
        self, payload: Payload, sidecar: str | None, **context: Any
    ) -> CandidateSet:
        try:
            ltable, rtable = context["ltable"], context["rtable"]
        except KeyError:
            raise StoreError(
                "decoding a candidate set needs ltable/rtable context"
            ) from None
        return CandidateSet(
            ltable,
            rtable,
            payload["l_key"],
            payload["r_key"],
            [tuple(p) for p in payload["pairs"]],
            name=context.get("name") or payload.get("name", ""),
        )


def _format_cell(value: float) -> str:
    return repr(float(value))


class FeatureMatrixCodec(ArtifactCodec):
    """Pairs/feature names in JSON; the value matrix as a CSV sidecar."""

    kind = "feature_matrix"

    def encode(self, matrix: FeatureMatrix) -> tuple[Payload, str | None]:
        payload = {
            "pairs": [list(p) for p in matrix.pairs],
            "feature_names": list(matrix.feature_names),
        }
        lines = [
            ",".join(_format_cell(v) for v in row) for row in matrix.values
        ]
        return payload, "\n".join(lines)

    def decode(
        self, payload: Payload, sidecar: str | None, **context: Any
    ) -> FeatureMatrix:
        pairs = [tuple(p) for p in payload["pairs"]]
        names = list(payload["feature_names"])
        rows = [
            [float(cell) for cell in line.split(",")]
            for line in (sidecar or "").splitlines()
            if line
        ]
        values = np.asarray(rows, dtype=float).reshape(len(pairs), len(names))
        return FeatureMatrix(pairs=pairs, feature_names=names, values=values)


class LabeledPairsCodec(ArtifactCodec):
    """Pairs with their Yes/No/Unsure labels, in labeling order."""

    kind = "labels"

    def encode(self, labels: LabeledPairs) -> tuple[Payload, str | None]:
        return (
            {"items": [[list(pair), label.value] for pair, label in labels.items()]},
            None,
        )

    def decode(
        self, payload: Payload, sidecar: str | None, **context: Any
    ) -> LabeledPairs:
        return LabeledPairs(
            [(tuple(pair), Label.from_text(text)) for pair, text in payload["items"]]
        )


class MatcherCodec(ArtifactCodec):
    """A fitted ML matcher, via the packaging-format model recipes."""

    kind = "matcher"

    def encode(self, matcher: Any) -> tuple[Payload, str | None]:
        from ..core.serialize import serialize_model

        if not matcher.is_fitted:
            raise StoreError("only fitted matchers can be stored")
        return (
            {
                "name": matcher.name,
                "model": serialize_model(matcher.model),
                "imputer_means": [float(v) for v in matcher._imputer._means],
                "feature_names": list(matcher._feature_names or []),
            },
            None,
        )

    def decode(self, payload: Payload, sidecar: str | None, **context: Any) -> Any:
        from ..core.serialize import deserialize_model
        from ..matchers.ml_matcher import MLMatcher

        matcher = MLMatcher(deserialize_model(payload["model"]), payload["name"])
        imputer = MeanImputer()
        imputer._means = np.asarray(payload["imputer_means"], dtype=float)
        matcher._imputer = imputer
        matcher._feature_names = list(payload["feature_names"])
        return matcher


class PackagedWorkflowCodec(ArtifactCodec):
    """A whole deployable workflow (rules + blocking + features + matcher)."""

    kind = "packaged_workflow"

    def encode(self, packaged: Any) -> tuple[Payload, str | None]:
        return packaged.to_dict(), None

    def decode(self, payload: Payload, sidecar: str | None, **context: Any) -> Any:
        from ..core.serialize import PackagedWorkflow

        return PackagedWorkflow.from_dict(payload)


class PairListCodec(ArtifactCodec):
    """An ordered list of (left-id, right-id) pairs (e.g. predictions)."""

    kind = "pairs"

    def encode(self, pairs: list) -> tuple[Payload, str | None]:
        return {"pairs": [list(p) for p in pairs]}, None

    def decode(self, payload: Payload, sidecar: str | None, **context: Any) -> list:
        return [tuple(p) for p in payload["pairs"]]


CANDIDATES = CandidateSetCodec()
FEATURE_MATRIX = FeatureMatrixCodec()
LABELS = LabeledPairsCodec()
MATCHER = MatcherCodec()
PACKAGED_WORKFLOW = PackagedWorkflowCodec()
PAIR_LIST = PairListCodec()
