"""Content-addressed artifact store for incremental workflow re-execution.

Create an :class:`ArtifactStore` over a directory and pass it as the
opt-in ``store=`` argument of :class:`~repro.core.workflow.EMWorkflow`,
the blockers, :func:`~repro.features.vectors.extract_feature_vectors` or
the case-study entry points. Re-running a patched workflow then recomputes
only the stages whose input fingerprints changed;
:meth:`ArtifactStore.explain` reports what was reused and why. See
``docs/store.md``.
"""

from .codecs import (
    CANDIDATES,
    FEATURE_MATRIX,
    LABELS,
    MATCHER,
    PACKAGED_WORKFLOW,
    PAIR_LIST,
    ArtifactCodec,
    CandidateSetCodec,
    FeatureMatrixCodec,
    LabeledPairsCodec,
    MatcherCodec,
    PackagedWorkflowCodec,
    PairListCodec,
)
from .fingerprint import (
    CODE_SALT,
    SEGMENT_ROWS,
    canonical_bytes,
    fingerprint_blocker,
    fingerprint_feature_set,
    fingerprint_labels,
    fingerprint_matcher,
    fingerprint_matrix,
    fingerprint_pairs,
    fingerprint_positive_rules,
    fingerprint_table,
    fingerprint_table_segments,
    fingerprint_value,
    segment_bounds,
)
from .segments import SegmentBlockStage, segmented_block
from .stages import cached_block, cached_extract, cached_predict, cached_sure_matches
from .store import ArtifactStore, StoreEvent, StoreStats

__all__ = [
    "ArtifactStore",
    "StoreEvent",
    "StoreStats",
    "ArtifactCodec",
    "CandidateSetCodec",
    "FeatureMatrixCodec",
    "LabeledPairsCodec",
    "MatcherCodec",
    "PackagedWorkflowCodec",
    "PairListCodec",
    "CANDIDATES",
    "FEATURE_MATRIX",
    "LABELS",
    "MATCHER",
    "PACKAGED_WORKFLOW",
    "PAIR_LIST",
    "CODE_SALT",
    "SEGMENT_ROWS",
    "SegmentBlockStage",
    "canonical_bytes",
    "fingerprint_value",
    "fingerprint_table",
    "fingerprint_table_segments",
    "segment_bounds",
    "segmented_block",
    "fingerprint_blocker",
    "fingerprint_positive_rules",
    "fingerprint_feature_set",
    "fingerprint_pairs",
    "fingerprint_labels",
    "fingerprint_matcher",
    "fingerprint_matrix",
    "cached_block",
    "cached_sure_matches",
    "cached_extract",
    "cached_predict",
]
