"""Incremental (delta) blocking: posting indexes maintained by upserts.

The batch blockers answer "which pairs survive?" by re-reading both whole
tables. This module answers the serving-loop question instead: *given the
pairs we already emitted, what changes when a handful of left records
arrive, change or disappear?* — the paper's Section 10 patch (496
late-arriving records) executed as an index update rather than a rerun.

A :class:`Blocker` that sets ``supports_incremental`` vends a
:class:`IncrementalBlocking` handle via ``blocker.incremental(rtable,
l_key, r_key)``. The handle freezes the *right* table into a
:class:`PostingIndex` (token -> record-id postings over the interned
vocabulary, rid lists in right-row order exactly like the batch path's
inverted index) plus the right side's document frequencies, and then
maintains, under ``upsert(records)`` / ``delete(ids)``:

- a left :class:`PostingIndex` over the live left records' tokens (the
  persistent structure that bounds the work of a future right-side update
  and powers introspection/convergence checks),
- per-record token entries, and
- the kept pairs each live left record currently emits.

``upsert`` is **replace** semantics per record id and emits only the
*delta* pairs for the batch. Its probe replays the batch algorithm
record-by-record — same tokenization recipe through the shared
:class:`~repro.runtime.cache.TokenCache`, same global ``(doc_freq,
token)`` prefix order, same ``seen``-set insertion sequence, and the same
:mod:`repro.similarity.batch` keep-mask kernels — so the pairs an upsert
emits for a batch are **bit-identical** (values and order) to
``blocker.block_tables(batch_table, rtable)``; the keep-mask kernels are
per-element independent, so verifying one record's candidates at a time
equals the batch path's whole-chunk call. ``tests/test_incremental.py``
asserts this differentially, property-style.

Fault tolerance splits mutation out of computation: ``preview(records)``
computes a :class:`PendingUpsert` (new entries + delta pairs) without
touching the handle, and ``commit(pending)`` applies it; ``upsert`` is
``commit(preview(...))``. :class:`~repro.serving.service.MatchService`
runs the raising-prone downstream stages (extraction, prediction) off
previews and commits only afterwards, so a mid-patch exception leaves
every index uncorrupted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import IncrementalBlockingError
from ..runtime.context import EngineSession, resolve_session
from ..similarity import batch
from ..table import Table

Pair = tuple[Any, Any]

#: Shared empty posting — never mutated, so it is safe as a probe default.
_EMPTY: dict[Any, None] = {}

#: Sentinel distinguishing "no state for this lid" from a ``None`` payload.
_ABSENT = object()


class PostingIndex:
    """token -> ordered record-id postings.

    Postings are insertion-ordered sets (``dict[rid, None]``): iteration
    replays insertion order — for a right index built in right-row order
    this matches the batch blockers' inverted-index lists exactly — while
    ``remove`` stays O(tokens) per record instead of O(posting length).
    """

    __slots__ = ("_postings",)

    def __init__(self) -> None:
        self._postings: dict[Any, dict[Any, None]] = {}

    def __len__(self) -> int:
        return len(self._postings)

    def __contains__(self, token: Any) -> bool:
        return token in self._postings

    def add(self, rid: Any, tokens: Iterable[Any]) -> None:
        """Add *rid* to every token's posting (idempotent per token)."""
        postings = self._postings
        for token in tokens:
            posting = postings.get(token)
            if posting is None:
                posting = postings[token] = {}
            posting[rid] = None

    def remove(self, rid: Any, tokens: Iterable[Any]) -> None:
        """Drop *rid* from every token's posting; absent entries are no-ops."""
        postings = self._postings
        for token in tokens:
            posting = postings.get(token)
            if posting is None:
                continue
            posting.pop(rid, None)
            if not posting:
                del postings[token]

    def postings(self, token: Any) -> Iterable[Any]:
        """Record ids posted under *token*, in insertion order."""
        return self._postings.get(token, _EMPTY)

    def tokens(self) -> Iterable[Any]:
        """All tokens with a non-empty posting."""
        return self._postings.keys()

    @staticmethod
    def shard_of(token: Any, shards: int) -> int:
        """The token-hash range owning *token* under ``shards``-way sharding.

        Delegates to :func:`repro.blocking.sharded.token_shard` — the same
        splitmix64/FNV-1a partitioning the batch sharded blockers use —
        so an incremental index split by ``shard_of`` holds exactly the
        posting shard a batch worker would build for that range.
        """
        from .sharded import token_shard

        return token_shard(token, shards)

    def merge(self, other: "PostingIndex") -> "PostingIndex":
        """Fold *other*'s postings into this index, in place.

        Per token, *other*'s rids append after existing ones (duplicates
        keep their first position, matching :meth:`add`'s idempotence).
        Merging is associative, and for indexes holding **disjoint token
        ranges** — the sharded layout — it is also order-independent up
        to token insertion order, with snapshots exactly equal to the
        single-index build (``tests/test_posting_shards.py``). Returns
        ``self`` so shard folds chain.
        """
        postings = self._postings
        for token, theirs in other._postings.items():
            mine = postings.get(token)
            if mine is None:
                postings[token] = dict(theirs)
            else:
                for rid in theirs:
                    if rid not in mine:
                        mine[rid] = None
        return self

    def snapshot(self, token_of: Callable[[Any], Any] | None = None) -> dict[Any, tuple]:
        """Canonical, history-independent view: ``{token: sorted rids}``.

        *token_of* maps interned token ids back to strings so snapshots
        from handles built against different vocabulary states compare
        equal. Rids are sorted (by ``repr`` to tolerate mixed types), so
        delta-evolved and freshly-built indexes — whose posting insertion
        orders legitimately differ — snapshot identically iff they hold
        the same postings.
        """
        decode = token_of if token_of is not None else lambda t: t
        return {
            decode(token): tuple(sorted(posting, key=repr))
            for token, posting in self._postings.items()
        }


@dataclass(frozen=True)
class PendingUpsert:
    """A computed-but-uncommitted upsert batch.

    ``order`` lists the batch's record ids (table row order); ``entries``
    holds each surviving record's new blocking state (records whose cell
    is missing or tokenizes to nothing are absent — committing them just
    clears any previous state); ``pairs`` maps each surviving record to
    the rids it now pairs with; ``delta`` is the flat pair list in batch
    emission order — bit-identical to what ``block_tables`` would emit
    for the batch table.
    """

    order: tuple[Any, ...]
    entries: dict[Any, Any]
    pairs: dict[Any, tuple[Any, ...]]
    delta: tuple[Pair, ...]


class IncrementalBlocking:
    """Base delta-maintained blocking handle (one blocker, fixed rtable).

    Subclasses implement :meth:`preview` (pure computation) and the
    ``_install``/``_discard`` state hooks; everything else — commit,
    replace-on-upsert, graceful deletes, pair/state accessors — is shared.
    """

    def __init__(
        self,
        blocker: Any,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        session: EngineSession | None = None,
    ) -> None:
        self.blocker = blocker
        self.rtable = rtable
        self.l_key = l_key
        self.r_key = r_key
        self._pairs: dict[Any, tuple[Any, ...]] = {}

    # -- computation ---------------------------------------------------

    def preview(self, records: "Table | Sequence[Mapping[str, Any]]") -> PendingUpsert:
        """Compute an upsert's new state + delta pairs without mutating."""
        raise NotImplementedError

    def _as_table(self, records: "Table | Sequence[Mapping[str, Any]]") -> Table | None:
        """Coerce an upsert batch to a Table (``None`` for an empty batch)."""
        if isinstance(records, Table):
            return records if len(records) else None
        rows = list(records)
        if not rows:
            return None
        return Table.from_rows(rows, name="upsert")

    def _validate_batch(self, table: Table) -> None:
        blocker = self.blocker
        blocker._validate_inputs(
            table,
            self.rtable,
            self.l_key,
            self.r_key,
            [(table, blocker.l_attr), (self.rtable, blocker.r_attr)],
        )

    # -- mutation ------------------------------------------------------

    def commit(self, pending: PendingUpsert) -> list[Pair]:
        """Apply a previewed upsert; returns its delta pairs."""
        for lid in pending.order:
            self._discard(lid)
            state = pending.entries.get(lid, _ABSENT)
            if state is not _ABSENT:
                self._install(lid, state, pending.pairs.get(lid, ()))
        return list(pending.delta)

    def upsert(self, records: "Table | Sequence[Mapping[str, Any]]") -> list[Pair]:
        """Insert-or-replace a batch of left records; returns delta pairs."""
        return self.commit(self.preview(records))

    def delete(self, ids: Iterable[Any]) -> list[Pair]:
        """Drop left records by id; absent ids are graceful no-ops.

        Returns the retired pairs (the deleted records' former emissions).
        """
        retired: list[Pair] = []
        for lid in ids:
            retired.extend((lid, rid) for rid in self._discard(lid))
        return retired

    def _install(self, lid: Any, state: Any, kept: tuple[Any, ...]) -> None:
        raise NotImplementedError

    def _discard(self, lid: Any) -> tuple[Any, ...]:
        """Remove *lid*'s state; returns the rids it used to pair with."""
        raise NotImplementedError

    # -- accessors -----------------------------------------------------

    def pairs_for(self, lid: Any) -> tuple[Any, ...]:
        """Rids the live record *lid* currently pairs with (may be empty)."""
        return self._pairs.get(lid, ())

    def pairs(self) -> list[Pair]:
        """All live pairs, grouped by left record in insertion order."""
        return [(lid, rid) for lid, rids in self._pairs.items() for rid in rids]

    def pair_state(self) -> dict[Any, tuple[Any, ...]]:
        """``{lid: kept rids}`` — per-record, so it compares equal between
        a delta-evolved handle and a freshly-built one regardless of the
        upsert history's insertion order."""
        return dict(self._pairs)

    def state_snapshot(self) -> dict[str, Any]:
        """Canonical full-state view for differential/convergence tests."""
        raise NotImplementedError


class _TokenIncrementalBlocking(IncrementalBlocking):
    """Shared machinery for the token-overlap family.

    Freezes the right table's interned entries, posting index and document
    frequencies at construction; tokenizes upsert batches through the same
    :meth:`~repro.runtime.cache.TokenCache.token_ids_by_id` recipe the
    batch path uses (rows whose cell is missing or tokenizes to nothing
    are dropped, i.e. committing them clears previous state). The interned
    id path is used regardless of the session's kernel switch: both batch
    paths emit identical pairs by construction (PR 6 invariant), and the
    keep-mask kernels are plain functions with no switch of their own.
    """

    def __init__(
        self,
        blocker: Any,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        session: EngineSession | None = None,
    ) -> None:
        super().__init__(blocker, rtable, l_key, r_key, session=session)
        resolved = resolve_session(session)
        self._cache = resolved.token_cache
        blocker._validate_inputs(
            rtable, rtable, r_key, r_key, [(rtable, blocker.r_attr)]
        )
        r_entries = self._cache.token_ids_by_id(
            rtable, blocker.r_attr, r_key, blocker.tokenizer, blocker.normalizer
        )
        self._r_entries = r_entries
        # Right postings in right-row order — iteration over each posting
        # replays the batch path's inverted-index rid lists exactly.
        self.right_index = PostingIndex()
        for rid, entry in r_entries.items():
            self.right_index.add(rid, entry.sorted)
        self._doc_freq: dict[int, int] = {}
        for entry in r_entries.values():
            for tid in entry.sorted:
                self._doc_freq[tid] = self._doc_freq.get(tid, 0) + 1
        #: The maintained left posting index (token id -> live lids).
        self.left_index = PostingIndex()
        self._entries: dict[Any, Any] = {}

    def _tokenize_batch(self, table: Table) -> dict[Any, Any]:
        blocker = self.blocker
        return self._cache.token_ids_by_id(
            table, blocker.l_attr, self.l_key, blocker.tokenizer, blocker.normalizer
        )

    def _kept_rids(self, entry: Any) -> tuple[Any, ...]:
        """One record's surviving rids, in batch-path emission order."""
        raise NotImplementedError

    def preview(self, records: "Table | Sequence[Mapping[str, Any]]") -> PendingUpsert:
        table = self._as_table(records)
        if table is None:
            return PendingUpsert((), {}, {}, ())
        self._validate_batch(table)
        l_entries = self._tokenize_batch(table)
        pairs: dict[Any, tuple[Any, ...]] = {}
        delta: list[Pair] = []
        for lid, entry in l_entries.items():
            kept = self._kept_rids(entry)
            pairs[lid] = kept
            delta.extend((lid, rid) for rid in kept)
        return PendingUpsert(tuple(table[self.l_key]), dict(l_entries), pairs, tuple(delta))

    def _install(self, lid: Any, state: Any, kept: tuple[Any, ...]) -> None:
        self._entries[lid] = state
        self.left_index.add(lid, state.sorted)
        self._pairs[lid] = tuple(kept)

    def _discard(self, lid: Any) -> tuple[Any, ...]:
        entry = self._entries.pop(lid, None)
        if entry is not None:
            self.left_index.remove(lid, entry.sorted)
        return self._pairs.pop(lid, ())

    def state_snapshot(self) -> dict[str, Any]:
        token_of = self._cache.vocabulary.token_of
        return {
            "index": self.left_index.snapshot(token_of),
            "pairs": self.pair_state(),
        }


class OverlapIncremental(_TokenIncrementalBlocking):
    """Delta handle for :class:`~repro.blocking.overlap.OverlapBlocker`.

    Per record: sort tokens by the global ``(doc_freq, token)`` key — the
    batch path sorts by a rank built over the *batch's* vocabulary, but
    rank order is exactly this key's order restricted to those tokens, so
    sorting by the key directly yields the same sequence — cut the
    ``len - k + 1`` prefix, probe the right postings, verify candidates
    with one :func:`~repro.similarity.batch.overlap_at_least_batch` call.
    """

    def _kept_rids(self, entry: Any) -> tuple[Any, ...]:
        k = self.blocker.threshold
        ids = entry.sorted
        if len(ids) < k:
            return ()
        doc_freq = self._doc_freq
        token_of = self._cache.vocabulary.token_of
        ordered = sorted(ids, key=lambda tid: (doc_freq.get(tid, 0), token_of(tid)))
        seen: set[Any] = set()
        for tid in ordered[: len(ordered) - k + 1]:
            for rid in self.right_index.postings(tid):
                seen.add(rid)
        if not seen:
            return ()
        cand = list(seen)
        r_entries = self._r_entries
        keep = batch.overlap_at_least_batch(
            [entry.ids] * len(cand), [r_entries[rid].ids for rid in cand], k
        )
        return tuple(rid for rid, kept in zip(cand, keep) if kept)


class OverlapCoefficientIncremental(_TokenIncrementalBlocking):
    """Delta handle for
    :class:`~repro.blocking.overlap_coefficient.OverlapCoefficientBlocker`.

    Probes every token in the entry's cached ``probe`` order (the parent
    frozenset's iteration order — the same sequence the batch path ships
    to workers), then verifies with one
    :func:`~repro.similarity.batch.overlap_coefficient_at_least_batch` call.
    """

    def _kept_rids(self, entry: Any) -> tuple[Any, ...]:
        seen: set[Any] = set()
        for tid in entry.probe:
            for rid in self.right_index.postings(tid):
                seen.add(rid)
        if not seen:
            return ()
        cand = list(seen)
        r_entries = self._r_entries
        keep = batch.overlap_coefficient_at_least_batch(
            [entry.ids] * len(cand),
            [r_entries[rid].ids for rid in cand],
            self.blocker.threshold,
        )
        return tuple(rid for rid, kept in zip(cand, keep) if kept)


class AttrEquivalenceIncremental(IncrementalBlocking):
    """Delta handle for
    :class:`~repro.blocking.attr_equivalence.AttrEquivalenceBlocker`.

    The "posting index" degenerates to the equi-join hash index
    (preprocessed value -> rids in right-row order); a record's state is
    its preprocessed value. Missing values (including preprocessors
    returning ``None``) never join — upserting such a record clears any
    previous state, exactly like the batch path dropping the row.
    """

    def __init__(
        self,
        blocker: Any,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        session: EngineSession | None = None,
    ) -> None:
        super().__init__(blocker, rtable, l_key, r_key, session=session)
        from ..table.column import is_missing

        blocker._validate_inputs(
            rtable, rtable, r_key, r_key, [(rtable, blocker.r_attr)]
        )
        r_values = blocker._values(rtable, blocker.r_attr, blocker.r_preprocess)
        self._r_index: dict[Any, list[Any]] = {}
        for rid, value in zip(rtable[r_key], r_values):
            if not is_missing(value):
                self._r_index.setdefault(value, []).append(rid)
        self._values: dict[Any, Any] = {}

    def preview(self, records: "Table | Sequence[Mapping[str, Any]]") -> PendingUpsert:
        from ..table.column import is_missing

        table = self._as_table(records)
        if table is None:
            return PendingUpsert((), {}, {}, ())
        self._validate_batch(table)
        blocker = self.blocker
        l_values = blocker._values(table, blocker.l_attr, blocker.l_preprocess)
        entries: dict[Any, Any] = {}
        pairs: dict[Any, tuple[Any, ...]] = {}
        delta: list[Pair] = []
        for lid, value in zip(table[self.l_key], l_values):
            if is_missing(value):
                continue
            kept = tuple(self._r_index.get(value, ()))
            entries[lid] = value
            pairs[lid] = kept
            delta.extend((lid, rid) for rid in kept)
        return PendingUpsert(tuple(table[self.l_key]), entries, pairs, tuple(delta))

    def _install(self, lid: Any, state: Any, kept: tuple[Any, ...]) -> None:
        self._values[lid] = state
        self._pairs[lid] = tuple(kept)

    def _discard(self, lid: Any) -> tuple[Any, ...]:
        self._values.pop(lid, None)
        return self._pairs.pop(lid, ())

    def state_snapshot(self) -> dict[str, Any]:
        values = PostingIndex()
        for lid, value in self._values.items():
            values.add(lid, (value,))
        return {"index": values.snapshot(), "pairs": self.pair_state()}
