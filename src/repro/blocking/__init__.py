"""Blocking subsystem: blockers, candidate sets, combiners, debugger."""

from .attr_equivalence import AttrEquivalenceBlocker
from .base import Blocker
from .blackbox import BlackBoxBlocker
from .candidate_set import CandidateSet, Pair, full_cross_product
from .combiner import (
    OverlapReport,
    intersect_candidates,
    overlap_report,
    union_candidates,
)
from .debugger import MissedPairReport, debug_blocker
from .incremental import (
    AttrEquivalenceIncremental,
    IncrementalBlocking,
    OverlapCoefficientIncremental,
    OverlapIncremental,
    PendingUpsert,
    PostingIndex,
)
from .dedupe import canonical_records, dedupe_candidates, duplicate_clusters
from .down_sample import down_sample
from .overlap import OverlapBlocker
from .overlap_coefficient import OverlapCoefficientBlocker
from .rule_based import RuleBasedBlocker
from .sorted_neighborhood import SortedNeighborhoodBlocker

__all__ = [
    "AttrEquivalenceBlocker",
    "AttrEquivalenceIncremental",
    "BlackBoxBlocker",
    "Blocker",
    "CandidateSet",
    "IncrementalBlocking",
    "MissedPairReport",
    "OverlapBlocker",
    "OverlapCoefficientBlocker",
    "OverlapCoefficientIncremental",
    "OverlapIncremental",
    "OverlapReport",
    "Pair",
    "PendingUpsert",
    "PostingIndex",
    "RuleBasedBlocker",
    "SortedNeighborhoodBlocker",
    "canonical_records",
    "debug_blocker",
    "dedupe_candidates",
    "down_sample",
    "duplicate_clusters",
    "full_cross_product",
    "intersect_candidates",
    "overlap_report",
    "union_candidates",
]
