"""Blocking subsystem: blockers, candidate sets, combiners, debugger."""

from .attr_equivalence import AttrEquivalenceBlocker
from .base import Blocker
from .blackbox import BlackBoxBlocker
from .candidate_set import CandidateSet, Pair, full_cross_product
from .combiner import (
    OverlapReport,
    intersect_candidates,
    overlap_report,
    union_candidates,
)
from .debugger import MissedPairReport, debug_blocker
from .incremental import (
    AttrEquivalenceIncremental,
    IncrementalBlocking,
    OverlapCoefficientIncremental,
    OverlapIncremental,
    PendingUpsert,
    PostingIndex,
)
from .dedupe import canonical_records, dedupe_candidates, duplicate_clusters
from .down_sample import down_sample
from .factory import (
    BLOCKER_REGISTRY,
    BlockerConfig,
    create_blocker,
    create_blockers,
    default_plan_configs,
    register_blocker,
)
from .lsh import MinHashLSHBlocker, SimHashBlocker
from .overlap import OverlapBlocker
from .overlap_coefficient import OverlapCoefficientBlocker
from .policy import UNCAPPED, BlockSizePolicy, resolve_policy
from .rule_based import RuleBasedBlocker
from .sharded import (
    ShardedOverlapBlocker,
    ShardedOverlapCoefficientBlocker,
    token_shard,
)
from .sorted_neighborhood import SortedNeighborhoodBlocker

__all__ = [
    "AttrEquivalenceBlocker",
    "AttrEquivalenceIncremental",
    "BLOCKER_REGISTRY",
    "BlackBoxBlocker",
    "Blocker",
    "BlockerConfig",
    "BlockSizePolicy",
    "CandidateSet",
    "IncrementalBlocking",
    "MinHashLSHBlocker",
    "MissedPairReport",
    "OverlapBlocker",
    "OverlapCoefficientBlocker",
    "OverlapCoefficientIncremental",
    "OverlapIncremental",
    "OverlapReport",
    "Pair",
    "PendingUpsert",
    "PostingIndex",
    "RuleBasedBlocker",
    "ShardedOverlapBlocker",
    "ShardedOverlapCoefficientBlocker",
    "SimHashBlocker",
    "SortedNeighborhoodBlocker",
    "UNCAPPED",
    "canonical_records",
    "create_blocker",
    "create_blockers",
    "default_plan_configs",
    "register_blocker",
    "resolve_policy",
    "token_shard",
    "debug_blocker",
    "dedupe_candidates",
    "down_sample",
    "duplicate_clusters",
    "full_cross_product",
    "intersect_candidates",
    "overlap_report",
    "union_candidates",
]
