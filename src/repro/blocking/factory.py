"""Blocker registry + config factory: pick blockers by name, not import.

Panda-style EM systems assume a *catalog* of blockers users select from
declaratively; until now ours could only be constructed in Python. This
module gives every blocker a registered kind name and a JSON-shaped
config so the CLI (``casestudy --blocker``) and the serving bootstrap can
build blocking plans from data:

    >>> create_blocker({"kind": "overlap", "l_attr": "AwardTitle",
    ...                 "r_attr": "AwardTitle", "threshold": 3,
    ...                 "normalizer": "normalize_title"})
    <repro.blocking.overlap.OverlapBlocker ...>

Callable-valued parameters travel as registry names — ``tokenizer`` via
:data:`repro.text.tokenizers.TOKENIZERS`, ``normalizer`` /
``l_preprocess`` / ``r_preprocess`` via the name tables below — because
configs must survive JSON round-trips. ``block_size_policy`` is a bare
int cap (or absent). Unknown kinds and unknown parameter names raise
:class:`~repro.errors.BlockingError` listing what *is* available: a
config typo should fail loudly at build time, not silently change
blocking output.

:func:`default_plan_configs` returns the paper's Section-7 recipe as
configs; building it through the factory and diffing against the golden
snapshot (``tests/test_factory.py``) pins config-driven construction to
the hand-written plan.

Third-party blockers can join via :func:`register_blocker` — the
registry is a plain dict keyed by kind name, srdedupe-style.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import BlockingError
from ..text.normalize import normalize_title
from ..text.patterns import award_number_suffix
from ..text.tokenizers import TOKENIZERS
from .attr_equivalence import AttrEquivalenceBlocker
from .base import Blocker
from .lsh import MinHashLSHBlocker, SimHashBlocker
from .overlap import OverlapBlocker
from .overlap_coefficient import OverlapCoefficientBlocker
from .sharded import ShardedOverlapBlocker, ShardedOverlapCoefficientBlocker
from .sorted_neighborhood import SortedNeighborhoodBlocker

#: Named cell normalizers a config may reference.
NORMALIZERS: dict[str, Callable[[Any], Any]] = {
    "normalize_title": normalize_title,
}

#: Named preprocessors for the attr-equivalence blocker.
PREPROCESSORS: dict[str, Callable[[Any], Any]] = {
    "award_number_suffix": award_number_suffix,
    "normalize_title": normalize_title,
}


def _lookup(table: Mapping[str, Any], name: Any, what: str) -> Any:
    if name is None:
        return None
    if callable(name):
        return name
    try:
        return table[name]
    except KeyError:
        raise BlockingError(
            f"unknown {what} {name!r}; available: {sorted(table)}"
        ) from None


def _common(params: dict[str, Any]) -> dict[str, Any]:
    """Resolve the name-valued parameters shared by token blockers."""
    out = dict(params)
    if "tokenizer" in out:
        out["tokenizer"] = _lookup(TOKENIZERS, out["tokenizer"], "tokenizer")
    if "normalizer" in out:
        out["normalizer"] = _lookup(NORMALIZERS, out["normalizer"], "normalizer")
    return out


def _build_attr_equivalence(params: dict[str, Any]) -> Blocker:
    out = dict(params)
    for key in ("l_preprocess", "r_preprocess"):
        if key in out:
            out[key] = _lookup(PREPROCESSORS, out[key], "preprocessor")
    return AttrEquivalenceBlocker(**out)


def _build_sorted_neighborhood(params: dict[str, Any]) -> Blocker:
    out = dict(params)
    if "key" in out:
        out["key"] = _lookup(PREPROCESSORS, out["key"], "preprocessor")
    return SortedNeighborhoodBlocker(**out)


#: kind name -> builder taking resolved keyword params. Extend with
#: :func:`register_blocker`, not by mutating directly.
BLOCKER_REGISTRY: dict[str, Callable[[dict[str, Any]], Blocker]] = {
    "attr_equivalence": _build_attr_equivalence,
    "overlap": lambda p: OverlapBlocker(**_common(p)),
    "overlap_coefficient": lambda p: OverlapCoefficientBlocker(**_common(p)),
    "sharded_overlap": lambda p: ShardedOverlapBlocker(**_common(p)),
    "sharded_overlap_coefficient": lambda p: ShardedOverlapCoefficientBlocker(
        **_common(p)
    ),
    "minhash_lsh": lambda p: MinHashLSHBlocker(**_common(p)),
    "simhash": lambda p: SimHashBlocker(**_common(p)),
    "sorted_neighborhood": _build_sorted_neighborhood,
}


def register_blocker(
    kind: str, builder: Callable[[dict[str, Any]], Blocker]
) -> None:
    """Register a new blocker kind (overwriting an existing kind fails)."""
    if kind in BLOCKER_REGISTRY:
        raise BlockingError(f"blocker kind {kind!r} is already registered")
    BLOCKER_REGISTRY[kind] = builder


@dataclass(frozen=True)
class BlockerConfig:
    """One blocker as data: a kind name plus keyword parameters."""

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    @classmethod
    def parse(cls, obj: "BlockerConfig | Mapping[str, Any]") -> "BlockerConfig":
        """Accept a BlockerConfig, ``{"kind", "params"}``, or a flat dict
        where every non-``kind`` key is a parameter."""
        if isinstance(obj, BlockerConfig):
            return obj
        if not isinstance(obj, Mapping):
            raise BlockingError(
                f"blocker config must be a mapping with a 'kind' key, got {obj!r}"
            )
        if "kind" not in obj:
            raise BlockingError(f"blocker config is missing 'kind': {dict(obj)!r}")
        if "params" in obj:
            extra = set(obj) - {"kind", "params"}
            if extra:
                raise BlockingError(
                    f"blocker config mixes 'params' with flat keys {sorted(extra)}"
                )
            return cls(kind=obj["kind"], params=dict(obj["params"]))
        params = {k: v for k, v in obj.items() if k != "kind"}
        return cls(kind=obj["kind"], params=params)


def create_blocker(config: "BlockerConfig | Mapping[str, Any]") -> Blocker:
    """Build one blocker from a config; unknown kinds raise loudly."""
    cfg = BlockerConfig.parse(config)
    builder = BLOCKER_REGISTRY.get(cfg.kind)
    if builder is None:
        raise BlockingError(
            f"unknown blocker kind {cfg.kind!r}; available: {sorted(BLOCKER_REGISTRY)}"
        )
    try:
        return builder(dict(cfg.params))
    except TypeError as exc:
        raise BlockingError(
            f"bad parameters for blocker kind {cfg.kind!r}: {exc}"
        ) from exc


def create_blockers(
    configs: "list[BlockerConfig | Mapping[str, Any]]",
) -> list[Blocker]:
    """Build a whole blocking plan from a config list, order-preserving."""
    if isinstance(configs, (Mapping, BlockerConfig)):
        configs = [configs]
    return [create_blocker(c) for c in configs]


def default_plan_configs() -> list[dict[str, Any]]:
    """The Section-7 case-study recipe as factory configs.

    ``create_blockers(default_plan_configs())`` must reproduce
    ``repro.casestudy.blocking_plan.make_blockers`` exactly — asserted by
    the factory test suite against the golden candidate counts.
    """
    return [
        {
            "kind": "attr_equivalence",
            "l_attr": "AwardNumber",
            "r_attr": "AwardNumber",
            "l_preprocess": "award_number_suffix",
        },
        {
            "kind": "overlap",
            "l_attr": "AwardTitle",
            "r_attr": "AwardTitle",
            "threshold": 3,
            "normalizer": "normalize_title",
        },
        {
            "kind": "overlap_coefficient",
            "l_attr": "AwardTitle",
            "r_attr": "AwardTitle",
            "threshold": 0.7,
            "normalizer": "normalize_title",
        },
    ]
