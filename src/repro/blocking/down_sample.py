"""Magellan-style down-sampling of large input tables.

PyMatcher's how-to guide prescribes ``down_sample`` before development on
large inputs: naive independent random samples of A and B would share
almost no matching pairs, so the command instead samples B randomly and
then picks the A records most *likely to match* the B sample — those
sharing tokens with it, found via an inverted index. The result is a
development-sized table pair that still contains matches to find.

(The case study's tables were small enough to skip this, but any user
pointing the toolkit at full-size data needs it — and our synthetic
employees/vendor tables at ``aux_scale=1.0`` would too.)

Tokenization reuses the session's token cache (the same
``(attr, whitespace, normalize_title)`` recipe the title blockers use, so
a prior blocking pass makes down-sampling's A-side scan free), and the
shared-token counting over A chunks across the session's pool when it has
``workers >= 2``. Down-sampling implements the stage-operator protocol
with ``cache_kind = None``: its ``rng`` input has no stable fingerprint,
so it is uncacheable by design and never touches the artifact store.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import BlockingError
from ..runtime.context import EngineSession, StageOperator, resolve_session
from ..runtime.executor import chunk_ranges
from ..runtime.instrument import Instrumentation, count, stage
from ..table import Table
from ..text.normalize import normalize_title
from ..text.tokenizers import whitespace


def _table_row_tokens(
    table: Table, attrs: Sequence[str], cache
) -> list[set[str]]:
    """Per-row union of normalized word tokens over *attrs* (cached)."""
    columns = [
        cache.column_tokens(table, attr, whitespace, normalize_title)
        for attr in attrs
    ]
    rows: list[set[str]] = []
    for i in range(table.num_rows):
        tokens: set[str] = set()
        for column in columns:
            if column[i]:
                tokens.update(column[i])
        rows.append(tokens)
    return rows


def _shared_count_chunk(
    row_tokens: list[set[str]], b_tokens: set[str]
) -> list[int]:
    """Shared-token counts for a chunk of A rows (runs in workers)."""
    return [len(tokens & b_tokens) for tokens in row_tokens]


class DownSampleStage(StageOperator):
    """Stage operator for :func:`down_sample`.

    ``trace_name``/``cache_kind`` stay ``None``: the body opens its own
    ``tokenize``/``score`` stages (as it always has), and the random
    generator makes the output unfingerprintable, so the store is never
    consulted.
    """

    def __init__(
        self,
        table_a: Table,
        table_b: Table,
        attrs: Sequence[str],
        b_size: int,
        a_size: int,
        rng: np.random.Generator,
    ) -> None:
        self.table_a = table_a
        self.table_b = table_b
        self.attrs = attrs
        self.b_size = b_size
        self.a_size = a_size
        self.rng = rng

    def label(self) -> str:
        return f"down_sample:{self.table_a.name or 'A'}|{self.table_b.name or 'B'}"

    def compute(self, session: EngineSession) -> tuple[Table, Table]:
        table_a, table_b, attrs = self.table_a, self.table_b, self.attrs
        if self.b_size < 1 or self.a_size < 1:
            raise BlockingError("down_sample sizes must be >= 1")
        for attr in attrs:
            if attr not in table_a or attr not in table_b:
                raise BlockingError(f"attribute {attr!r} must exist in both tables")
        b_size = min(self.b_size, table_b.num_rows)
        a_size = min(self.a_size, table_a.num_rows)
        b_indices = [
            int(i)
            for i in self.rng.choice(table_b.num_rows, size=b_size, replace=False)
        ]
        sampled_b = table_b.take(b_indices, name=f"{table_b.name}_sample")

        instrumentation = session.instrumentation
        cache = session.token_cache
        with stage(instrumentation, "tokenize"):
            # the B sample's token universe
            b_tokens: set[str] = set()
            for tokens in _table_row_tokens(sampled_b, attrs, cache):
                b_tokens.update(tokens)
            a_row_tokens = _table_row_tokens(table_a, attrs, cache)

        with stage(instrumentation, "score"):
            ranges = chunk_ranges(len(a_row_tokens), session.workers)
            chunks = session.map_chunks(
                _shared_count_chunk,
                [(a_row_tokens[start:stop], b_tokens) for start, stop in ranges],
                sizes=[stop - start for start, stop in ranges],
            )
            shared_counts = np.array([c for chunk in chunks for c in chunk], dtype=int)
            count(instrumentation, "a_rows_scored", len(a_row_tokens))
        order = np.argsort(-shared_counts, kind="stable")
        keep = [int(i) for i in order[:a_size]]
        keep.sort()
        sampled_a = table_a.take(keep, name=f"{table_a.name}_sample")
        return sampled_a, sampled_b


def down_sample(
    table_a: Table,
    table_b: Table,
    attrs: Sequence[str],
    b_size: int,
    a_size: int,
    rng: np.random.Generator,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    pool: "object | None" = None,
    *,
    session: EngineSession | None = None,
) -> tuple[Table, Table]:
    """Down-sample (A, B) to roughly (*a_size*, *b_size*) rows.

    B is sampled uniformly; A keeps the records sharing the most tokens
    (over *attrs*, word-tokenized and normalized) with the B sample,
    breaking ties toward earlier rows. A records sharing no tokens are
    only used to pad up to *a_size* when too few candidates exist.

    ``workers``/``instrumentation``/``pool`` are deprecated shims over the
    ambient :class:`~repro.runtime.context.EngineSession`.
    """
    resolved = resolve_session(
        session, workers=workers, instrumentation=instrumentation, pool=pool
    )
    return resolved.run_stage(
        DownSampleStage(table_a, table_b, attrs, b_size, a_size, rng)
    )
