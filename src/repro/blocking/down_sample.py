"""Magellan-style down-sampling of large input tables.

PyMatcher's how-to guide prescribes ``down_sample`` before development on
large inputs: naive independent random samples of A and B would share
almost no matching pairs, so the command instead samples B randomly and
then picks the A records most *likely to match* the B sample — those
sharing tokens with it, found via an inverted index. The result is a
development-sized table pair that still contains matches to find.

(The case study's tables were small enough to skip this, but any user
pointing the toolkit at full-size data needs it — and our synthetic
employees/vendor tables at ``aux_scale=1.0`` would too.)
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import BlockingError
from ..table import Table
from ..table.column import is_missing
from ..text.normalize import normalize_title
from ..text.tokenizers import whitespace


def _record_tokens(table: Table, attrs: Sequence[str], row_index: int) -> set[str]:
    tokens: set[str] = set()
    for attr in attrs:
        value = table[attr][row_index]
        if is_missing(value):
            continue
        tokens.update(whitespace(str(normalize_title(value))))
    return tokens


def down_sample(
    table_a: Table,
    table_b: Table,
    attrs: Sequence[str],
    b_size: int,
    a_size: int,
    rng: np.random.Generator,
) -> tuple[Table, Table]:
    """Down-sample (A, B) to roughly (*a_size*, *b_size*) rows.

    B is sampled uniformly; A keeps the records sharing the most tokens
    (over *attrs*, word-tokenized and normalized) with the B sample,
    breaking ties toward earlier rows. A records sharing no tokens are
    only used to pad up to *a_size* when too few candidates exist.
    """
    if b_size < 1 or a_size < 1:
        raise BlockingError("down_sample sizes must be >= 1")
    for attr in attrs:
        if attr not in table_a or attr not in table_b:
            raise BlockingError(f"attribute {attr!r} must exist in both tables")
    b_size = min(b_size, table_b.num_rows)
    a_size = min(a_size, table_a.num_rows)
    b_indices = [int(i) for i in rng.choice(table_b.num_rows, size=b_size, replace=False)]
    sampled_b = table_b.take(b_indices, name=f"{table_b.name}_sample")

    # inverted index over the B sample's tokens
    b_tokens: set[str] = set()
    for i in range(sampled_b.num_rows):
        b_tokens.update(_record_tokens(sampled_b, attrs, i))

    shared_counts = np.zeros(table_a.num_rows, dtype=int)
    for i in range(table_a.num_rows):
        shared_counts[i] = len(_record_tokens(table_a, attrs, i) & b_tokens)
    order = np.argsort(-shared_counts, kind="stable")
    keep = [int(i) for i in order[:a_size]]
    keep.sort()
    sampled_a = table_a.take(keep, name=f"{table_a.name}_sample")
    return sampled_a, sampled_b
