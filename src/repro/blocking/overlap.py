"""Overlap blocker: keep pairs sharing at least K tokens.

Section 7 step 2 applies this to normalized award titles with a word
tokenizer and K=3. The implementation uses an inverted index over the
right table's tokens plus a *prefix filter*: a record pair can share K
tokens only if they agree on at least one of any (|tokens| - K + 1)-subset,
so each left record only probes the index with its first
``len(tokens) - K + 1`` tokens under a global token ordering. Shared-token
counts are then verified exactly.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import BlockingError
from ..table import Table
from ..table.column import is_missing
from ..text.tokenizers import Tokenizer, whitespace
from .base import Blocker
from .candidate_set import CandidateSet

Normalizer = Callable[[Any], Any]


class OverlapBlocker(Blocker):
    """Token-overlap blocker.

    Parameters
    ----------
    l_attr, r_attr:
        Blocking attributes.
    threshold:
        Minimum number of shared tokens (K >= 1).
    tokenizer:
        Token producer (set semantics applied internally).
    normalizer:
        Optional cell transform applied before tokenizing (the case study
        lower-cases and strips special characters here).
    """

    short_name = "overlap"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: int = 1,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
    ) -> None:
        if threshold < 1:
            raise BlockingError(f"overlap threshold must be >= 1, got {threshold}")
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.threshold = threshold
        self.tokenizer = tokenizer
        self.normalizer = normalizer

    def _tokens_by_id(self, table: Table, attr: str, key: str) -> dict[Any, frozenset[str]]:
        out: dict[Any, frozenset[str]] = {}
        for rid, value in zip(table[key], table[attr]):
            if is_missing(value):
                continue
            if self.normalizer is not None:
                value = self.normalizer(value)
                if is_missing(value):
                    continue
            tokens = frozenset(self.tokenizer(str(value)))
            if tokens:
                out[rid] = tokens
        return out

    def block_tables(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str, name: str = ""
    ) -> CandidateSet:
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        l_tokens = self._tokens_by_id(ltable, self.l_attr, l_key)
        r_tokens = self._tokens_by_id(rtable, self.r_attr, r_key)
        # Global token order by document frequency (rarest first) makes the
        # prefix filter probe the most selective tokens.
        doc_freq: dict[str, int] = {}
        for tokens in r_tokens.values():
            for t in tokens:
                doc_freq[t] = doc_freq.get(t, 0) + 1
        order = lambda t: (doc_freq.get(t, 0), t)  # noqa: E731 - tiny sort key

        index: dict[str, list[Any]] = {}
        for rid, tokens in r_tokens.items():
            for t in tokens:
                index.setdefault(t, []).append(rid)

        pairs = []
        k = self.threshold
        for lid, tokens in l_tokens.items():
            if len(tokens) < k:
                continue
            ordered = sorted(tokens, key=order)
            prefix = ordered[: len(ordered) - k + 1]
            seen: set[Any] = set()
            for t in prefix:
                for rid in index.get(t, ()):
                    seen.add(rid)
            for rid in seen:
                if len(tokens & r_tokens[rid]) >= k:
                    pairs.append((lid, rid))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)
