"""Overlap blocker: keep pairs sharing at least K tokens.

Section 7 step 2 applies this to normalized award titles with a word
tokenizer and K=3. The implementation uses an inverted index over the
right table's tokens plus a *prefix filter*: a record pair can share K
tokens only if they agree on at least one of any (|tokens| - K + 1)-subset,
so each left record only probes the index with its first
``len(tokens) - k + 1`` tokens under a global token ordering. Shared-token
counts are then verified exactly.

Tokenization goes through the shared :mod:`~repro.runtime.cache` (one pass
per ``(attr, tokenizer, normalizer)`` recipe per table). When the kernel
switch (:func:`~repro.similarity.kernels.kernels_enabled`) is on — the
default — the probe runs over interned token ids shipped as columnar
:class:`~repro.runtime.columnar.TokenColumn` chunks, and candidate
verification is one batch keep-mask call
(:func:`~repro.similarity.batch.overlap_at_least_batch`) per chunk;
otherwise it runs the legacy ``frozenset[str]`` loop. Both paths emit
the *same pairs in the same order*: the global token ordering
``(doc_freq, token)`` is a total order computed once per run (not per
record), the inverted-index rid lists are built in the same right-row
order, the per-record ``seen`` sets receive the same rid objects in the
same sequence, and the keep-mask filters the ordered candidate list in
place.

The probe loop is chunk-parallel over left records when the resolved
:class:`~repro.runtime.context.EngineSession` has ``workers >= 2`` (or a
shared :class:`~repro.runtime.executor.WorkerPool`) — with results
identical to the serial loop, which remains the default.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import BlockingError, IncrementalBlockingError
from ..runtime.columnar import TokenColumn
from ..runtime.context import EngineSession
from ..runtime.executor import chunk_ranges
from ..runtime.instrument import count, stage
from ..similarity import batch
from ..table import Table
from ..text.intern import id_array
from ..text.tokenizers import Tokenizer, whitespace
from .base import Blocker
from .candidate_set import CandidateSet
from .policy import BlockSizePolicy, capped_keys, resolve_policy

Normalizer = Callable[[Any], Any]


def _probe_overlap_chunk(
    l_items: list[tuple[Any, frozenset[str]]],
    r_tokens: dict[Any, frozenset[str]],
    index: dict[str, list[Any]],
    order: dict[str, int],
    k: int,
    capped: frozenset = frozenset(),
) -> list[tuple[Any, Any]]:
    """Probe the inverted index for a chunk of left records (string path).

    Module-level (and closure-free) so the chunked executor can ship it to
    worker processes; the serial path runs the very same function. *order*
    is the global token rank under ``(doc_freq, token)`` — a total order,
    so ranking sorts exactly like the tuple key did, but without
    re-deriving it per record. *capped* holds tokens whose posting lists
    exceed the blocker's size cap: dropped from the probe prefix (after
    the cut, so the cut itself is policy-independent), never from
    verification.
    """
    rank = order.__getitem__
    pairs: list[tuple[Any, Any]] = []
    for lid, tokens in l_items:
        if len(tokens) < k:
            continue
        ordered = sorted(tokens, key=rank)
        prefix = ordered[: len(ordered) - k + 1]
        if capped:
            prefix = [t for t in prefix if t not in capped]
        seen: set[Any] = set()
        for t in prefix:
            for rid in index.get(t, ()):
                seen.add(rid)
        for rid in seen:
            if len(tokens & r_tokens[rid]) >= k:
                pairs.append((lid, rid))
    return pairs


def _probe_overlap_ids_chunk(
    lids: list[Any],
    prefixes: list[Any],
    l_col: TokenColumn,
    rids: tuple[Any, ...],
    r_col: TokenColumn,
    index: dict[int, list[Any]],
    k: int,
) -> list[tuple[Any, Any]]:
    """Kernel twin of :func:`_probe_overlap_chunk` over columnar chunks.

    Workers receive whole columns — the chunk's left ids, per-record
    ``array('i')`` prefixes cut under the global order (computed once in
    the parent), and both sides' token sets as
    :class:`~repro.runtime.columnar.TokenColumn` CSR buffers — instead of
    per-record tuples of frozensets. Candidate generation walks the
    inverted index exactly like the string path; verification is one
    :func:`~repro.similarity.batch.overlap_at_least_batch` call over the
    chunk's whole candidate list. Emission order matches the string path
    because the prefix order, the index rid lists, and hence each
    ``seen`` set's insertion sequence are all identical, and the batch
    keep-mask filters the ordered candidate list in place.
    """
    l_sets = l_col.sets()
    r_map = dict(zip(rids, r_col.sets()))
    cand_pairs: list[tuple[Any, Any]] = []
    cand_a: list[Any] = []
    cand_b: list[Any] = []
    for i, lid in enumerate(lids):
        a = l_sets[i]
        seen: set[Any] = set()
        for tid in prefixes[i]:
            for rid in index.get(tid, ()):
                seen.add(rid)
        for rid in seen:
            cand_pairs.append((lid, rid))
            cand_a.append(a)
            cand_b.append(r_map[rid])
    keep = batch.overlap_at_least_batch(cand_a, cand_b, k)
    return [pair for pair, kept in zip(cand_pairs, keep) if kept]


class OverlapBlocker(Blocker):
    """Token-overlap blocker.

    Parameters
    ----------
    l_attr, r_attr:
        Blocking attributes.
    threshold:
        Minimum number of shared tokens (K >= 1).
    tokenizer:
        Token producer (set semantics applied internally).
    normalizer:
        Optional cell transform applied before tokenizing (the case study
        lower-cases and strips special characters here).
    block_size_policy:
        Optional :class:`~repro.blocking.policy.BlockSizePolicy` (or bare
        int cap): posting lists longer than the cap are skipped at probe
        time. ``None`` (default) probes everything.
    """

    short_name = "overlap"
    supports_incremental = True

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: int = 1,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
        *,
        block_size_policy: "BlockSizePolicy | int | None" = None,
    ) -> None:
        if threshold < 1:
            raise BlockingError(f"overlap threshold must be >= 1, got {threshold}")
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.threshold = threshold
        self.tokenizer = tokenizer
        self.normalizer = normalizer
        self.block_size_policy = resolve_policy(block_size_policy)

    def incremental(
        self,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        session: EngineSession | None = None,
    ) -> "Any":
        """Delta-maintained handle; see :mod:`repro.blocking.incremental`."""
        if self.block_size_policy.capped:
            raise IncrementalBlockingError(
                "incremental blocking does not support block-size caps; "
                "use an uncapped blocker for delta handles"
            )
        from .incremental import OverlapIncremental

        return OverlapIncremental(self, rtable, l_key, r_key, session=session)

    def _compute_blocking(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
    ) -> CandidateSet:
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        if session.kernels_enabled():
            pairs = self._block_ids(session, ltable, rtable, l_key, r_key)
        else:
            pairs = self._block_strings(session, ltable, rtable, l_key, r_key)
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)

    def _block_strings(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
    ) -> list[tuple[Any, Any]]:
        instrumentation = session.instrumentation
        cache = session.token_cache
        hits_before = cache.hits
        with stage(instrumentation, "tokenize"):
            l_tokens = cache.tokens_by_id(
                ltable, self.l_attr, l_key, self.tokenizer, self.normalizer
            )
            r_tokens = cache.tokens_by_id(
                rtable, self.r_attr, r_key, self.tokenizer, self.normalizer
            )
            count(instrumentation, "l_records", len(l_tokens))
            count(instrumentation, "r_records", len(r_tokens))
            count(instrumentation, "cache_hits", cache.hits - hits_before)
        # Global token order by document frequency (rarest first) makes the
        # prefix filter probe the most selective tokens. (doc_freq, token)
        # is a total order, so ranking once here and sorting records by
        # rank reproduces the per-record tuple sort exactly.
        with stage(instrumentation, "index"):
            doc_freq: dict[str, int] = {}
            for tokens in r_tokens.values():
                for t in tokens:
                    doc_freq[t] = doc_freq.get(t, 0) + 1
            index: dict[str, list[Any]] = {}
            for rid, tokens in r_tokens.items():
                for t in tokens:
                    index.setdefault(t, []).append(rid)
            left_vocab = set()
            for tokens in l_tokens.values():
                left_vocab.update(tokens)
            order = {
                t: i
                for i, t in enumerate(
                    sorted(left_vocab, key=lambda t: (doc_freq.get(t, 0), t))
                )
            }
            capped = capped_keys(doc_freq, self.block_size_policy, instrumentation)
        with stage(instrumentation, "probe"):
            l_items = list(l_tokens.items())
            ranges = chunk_ranges(len(l_items), session.workers)
            chunks = session.map_chunks(
                _probe_overlap_chunk,
                [
                    (
                        l_items[start:stop],
                        r_tokens,
                        index,
                        order,
                        self.threshold,
                        capped,
                    )
                    for start, stop in ranges
                ],
                sizes=[stop - start for start, stop in ranges],
            )
            pairs = [pair for chunk in chunks for pair in chunk]
            count(instrumentation, "pairs_out", len(pairs))
        return pairs

    def _block_ids(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
    ) -> list[tuple[Any, Any]]:
        instrumentation = session.instrumentation
        cache = session.token_cache
        hits_before = cache.hits
        k = self.threshold
        with stage(instrumentation, "tokenize"):
            l_entries = cache.token_ids_by_id(
                ltable, self.l_attr, l_key, self.tokenizer, self.normalizer
            )
            r_entries = cache.token_ids_by_id(
                rtable, self.r_attr, r_key, self.tokenizer, self.normalizer
            )
            count(instrumentation, "l_records", len(l_entries))
            count(instrumentation, "r_records", len(r_entries))
            count(instrumentation, "cache_hits", cache.hits - hits_before)
        with stage(instrumentation, "index"):
            doc_freq: dict[int, int] = {}
            for entry in r_entries.values():
                for tid in entry.sorted:
                    doc_freq[tid] = doc_freq.get(tid, 0) + 1
            index: dict[int, list[Any]] = {}
            # Outer loop in right-row order keeps every per-token rid list
            # in the same order the string path builds it.
            for rid, entry in r_entries.items():
                for tid in entry.sorted:
                    index.setdefault(tid, []).append(rid)
            token_of = cache.vocabulary.token_of
            left_vocab = {tid for entry in l_entries.values() for tid in entry.sorted}
            rank = {
                tid: i
                for i, tid in enumerate(
                    sorted(
                        left_vocab,
                        key=lambda tid: (doc_freq.get(tid, 0), token_of(tid)),
                    )
                )
            }
            capped = capped_keys(doc_freq, self.block_size_policy, instrumentation)
        with stage(instrumentation, "probe"):
            by_rank = rank.__getitem__
            lids: list[Any] = []
            prefixes: list[Any] = []
            kept_entries: list[Any] = []
            for lid, entry in l_entries.items():
                ids = entry.sorted
                if len(ids) < k:
                    continue
                ordered = sorted(ids, key=by_rank)
                prefix = ordered[: len(ordered) - k + 1]
                if capped:
                    prefix = [t for t in prefix if t not in capped]
                lids.append(lid)
                prefixes.append(id_array(prefix))
                kept_entries.append(entry)
            l_col = TokenColumn.from_entries(kept_entries)
            rids = tuple(r_entries.keys())
            r_col = TokenColumn.from_entries(r_entries.values())
            ranges = chunk_ranges(len(lids), session.workers)
            chunks = session.map_chunks(
                _probe_overlap_ids_chunk,
                [
                    (
                        lids[start:stop],
                        prefixes[start:stop],
                        l_col.slice(start, stop),
                        rids,
                        r_col,
                        index,
                        k,
                    )
                    for start, stop in ranges
                ],
                sizes=[stop - start for start, stop in ranges],
            )
            pairs = [pair for chunk in chunks for pair in chunk]
            count(instrumentation, "pairs_out", len(pairs))
        return pairs
