"""Overlap blocker: keep pairs sharing at least K tokens.

Section 7 step 2 applies this to normalized award titles with a word
tokenizer and K=3. The implementation uses an inverted index over the
right table's tokens plus a *prefix filter*: a record pair can share K
tokens only if they agree on at least one of any (|tokens| - K + 1)-subset,
so each left record only probes the index with its first
``len(tokens) - k + 1`` tokens under a global token ordering. Shared-token
counts are then verified exactly.

Tokenization goes through the shared
:mod:`~repro.runtime.cache` (one pass per ``(attr, tokenizer,
normalizer)`` recipe per table), and the probe loop is chunk-parallel over
left records when ``workers >= 2`` — with results identical to the serial
loop, which remains the default.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import BlockingError
from ..runtime.cache import get_default_cache
from ..runtime.executor import ChunkedExecutor, chunk_ranges
from ..runtime.instrument import Instrumentation, count, stage
from ..table import Table
from ..text.tokenizers import Tokenizer, whitespace
from .base import Blocker
from .candidate_set import CandidateSet

Normalizer = Callable[[Any], Any]


def _probe_overlap_chunk(
    l_items: list[tuple[Any, frozenset[str]]],
    r_tokens: dict[Any, frozenset[str]],
    index: dict[str, list[Any]],
    doc_freq: dict[str, int],
    k: int,
) -> list[tuple[Any, Any]]:
    """Probe the inverted index for a chunk of left records.

    Module-level (and closure-free) so the chunked executor can ship it to
    worker processes; the serial path runs the very same function.
    """
    pairs: list[tuple[Any, Any]] = []
    for lid, tokens in l_items:
        if len(tokens) < k:
            continue
        ordered = sorted(tokens, key=lambda t: (doc_freq.get(t, 0), t))
        prefix = ordered[: len(ordered) - k + 1]
        seen: set[Any] = set()
        for t in prefix:
            for rid in index.get(t, ()):
                seen.add(rid)
        for rid in seen:
            if len(tokens & r_tokens[rid]) >= k:
                pairs.append((lid, rid))
    return pairs


class OverlapBlocker(Blocker):
    """Token-overlap blocker.

    Parameters
    ----------
    l_attr, r_attr:
        Blocking attributes.
    threshold:
        Minimum number of shared tokens (K >= 1).
    tokenizer:
        Token producer (set semantics applied internally).
    normalizer:
        Optional cell transform applied before tokenizing (the case study
        lower-cases and strips special characters here).
    """

    short_name = "overlap"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: int = 1,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
    ) -> None:
        if threshold < 1:
            raise BlockingError(f"overlap threshold must be >= 1, got {threshold}")
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.threshold = threshold
        self.tokenizer = tokenizer
        self.normalizer = normalizer

    def _tokens_by_id(self, table: Table, attr: str, key: str) -> dict[Any, frozenset[str]]:
        return get_default_cache().tokens_by_id(
            table, attr, key, self.tokenizer, self.normalizer
        )

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str = "",
        *,
        workers: int = 1,
        instrumentation: Instrumentation | None = None,
        store: Any | None = None,
    ) -> CandidateSet:
        if store is not None:
            return self._memoized(
                store, ltable, rtable, l_key, r_key, name, workers, instrumentation
            )
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        cache = get_default_cache()
        hits_before = cache.hits
        with stage(instrumentation, "tokenize"):
            l_tokens = self._tokens_by_id(ltable, self.l_attr, l_key)
            r_tokens = self._tokens_by_id(rtable, self.r_attr, r_key)
            count(instrumentation, "l_records", len(l_tokens))
            count(instrumentation, "r_records", len(r_tokens))
            count(instrumentation, "cache_hits", cache.hits - hits_before)
        # Global token order by document frequency (rarest first) makes the
        # prefix filter probe the most selective tokens.
        with stage(instrumentation, "index"):
            doc_freq: dict[str, int] = {}
            for tokens in r_tokens.values():
                for t in tokens:
                    doc_freq[t] = doc_freq.get(t, 0) + 1
            index: dict[str, list[Any]] = {}
            for rid, tokens in r_tokens.items():
                for t in tokens:
                    index.setdefault(t, []).append(rid)
        with stage(instrumentation, "probe"):
            l_items = list(l_tokens.items())
            ranges = chunk_ranges(len(l_items), workers)
            executor = ChunkedExecutor(workers=workers, instrumentation=instrumentation)
            chunks = executor.map(
                _probe_overlap_chunk,
                [
                    (l_items[start:stop], r_tokens, index, doc_freq, self.threshold)
                    for start, stop in ranges
                ],
                sizes=[stop - start for start, stop in ranges],
            )
            pairs = [pair for chunk in chunks for pair in chunk]
            count(instrumentation, "pairs_out", len(pairs))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)
