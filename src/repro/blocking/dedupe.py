"""Single-table deduplication support.

The paper's Section 2 lists "matching tuples within a single table" among
the common EM scenarios. Any two-table blocker works for dedupe by
blocking a table against itself; this module handles the bookkeeping that
self-joins need — dropping self-pairs and symmetric duplicates — and turns
pairwise duplicate predictions into clusters via connected components.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..clustering.unionfind import UnionFind
from ..runtime.context import EngineSession, resolve_session
from ..table import Table
from .base import Blocker
from .candidate_set import CandidateSet, Pair


def dedupe_candidates(
    table: Table,
    key: str,
    blocker: Blocker,
    name: str = "dedupe",
    *,
    session: EngineSession | None = None,
) -> CandidateSet:
    """Block *table* against itself, canonically.

    Self-pairs (a, a) are dropped and each unordered pair appears once,
    oriented so the smaller key (by string order) is on the left. The
    blocking pass runs under *session* (or the ambient session when
    ``None``), like every stage operator.
    """
    resolved = resolve_session(session)
    raw = blocker.block_tables(table, table, key, key, session=resolved)
    seen: set[tuple[Any, Any]] = set()
    pairs: list[Pair] = []
    for a, b in raw:
        if a == b:
            continue
        ordered = (a, b) if str(a) <= str(b) else (b, a)
        if ordered not in seen:
            seen.add(ordered)
            pairs.append(ordered)
    return CandidateSet(table, table, key, key, pairs, name=name)


def duplicate_clusters(
    record_ids: Iterable[Any], duplicate_pairs: Iterable[Pair]
) -> list[list[Any]]:
    """Group records into duplicate clusters (connected components).

    Returns only clusters with two or more members — singletons are not
    duplicates of anything.
    """
    uf = UnionFind(record_ids)
    for a, b in duplicate_pairs:
        uf.union(a, b)
    return [group for group in uf.groups() if len(group) > 1]


def canonical_records(
    table: Table, key: str, duplicate_pairs: Iterable[Pair], name: str = ""
) -> Table:
    """Collapse duplicate clusters, keeping each cluster's first record.

    "First" is the record appearing earliest in the table, which makes the
    operation deterministic and lets callers control survivorship by
    pre-sorting.
    """
    ids = table[key]
    clusters = duplicate_clusters(ids, duplicate_pairs)
    drop: set[Any] = set()
    position = {rid: i for i, rid in enumerate(ids)}
    for cluster in clusters:
        ordered = sorted(cluster, key=lambda rid: position[rid])
        drop.update(ordered[1:])
    keep = [i for i, rid in enumerate(ids) if rid not in drop]
    return table.take(keep, name=name or f"{table.name}_deduped")
