"""Combining candidate sets from multiple blockers.

Section 7 step 4 unions the outputs of three blocking schemes (AE on the
award-number suffix, overlap K=3 on titles, overlap-coefficient 0.7 on
titles) into the consolidated candidate set C. :func:`union_candidates`
implements that (with de-duplication), and :func:`overlap_report` computes
the footnote-3 style breakdown (|C2∩C3|, |C2−C3|, |C3−C2|) that justified
keeping both title blockers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import BlockingError
from .candidate_set import CandidateSet


def _fresh_copy(candidates: CandidateSet, name: str) -> CandidateSet:
    """A new candidate set with the same pairs — never the caller's object,
    whose ``name`` (and pair list) must stay untouched by combining."""
    return CandidateSet(
        candidates.ltable, candidates.rtable, candidates.l_key, candidates.r_key,
        candidates.pairs, name=name,
    )


def union_candidates(candidate_sets: Sequence[CandidateSet], name: str = "") -> CandidateSet:
    """Union any number of candidate sets over the same base tables.

    Always returns a fresh :class:`CandidateSet` (even for a single input),
    leaving every input set unmodified.
    """
    if not candidate_sets:
        raise BlockingError("union needs at least one candidate set")
    result = _fresh_copy(candidate_sets[0], name or "union")
    for other in candidate_sets[1:]:
        result = result.union(other, name=name or "union")
    return result


def intersect_candidates(candidate_sets: Sequence[CandidateSet], name: str = "") -> CandidateSet:
    """Intersection of any number of candidate sets.

    Like :func:`union_candidates`, never aliases or renames an input set.
    """
    if not candidate_sets:
        raise BlockingError("intersection needs at least one candidate set")
    result = _fresh_copy(candidate_sets[0], name or "intersection")
    for other in candidate_sets[1:]:
        result = result.intersection(other, name=name or "intersection")
    return result


@dataclass(frozen=True)
class OverlapReport:
    """Set-relationship statistics for two candidate sets."""

    left_name: str
    right_name: str
    left_size: int
    right_size: int
    common: int
    left_only: int
    right_only: int

    def __str__(self) -> str:
        return (
            f"|{self.left_name}|={self.left_size}, |{self.right_name}|={self.right_size}, "
            f"|∩|={self.common}, |{self.left_name}−{self.right_name}|={self.left_only}, "
            f"|{self.right_name}−{self.left_name}|={self.right_only}"
        )


def overlap_report(a: CandidateSet, b: CandidateSet) -> OverlapReport:
    """Compute the paper's footnote-3 breakdown for two candidate sets."""
    sa, sb = a.pair_set(), b.pair_set()
    return OverlapReport(
        left_name=a.name or "A",
        right_name=b.name or "B",
        left_size=len(sa),
        right_size=len(sb),
        common=len(sa & sb),
        left_only=len(sa - sb),
        right_only=len(sb - sa),
    )
