"""Locality-sensitive-hashing blockers: MinHash-LSH and SimHash.

The overlap family is exact — every pair sharing enough tokens is found —
but its cost tracks posting-list lengths, and at million-row scale even
capped posting lists generate candidates quadratically in block size. The
LSH family trades exactness for *hash-bucket* candidate generation: two
records become a candidate only when a randomized signature collides, so
the candidate count tracks the number of genuinely similar pairs instead
of the token-frequency distribution.

Both blockers hash **interned token ids** (the PR-4 vocabulary substrate)
with splitmix64 — from scratch, no library dependencies — vectorized over
the :class:`~repro.runtime.columnar.TokenColumn` CSR buffers:

* :class:`MinHashLSHBlocker` — ``bands × rows`` MinHash permutations
  (``min`` over ``splitmix64(tid ^ perm_salt)`` per record), banded into
  bucket keys. Colliding pairs are verified with exact Jaccard
  (:func:`repro.similarity.batch.jaccard_batch`) against ``threshold``.
  With ``b`` bands of ``r`` rows, a pair of Jaccard ``s`` becomes a
  candidate with probability ``1 - (1 - s^r)^b`` — the S-curve to tune:
  the default ``32 × 2`` puts the steep part near ``s ≈ 0.18`` and
  catches ``s = 0.33`` pairs with p ≈ 0.975.
* :class:`SimHashBlocker` — one 64-bit simhash per record (sign of the
  per-bit ±1 vote sum over token hashes), cut into ``max_hamming + 1``
  bit-ranges: by pigeonhole, any pair within the Hamming radius collides
  on at least one complete range. Exact Hamming distance (xor +
  popcount) verifies every collision, so the blocker is *exact over the
  signatures* — approximation enters only through simhashing itself.

Determinism: signatures are pure functions of ``(token ids, seed)``, and
candidates are emitted per left record **in left-row order**, buckets
probed in band order, bucket members in right-row order, deduplicated by
an insertion-ordered dict — identical output every run, serial or not.
(The overlap family's set-iteration emission contract does not apply
here; these blockers define their own, simpler order.)

Size caps (:class:`~repro.blocking.policy.BlockSizePolicy`) apply to LSH
buckets exactly as to posting lists: oversized buckets are skipped at
probe time and tallied as ``capped_blocks`` / ``capped_postings``.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..errors import BlockingError
from ..runtime.columnar import TokenColumn
from ..runtime.context import EngineSession
from ..runtime.instrument import count, stage
from ..similarity import batch
from ..table import Table
from ..text.tokenizers import Tokenizer, whitespace
from .base import Blocker
from .candidate_set import CandidateSet
from .policy import BlockSizePolicy, capped_keys, resolve_policy
from .sharded import _splitmix64, _splitmix64_np

Normalizer = Callable[[Any], Any]

#: Rows hashed per vectorized signature pass — bounds the temporaries to
#: a few hundred MB at the widest default configuration.
_SIG_CHUNK = 65536


def _csr_arrays(entries: "list[Any]") -> tuple["np.ndarray", "np.ndarray"]:
    """(offsets, flat ids) for a list of interned-token entries."""
    col = TokenColumn.from_entries(entries)
    offsets, data, _ = col.csr()
    return (
        np.frombuffer(offsets, dtype=np.int32).astype(np.int64),
        np.frombuffer(data, dtype=np.int32).astype(np.uint64)
        if len(data)
        else np.empty(0, dtype=np.uint64),
    )


def _perm_salts(seed: int, num_perms: int) -> "np.ndarray":
    """One splitmix64-derived salt per MinHash permutation."""
    base = _splitmix64(seed & ((1 << 64) - 1))
    salts = np.empty(num_perms, dtype=np.uint64)
    x = np.uint64(base)
    for i in range(num_perms):
        with np.errstate(over="ignore"):
            x = _splitmix64_np(x + np.uint64(0x9E3779B97F4A7C15))
        salts[i] = x
    return salts


def _minhash_signatures(
    offsets: "np.ndarray", flat: "np.ndarray", salts: "np.ndarray"
) -> "np.ndarray":
    """``(n_rows, n_perms)`` uint64 MinHash matrix over CSR token ids.

    Rows are processed in :data:`_SIG_CHUNK` batches; each permutation is
    one vectorized splitmix64 pass plus a ``minimum.reduceat``. Empty
    rows never reach here (the token cache drops them).
    """
    n = len(offsets) - 1
    sig = np.empty((n, len(salts)), dtype=np.uint64)
    for start in range(0, n, _SIG_CHUNK):
        stop = min(start + _SIG_CHUNK, n)
        lo, hi = offsets[start], offsets[stop]
        chunk = flat[lo:hi]
        starts = (offsets[start : stop + 1] - lo).astype(np.int64)
        with np.errstate(over="ignore"):
            for p, salt in enumerate(salts):
                hashed = _splitmix64_np(chunk ^ salt)
                sig[start:stop, p] = np.minimum.reduceat(hashed, starts[:-1])
    return sig


def _band_keys(sig: "np.ndarray", bands: int, rows: int) -> "np.ndarray":
    """``(n_rows, bands)`` uint64 bucket keys by folding each band's rows."""
    n = sig.shape[0]
    keys = np.empty((n, bands), dtype=np.uint64)
    with np.errstate(over="ignore"):
        for b in range(bands):
            acc = np.full(n, _splitmix64(b + 0x5EED), dtype=np.uint64)
            for r in range(rows):
                acc = _splitmix64_np(acc ^ sig[:, b * rows + r])
            keys[:, b] = acc
    return keys


def _simhash_signatures(
    offsets: "np.ndarray", flat: "np.ndarray", seed: int
) -> "np.ndarray":
    """One 64-bit simhash per CSR row: sign of the per-bit ±1 vote sums."""
    n = len(offsets) - 1
    out = np.empty(n, dtype=np.uint64)
    salt = np.uint64(_splitmix64(seed & ((1 << 64) - 1)) | 1)
    for start in range(0, n, _SIG_CHUNK):
        stop = min(start + _SIG_CHUNK, n)
        lo, hi = offsets[start], offsets[stop]
        with np.errstate(over="ignore"):
            hashed = _splitmix64_np(flat[lo:hi] ^ salt)
        # (nnz, 64) sign matrix: +1 where the hash bit is set, -1 where
        # clear; reduceat sums votes per row in one pass.
        bits = (
            np.unpackbits(hashed.view(np.uint8).reshape(-1, 8), axis=1, bitorder="little")
            .astype(np.int32)
        )
        votes = np.add.reduceat(bits * 2 - 1, (offsets[start:stop] - lo).astype(np.int64), axis=0)
        packed = np.packbits((votes > 0).astype(np.uint8), axis=1, bitorder="little")
        out[start:stop] = packed.view(np.uint64).reshape(-1)
    return out


def _hamming64(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    return np.bitwise_count(a ^ b)


class _LSHBlockerBase(Blocker):
    """Shared skeleton: tokenize → signatures → buckets → probe → verify."""

    supports_incremental = False

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        *,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
        seed: int = 0,
        block_size_policy: "BlockSizePolicy | int | None" = None,
    ) -> None:
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.tokenizer = tokenizer
        self.normalizer = normalizer
        self.seed = seed
        self.block_size_policy = resolve_policy(block_size_policy)

    def _compute_blocking(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
    ) -> CandidateSet:
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        instrumentation = session.instrumentation
        cache = session.token_cache
        hits_before = cache.hits
        with stage(instrumentation, "tokenize"):
            l_entries = cache.token_ids_by_id(
                ltable, self.l_attr, l_key, self.tokenizer, self.normalizer
            )
            r_entries = cache.token_ids_by_id(
                rtable, self.r_attr, r_key, self.tokenizer, self.normalizer
            )
            count(instrumentation, "l_records", len(l_entries))
            count(instrumentation, "r_records", len(r_entries))
            count(instrumentation, "cache_hits", cache.hits - hits_before)
        lids = list(l_entries.keys())
        rids = list(r_entries.keys())
        if not lids or not rids:
            count(instrumentation, "pairs_out", 0)
            return CandidateSet(
                ltable, rtable, l_key, r_key, [], name=name or self.short_name
            )
        l_off, l_flat = _csr_arrays(list(l_entries.values()))
        r_off, r_flat = _csr_arrays(list(r_entries.values()))
        with stage(instrumentation, "signatures"):
            l_keys = self._bucket_keys(l_off, l_flat)
            r_keys = self._bucket_keys(r_off, r_flat)
        with stage(instrumentation, "index"):
            bands = l_keys.shape[1]
            buckets: list[dict[int, list[int]]] = []
            sizes: dict[Any, int] = {}
            for b in range(bands):
                bucket: dict[int, list[int]] = {}
                col = r_keys[:, b]
                for row, key in enumerate(col.tolist()):
                    lst = bucket.get(key)
                    if lst is None:
                        lst = bucket[key] = []
                    lst.append(row)
                buckets.append(bucket)
                for key, lst in bucket.items():
                    sizes[(b, key)] = len(lst)
            capped = capped_keys(sizes, self.block_size_policy, instrumentation)
        with stage(instrumentation, "probe"):
            group_left: list[int] = []
            group_len: list[int] = []
            cand_rows: list[int] = []
            l_key_list = l_keys.tolist()
            for i in range(len(lids)):
                row_keys = l_key_list[i]
                seen: dict[int, None] = {}
                for b in range(bands):
                    key = row_keys[b]
                    if capped and (b, key) in capped:
                        continue
                    for row in buckets[b].get(key, ()):
                        seen.setdefault(row)
                if seen:
                    group_left.append(i)
                    group_len.append(len(seen))
                    cand_rows.extend(seen)
            count(instrumentation, "candidates", len(cand_rows))
        with stage(instrumentation, "verify"):
            keep = self._verify(
                l_off, l_flat, r_off, r_flat, group_left, group_len, cand_rows
            )
            pairs: list[tuple[Any, Any]] = []
            pos = 0
            for g, i in enumerate(group_left):
                lid = lids[i]
                for _ in range(group_len[g]):
                    if keep[pos]:
                        pairs.append((lid, rids[cand_rows[pos]]))
                    pos += 1
            count(instrumentation, "pairs_out", len(pairs))
        return CandidateSet(
            ltable, rtable, l_key, r_key, pairs, name=name or self.short_name
        )

    def _bucket_keys(self, offsets: "np.ndarray", flat: "np.ndarray") -> "np.ndarray":
        """``(n_rows, bands)`` uint64 bucket keys for one side."""
        raise NotImplementedError

    def _verify(
        self,
        l_off: "np.ndarray",
        l_flat: "np.ndarray",
        r_off: "np.ndarray",
        r_flat: "np.ndarray",
        group_left: list[int],
        group_len: list[int],
        cand_rows: list[int],
    ) -> "np.ndarray | bytearray":
        """Keep-mask over the flat candidate list."""
        raise NotImplementedError

    def _token_sets(
        self,
        l_off: "np.ndarray",
        l_flat: "np.ndarray",
        r_off: "np.ndarray",
        r_flat: "np.ndarray",
        group_left: list[int],
        group_len: list[int],
        cand_rows: list[int],
    ) -> tuple[list[frozenset], list[frozenset]]:
        """Aligned (left, right) frozenset columns for batch verification."""
        l_ids = l_flat.astype(np.int64)
        r_ids = r_flat.astype(np.int64)
        l_sets = [
            frozenset(l_ids[l_off[i] : l_off[i + 1]].tolist())
            for i in range(len(l_off) - 1)
        ]
        r_sets = [
            frozenset(r_ids[r_off[i] : r_off[i + 1]].tolist())
            for i in range(len(r_off) - 1)
        ]
        col_a: list[frozenset] = []
        pos = 0
        for g, i in enumerate(group_left):
            col_a.extend([l_sets[i]] * group_len[g])
            pos += group_len[g]
        col_b = [r_sets[row] for row in cand_rows]
        return col_a, col_b


class MinHashLSHBlocker(_LSHBlockerBase):
    """MinHash-LSH blocker with exact-Jaccard verification.

    Parameters
    ----------
    l_attr, r_attr:
        Blocking attributes (tokenized like the overlap family).
    threshold:
        Jaccard floor candidates must reach to survive verification.
    bands, rows:
        Banding configuration; ``bands * rows`` permutations are hashed.
        More bands → higher recall and more candidates; more rows per
        band → sharper S-curve. Defaults (32 × 2) target thresholds
        around 0.3.
    seed:
        Permutation seed — fixed by default so runs are reproducible.
    block_size_policy:
        Optional bucket-size cap (see :mod:`repro.blocking.policy`).
    """

    short_name = "minhash_lsh"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: float = 0.3,
        *,
        bands: int = 32,
        rows: int = 2,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
        seed: int = 0,
        block_size_policy: "BlockSizePolicy | int | None" = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise BlockingError(
                f"minhash threshold must be in (0, 1], got {threshold}"
            )
        if bands < 1 or rows < 1:
            raise BlockingError(
                f"bands and rows must be >= 1, got bands={bands} rows={rows}"
            )
        super().__init__(
            l_attr,
            r_attr,
            tokenizer=tokenizer,
            normalizer=normalizer,
            seed=seed,
            block_size_policy=block_size_policy,
        )
        self.threshold = threshold
        self.bands = bands
        self.rows = rows

    def _bucket_keys(self, offsets, flat):
        salts = _perm_salts(self.seed, self.bands * self.rows)
        sig = _minhash_signatures(offsets, flat, salts)
        return _band_keys(sig, self.bands, self.rows)

    def _verify(self, l_off, l_flat, r_off, r_flat, group_left, group_len, cand_rows):
        col_a, col_b = self._token_sets(
            l_off, l_flat, r_off, r_flat, group_left, group_len, cand_rows
        )
        sims = batch.jaccard_batch(col_a, col_b)
        eps = self.threshold - 1e-12
        return bytearray(1 if s >= eps else 0 for s in sims)


class SimHashBlocker(_LSHBlockerBase):
    """SimHash blocker: 64-bit signatures, Hamming-radius candidates.

    Parameters
    ----------
    max_hamming:
        Maximum Hamming distance (0..16) between signatures for a pair to
        survive. The signature is cut into ``max_hamming + 1`` bit-ranges
        for bucketing (pigeonhole guarantees no in-radius pair is
        missed); every collision is verified with an exact xor+popcount.
    """

    short_name = "simhash"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        max_hamming: int = 3,
        *,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
        seed: int = 0,
        block_size_policy: "BlockSizePolicy | int | None" = None,
    ) -> None:
        if not 0 <= max_hamming <= 16:
            raise BlockingError(
                f"max_hamming must be in [0, 16], got {max_hamming}"
            )
        super().__init__(
            l_attr,
            r_attr,
            tokenizer=tokenizer,
            normalizer=normalizer,
            seed=seed,
            block_size_policy=block_size_policy,
        )
        self.max_hamming = max_hamming
        self._l_sig: "np.ndarray | None" = None
        self._r_sig: "np.ndarray | None" = None

    def _bucket_keys(self, offsets, flat):
        sig = _simhash_signatures(offsets, flat, self.seed)
        # Stash the raw signatures for verification; left is computed
        # first, right second (the skeleton's call order).
        if self._l_sig is None:
            self._l_sig = sig
        else:
            self._r_sig = sig
        chunks = self.max_hamming + 1
        bounds = np.linspace(0, 64, chunks + 1).astype(np.uint64)
        keys = np.empty((len(sig), chunks), dtype=np.uint64)
        with np.errstate(over="ignore"):
            for c in range(chunks):
                lo, hi = int(bounds[c]), int(bounds[c + 1])
                width = hi - lo
                mask = (
                    np.uint64((1 << width) - 1)
                    if width < 64
                    else np.uint64(0xFFFFFFFFFFFFFFFF)
                )
                piece = (sig >> np.uint64(lo)) & mask
                # Salt with the chunk id so identical bit patterns in
                # different ranges never share a bucket.
                keys[:, c] = _splitmix64_np(piece ^ np.uint64(_splitmix64(c + 0xC0FFEE)))
        return keys

    def _compute_blocking(self, session, ltable, rtable, l_key, r_key, name):
        self._l_sig = None
        self._r_sig = None
        try:
            return super()._compute_blocking(
                session, ltable, rtable, l_key, r_key, name
            )
        finally:
            self._l_sig = None
            self._r_sig = None

    def _verify(self, l_off, l_flat, r_off, r_flat, group_left, group_len, cand_rows):
        if self._l_sig is None or self._r_sig is None:
            return bytearray(len(cand_rows))
        left_idx = np.repeat(
            np.asarray(group_left, dtype=np.int64),
            np.asarray(group_len, dtype=np.int64),
        )
        rows = np.asarray(cand_rows, dtype=np.int64)
        dist = _hamming64(self._l_sig[left_idx], self._r_sig[rows])
        return (dist <= self.max_hamming).astype(np.uint8)
