"""Token-hash-range sharded blocking over the persistent worker pool.

The batch overlap blockers build one inverted index in the parent process
and ship the *whole* index to every worker chunk. That is fine at
case-study scale and fatal at a million rows: the posting dict dominates
RSS, and pickling it per chunk dominates wall clock. This module turns the
layout inside out — **shard the postings, not the records**:

* the token-id space is partitioned into ``shards`` disjoint ranges by a
  64-bit token hash (:func:`token_shard`; splitmix64, from scratch);
* each worker receives only *its* range's slice of the probe positions and
  posting entries — five integer arrays, pre-partitioned in the parent
  with one vectorized pass over the
  :class:`~repro.runtime.columnar.TokenColumn` CSR buffers — so the bytes
  shipped scale with the shard's share of the data (nothing is duplicated
  across shards);
* the worker builds its posting shard locally (the dict never crosses the
  wire), probes its positions, and returns its raw intersection hits as
  flat arrays;
* the parent merges shard hits back into ``block_tables``'s exact
  emission order — claiming each candidate at its globally first hitting
  prefix position, then verifying claims with one batch keep-mask kernel
  call over the parent's zero-copy token columns.

Bit-identity with the unsharded path is a hard contract, asserted
property-style in ``tests/test_sharded_blocking.py``. Three invariants
carry it:

1. **Same candidates.** A token's full posting list lives in exactly one
   shard, so probing every owned position touches the same (token, row)
   pairs the single index would; walking the merged hit groups in global
   ``(record, position)`` order reproduces the first-hit structure of
   the serial ``seen``-set build (later cross-shard re-hits of a claimed
   row are dropped as duplicates), and size caps
   (:class:`~repro.blocking.policy.BlockSizePolicy`) are applied to
   complete posting lists in the parent — before the split — so both
   paths skip identical blocks.
2. **Same order.** The unsharded path emits each left record's pairs in
   the *iteration order of its ``seen`` set*, which is a function of the
   distinct-insertion sequence (rid objects inserted at first hit, probe
   positions in prefix order, posting lists in right-row order) —
   duplicate ``add`` calls are no-ops for a set's internals. The merge
   replays exactly that distinct-insertion sequence into a fresh set per
   record, so the rebuilt set iterates identically.
3. **Same verification.** The keep-mask kernels are per-element, so
   verifying the merged claim list in the parent equals the unsharded
   path's per-chunk batch calls.

The serial fallback is the same worker function run inline by
``session.map_chunks`` — bit-identical by construction, not by test.

When the session's kernel switch is off the sharded classes defer to
their parents' string path (sharding is an interned-id layout; the
legacy ``frozenset[str]`` loop has nothing to shard), which is itself
bit-identical to the kernel path by the PR-6 contract.
"""

from __future__ import annotations

from array import array
from typing import Any

import numpy as np

from ..errors import BlockingError
from ..runtime.columnar import TokenColumn
from ..runtime.context import EngineSession
from ..runtime.instrument import count, stage
from ..similarity import batch
from ..text.intern import ID_TYPECODE
from .overlap import OverlapBlocker
from .overlap_coefficient import OverlapCoefficientBlocker
from .policy import resolve_policy

_MASK64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3

#: Default shard count — sized for the 4-worker pool the benchmarks use
#: (2 shards per worker keeps the pool busy when ranges are skewed).
DEFAULT_SHARDS = 8

MAX_SHARDS = 64


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer (public-domain constants), pure Python."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _splitmix64_np(x: "np.ndarray") -> "np.ndarray":
    """Vectorized :func:`_splitmix64` over a ``uint64`` array."""
    x = (x + np.uint64(0x9E3779B97F4A7C15))
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return x ^ (x >> np.uint64(31))


def hash64(token: Any) -> int:
    """A stable 64-bit hash for shard assignment.

    Interned token ids go through splitmix64; strings through FNV-1a over
    their UTF-8 bytes (so :meth:`PostingIndex.shard_of` gives the same
    ranges for string-keyed indexes across processes — unlike builtin
    ``hash``, this does not depend on ``PYTHONHASHSEED``). Shard
    assignment only decides *where* a posting list lives, never what is
    emitted, so the two domains hashing differently is harmless.
    """
    if isinstance(token, int) and not isinstance(token, bool):
        return _splitmix64(token & _MASK64)
    data = token.encode("utf-8") if isinstance(token, str) else repr(token).encode()
    h = _FNV_OFFSET
    for b in data:
        h = ((h ^ b) * _FNV_PRIME) & _MASK64
    return h


def token_shard(token: Any, shards: int) -> int:
    """The shard (hash range) owning *token*, in ``[0, shards)``."""
    if shards <= 1:
        return 0
    return hash64(token) % shards


def _owner_table(max_id: int, shards: int) -> "np.ndarray":
    """``owner[tid] == token_shard(tid, shards)`` for every id ``<= max_id``.

    One vectorized splitmix64 pass over the dense id space; token ids are
    small dense ints so the table is tiny relative to the CSR buffers.
    """
    ids = np.arange(max_id + 1, dtype=np.uint64)
    with np.errstate(over="ignore"):
        hashed = _splitmix64_np(ids)
    return (hashed % np.uint64(shards)).astype(np.uint8)


def _as_id_array(values: "np.ndarray") -> "array[int]":
    """A numpy int array as the compact ``array('i')`` wire format."""
    out = array(ID_TYPECODE)
    out.frombytes(np.ascontiguousarray(values, dtype=np.int32).tobytes())
    return out


def _np_i32(buf: "array[int]") -> "np.ndarray":
    """Zero-copy ``int32`` view of an ``array('i')`` (empty-safe)."""
    if len(buf) == 0:
        return np.empty(0, dtype=np.int32)
    return np.frombuffer(buf, dtype=np.int32)


def _shard_probe(
    probe_rec: "array[int]",
    probe_pos: "array[int]",
    probe_tid: "array[int]",
    post_row: "array[int]",
    post_tid: "array[int]",
) -> tuple:
    """One shard's worth of probing (module-level: runs in workers).

    Builds this hash range's posting shard from its pre-partitioned
    ``(row, tid)`` slice of the right column's CSR data and probes the
    owned probe positions in ``(record, position)`` order, emitting each
    hit row at its first hitting position *within this shard*
    (``local_seen``). Cross-shard first-hit resolution and candidate
    verification both happen in the parent's merge — the worker needs
    nothing but these five partitioned integer arrays, so the payload
    crossing the wire scales with the shard's share of the data instead
    of duplicating the token columns into every shard.

    Returns flat arrays only: ``(group_rec, group_pos, group_len, hits)``.
    """
    postings: dict[int, list[int]] = {}
    for row, tid in zip(post_row, post_tid):
        lst = postings.get(tid)
        if lst is None:
            lst = postings[tid] = []
        lst.append(row)
    group_rec = array(ID_TYPECODE)
    group_pos = array(ID_TYPECODE)
    group_len = array(ID_TYPECODE)
    hits = array(ID_TYPECODE)
    current_rec = -1
    local_seen: set[int] = set()
    for rec, pos, tid in zip(probe_rec, probe_pos, probe_tid):
        plist = postings.get(tid)
        if not plist:
            continue
        if rec != current_rec:
            current_rec = rec
            local_seen = set()
        emitted = 0
        for row in plist:
            if row in local_seen:
                continue
            local_seen.add(row)
            hits.append(row)
            emitted += 1
        if emitted:
            group_rec.append(rec)
            group_pos.append(pos)
            group_len.append(emitted)
    return group_rec, group_pos, group_len, hits


def _merge_shard_deltas(
    results: list[tuple],
    lids: list[Any],
    rids: tuple[Any, ...],
    l_col: TokenColumn,
    r_col: TokenColumn,
    verify_kind: str,
    verify_param: Any,
) -> list[tuple[Any, Any]]:
    """Merge shard hit-deltas into ``block_tables``'s emission order.

    Groups — one per probed ``(record, position)`` with hits, unique
    across shards because every position has exactly one owner — are
    sorted globally by ``(record, position)``; walking them in that order
    claims each right row at its globally-first hitting position (a row
    hit again at a later position owned by another shard is a duplicate
    and is dropped here). The claimed candidates are verified with one
    batch keep-mask call over the parent's zero-copy token columns, and
    each record's claimed rids are re-inserted into a fresh set in claim
    order. That replays the unsharded ``seen`` set's distinct-insertion
    sequence exactly (duplicate ``add`` calls are no-ops there too), so
    iterating the rebuilt set emits the same pairs in the same order.
    """
    rec_parts = [np.asarray(_np_i32(res[0])) for res in results]
    pos_parts = [np.asarray(_np_i32(res[1])) for res in results]
    if not rec_parts or not any(len(p) for p in rec_parts):
        return []
    src_parts = [
        np.full(len(part), s, dtype=np.int32) for s, part in enumerate(rec_parts)
    ]
    start_parts = []
    for res in results:
        lens = _np_i32(res[2]).astype(np.int64)
        starts = np.zeros(len(lens), dtype=np.int64)
        if len(lens) > 1:
            np.cumsum(lens[:-1], out=starts[1:])
        start_parts.append(starts)
    all_rec = np.concatenate(rec_parts)
    all_pos = np.concatenate(pos_parts)
    all_len = np.concatenate([_np_i32(res[2]) for res in results])
    all_src = np.concatenate(src_parts)
    all_start = np.concatenate(start_parts)
    order = np.lexsort((all_pos, all_rec))

    rec_rows: list[tuple[int, list[int]]] = []
    current = -1
    claimed: set[int] = set()
    rows: list[int] = []
    for g in order:
        rec = int(all_rec[g])
        if rec != current:
            current = rec
            claimed = set()
            rows = []
            rec_rows.append((rec, rows))
        hits_s = results[int(all_src[g])][3]
        start = int(all_start[g])
        for off in range(start, start + int(all_len[g])):
            row = hits_s[off]
            if row in claimed:
                continue
            claimed.add(row)
            rows.append(row)

    l_sets = l_col.sets()
    r_sets = r_col.sets()
    cand_a: list[Any] = []
    cand_b: list[Any] = []
    for rec, rows in rec_rows:
        a = l_sets[rec]
        for row in rows:
            cand_a.append(a)
            cand_b.append(r_sets[row])
    if verify_kind == "overlap":
        keep = batch.overlap_at_least_batch(cand_a, cand_b, verify_param)
    else:
        keep = batch.overlap_coefficient_at_least_batch(cand_a, cand_b, verify_param)

    pairs: list[tuple[Any, Any]] = []
    i = 0
    for rec, rows in rec_rows:
        lid = lids[rec]
        seen: set[Any] = set()
        flags: dict[Any, bool] = {}
        for row in rows:
            rid = rids[row]
            seen.add(rid)
            flags[rid] = bool(keep[i])
            i += 1
        for rid in seen:
            if flags[rid]:
                pairs.append((lid, rid))
    return pairs


class _ShardedTokenBlocker:
    """Mixin carrying the sharded id-path driver (both token blockers)."""

    shards: int

    def _validate_shards(self, shards: int) -> int:
        if not 1 <= shards <= MAX_SHARDS:
            raise BlockingError(
                f"shards must be in [1, {MAX_SHARDS}], got {shards}"
            )
        return shards

    def _sharded_block_ids(
        self,
        session: EngineSession,
        ltable: Any,
        rtable: Any,
        l_key: str,
        r_key: str,
        verify_kind: str,
        verify_param: Any,
    ) -> list[tuple[Any, Any]]:
        instrumentation = session.instrumentation
        cache = session.token_cache
        hits_before = cache.hits
        policy = resolve_policy(getattr(self, "block_size_policy", None))
        with stage(instrumentation, "tokenize"):
            l_entries = cache.token_ids_by_id(
                ltable, self.l_attr, l_key, self.tokenizer, self.normalizer
            )
            r_entries = cache.token_ids_by_id(
                rtable, self.r_attr, r_key, self.tokenizer, self.normalizer
            )
            count(instrumentation, "l_records", len(l_entries))
            count(instrumentation, "r_records", len(r_entries))
            count(instrumentation, "cache_hits", cache.hits - hits_before)
        with stage(instrumentation, "index"):
            rids = tuple(r_entries.keys())
            r_col = TokenColumn.from_entries(r_entries.values())
            r_offsets, r_data, _ = r_col.csr()
            r_flat = _np_i32(r_data)
            max_tid = int(r_flat.max()) if len(r_flat) else -1
            # Exact doc-freq twin of the dict the unsharded path builds:
            # each right record contributes each of its ids once (CSR rows
            # are the records' sorted unique ids).
            lids, prefixes, kept_entries, doc_freq, max_tid = self._cut_prefixes(
                l_entries, r_flat, max_tid, cache
            )
            capped = None
            if policy.capped:
                cap = policy.max_block_size
                oversized = doc_freq > cap
                count(instrumentation, "capped_blocks", int(oversized.sum()))
                count(
                    instrumentation,
                    "capped_postings",
                    int(doc_freq[oversized].sum()),
                )
                capped = oversized
                prefixes = [
                    array(ID_TYPECODE, (t for t in p if not oversized[t]))
                    for p in prefixes
                ]
        if not lids:
            count(instrumentation, "pairs_out", 0)
            return []
        with stage(instrumentation, "shard"):
            shards = self.shards
            l_col = TokenColumn.from_entries(kept_entries)
            prefix_offsets = array(ID_TYPECODE, [0])
            prefix_data = array(ID_TYPECODE)
            for p in prefixes:
                prefix_data.extend(p)
                prefix_offsets.append(len(prefix_data))
            pf = _np_i32(prefix_data)
            if len(pf):
                max_tid = max(max_tid, int(pf.max()))
            owner = _owner_table(max(max_tid, 0), shards)
            off_np = _np_i32(prefix_offsets).astype(np.int64)
            seg_lens = np.diff(off_np)
            probe_rec = np.repeat(
                np.arange(len(lids), dtype=np.int32), seg_lens
            )
            probe_pos = (
                np.arange(len(pf), dtype=np.int32)
                - np.repeat(off_np[:-1], seg_lens).astype(np.int32)
            )
            probe_owner = owner[pf] if len(pf) else np.empty(0, dtype=np.uint8)
            # Right postings, pre-partitioned: CSR order is (right-row,
            # sorted id) — exactly the insertion order of the single
            # index — and boolean masks preserve it per shard.
            r_off_np = _np_i32(r_offsets).astype(np.int64)
            r_rows = np.repeat(
                np.arange(len(rids), dtype=np.int32), np.diff(r_off_np)
            )
            post_keep = np.ones(len(r_flat), dtype=bool)
            if capped is not None and len(r_flat):
                post_keep = ~capped[r_flat]
            r_owner = owner[r_flat] if len(r_flat) else np.empty(0, dtype=np.uint8)
            payloads = []
            sizes = []
            for s in range(shards):
                pmask = probe_owner == s
                rmask = (r_owner == s) & post_keep
                payloads.append(
                    (
                        _as_id_array(probe_rec[pmask]),
                        _as_id_array(probe_pos[pmask]),
                        _as_id_array(pf[pmask]),
                        _as_id_array(r_rows[rmask]),
                        _as_id_array(r_flat[rmask]),
                    )
                )
                sizes.append(int(pmask.sum()))
            count(instrumentation, "shards", shards)
        with stage(instrumentation, "probe"):
            results = session.map_chunks(_shard_probe, payloads, sizes=sizes)
        with stage(instrumentation, "merge"):
            pairs = _merge_shard_deltas(
                results, lids, rids, l_col, r_col, verify_kind, verify_param
            )
            count(instrumentation, "pairs_out", len(pairs))
        return pairs

    def _cut_prefixes(
        self,
        l_entries: dict[Any, Any],
        r_flat: "np.ndarray",
        max_tid: int,
        cache: Any,
    ) -> tuple[list[Any], list[Any], list[Any], "np.ndarray", int]:
        """(lids, per-record probe arrays, kept entries, doc_freq, max id).

        Implemented per subclass: the overlap blocker cuts rank-ordered
        prefixes, the coefficient blocker probes whole ``probe`` arrays.
        ``doc_freq`` is dense over ``[0, max id]`` for cap decisions.
        """
        raise NotImplementedError


class ShardedOverlapBlocker(_ShardedTokenBlocker, OverlapBlocker):
    """:class:`~repro.blocking.overlap.OverlapBlocker`, sharded.

    Emits bit-identical pairs (values and order); only the execution
    layout differs. Extra parameters:

    shards:
        Number of token-hash ranges (and worker payloads). More shards
        than workers keeps the pool busy under range skew.
    block_size_policy:
        Optional :class:`~repro.blocking.policy.BlockSizePolicy` (or bare
        int cap) — posting lists over the cap are skipped at probe time.
    """

    short_name = "sharded_overlap"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: int = 1,
        tokenizer: Any = None,
        normalizer: Any = None,
        *,
        shards: int = DEFAULT_SHARDS,
        block_size_policy: Any = None,
    ) -> None:
        kwargs = {} if tokenizer is None else {"tokenizer": tokenizer}
        super().__init__(
            l_attr,
            r_attr,
            threshold,
            normalizer=normalizer,
            block_size_policy=block_size_policy,
            **kwargs,
        )
        self.shards = self._validate_shards(shards)

    def _block_ids(self, session, ltable, rtable, l_key, r_key):
        return self._sharded_block_ids(
            session, ltable, rtable, l_key, r_key, "overlap", self.threshold
        )

    def _cut_prefixes(self, l_entries, r_flat, max_tid, cache):
        k = self.threshold
        minlength = max_tid + 1
        l_max = 0
        for entry in l_entries.values():
            if len(entry.sorted):
                tail = entry.sorted[-1]  # sorted unique: last is the max
                if tail >= l_max:
                    l_max = tail + 1
        minlength = max(minlength, l_max)
        doc_freq = (
            np.bincount(r_flat, minlength=minlength)
            if len(r_flat)
            else np.zeros(max(minlength, 1), dtype=np.int64)
        )
        # Global (doc_freq, token) rank via one lexsort. Ranking over the
        # whole left vocabulary is order-isomorphic to the unsharded
        # path's rank (the key is a total order independent of which
        # tokens participate), so every per-record sort comes out equal.
        lf_parts = [
            np.frombuffer(e.sorted, dtype=np.int32)
            for e in l_entries.values()
            if len(e.sorted)
        ]
        if lf_parts:
            vocab = np.unique(np.concatenate(lf_parts))
        else:
            vocab = np.empty(0, dtype=np.int32)
        token_of = cache.vocabulary.token_of
        tokens = np.array([token_of(int(t)) for t in vocab], dtype=object)
        freqs = doc_freq[vocab] if len(vocab) else np.empty(0, dtype=np.int64)
        order = np.lexsort((tokens, freqs)) if len(vocab) else np.empty(0, dtype=np.int64)
        rank = {int(t): i for i, t in enumerate(vocab[order])}
        by_rank = rank.__getitem__
        lids: list[Any] = []
        prefixes: list[Any] = []
        kept_entries: list[Any] = []
        for lid, entry in l_entries.items():
            ids = entry.sorted
            if len(ids) < k:
                continue
            ordered = sorted(ids, key=by_rank)
            lids.append(lid)
            prefixes.append(array(ID_TYPECODE, ordered[: len(ordered) - k + 1]))
            kept_entries.append(entry)
        return lids, prefixes, kept_entries, doc_freq, minlength - 1


class ShardedOverlapCoefficientBlocker(_ShardedTokenBlocker, OverlapCoefficientBlocker):
    """:class:`~repro.blocking.overlap_coefficient.OverlapCoefficientBlocker`,
    sharded. Same parameters and bit-identity contract as
    :class:`ShardedOverlapBlocker`; the probe side is each record's whole
    ``probe`` array (parent-frozenset iteration order), like the base
    blocker.
    """

    short_name = "sharded_overlap_coeff"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: float = 0.7,
        tokenizer: Any = None,
        normalizer: Any = None,
        *,
        shards: int = DEFAULT_SHARDS,
        block_size_policy: Any = None,
    ) -> None:
        kwargs = {} if tokenizer is None else {"tokenizer": tokenizer}
        super().__init__(
            l_attr,
            r_attr,
            threshold,
            normalizer=normalizer,
            block_size_policy=block_size_policy,
            **kwargs,
        )
        self.shards = self._validate_shards(shards)

    def _block_ids(self, session, ltable, rtable, l_key, r_key):
        return self._sharded_block_ids(
            session, ltable, rtable, l_key, r_key, "coefficient", self.threshold
        )

    def _cut_prefixes(self, l_entries, r_flat, max_tid, cache):
        minlength = max_tid + 1
        for entry in l_entries.values():
            if len(entry.sorted):
                tail = entry.sorted[-1]
                if tail >= minlength:
                    minlength = tail + 1
        doc_freq = (
            np.bincount(r_flat, minlength=minlength)
            if len(r_flat)
            else np.zeros(max(minlength, 1), dtype=np.int64)
        )
        lids = list(l_entries.keys())
        prefixes = [entry.probe for entry in l_entries.values()]
        kept_entries = list(l_entries.values())
        return lids, prefixes, kept_entries, doc_freq, minlength - 1
