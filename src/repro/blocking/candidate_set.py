"""Candidate sets: the output of blocking, input to sampling and matching.

A :class:`CandidateSet` is an ordered, duplicate-free collection of
(left-id, right-id) pairs together with references to the two base tables
and their key columns — enough provenance to recover full records for
labeling, feature extraction and debugging.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import BlockingError
from ..table import Table

Pair = tuple[Any, Any]


class CandidateSet:
    """A set of candidate record pairs between two tables.

    Parameters
    ----------
    ltable, rtable:
        The base tables the pair ids refer to.
    l_key, r_key:
        Key columns of the base tables.
    pairs:
        Iterable of (left-id, right-id); duplicates are dropped, first-seen
        order is preserved (so sampling is deterministic given a seed).
    name:
        Optional label, e.g. ``"C2"``.
    """

    def __init__(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        pairs: Iterable[Pair] = (),
        name: str = "",
    ) -> None:
        self.ltable = ltable
        self.rtable = rtable
        self.l_key = l_key
        self.r_key = r_key
        self.name = name
        self._l_index = {v: i for i, v in enumerate(ltable[l_key])}
        self._r_index = {v: i for i, v in enumerate(rtable[r_key])}
        self._pairs: list[Pair] = []
        self._seen: set[Pair] = set()
        for pair in pairs:
            self.add(pair)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, pair: Pair) -> bool:
        """Add a pair; returns False when it was already present."""
        lid, rid = pair
        if lid not in self._l_index:
            raise BlockingError(f"left id {lid!r} not present in {self.ltable.name!r}")
        if rid not in self._r_index:
            raise BlockingError(f"right id {rid!r} not present in {self.rtable.name!r}")
        key = (lid, rid)
        if key in self._seen:
            return False
        self._seen.add(key)
        self._pairs.append(key)
        return True

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._pairs)

    def __contains__(self, pair: Pair) -> bool:
        return tuple(pair) in self._seen

    @property
    def pairs(self) -> list[Pair]:
        return list(self._pairs)

    def pair_set(self) -> set[Pair]:
        return set(self._seen)

    @property
    def l_row_index(self) -> dict[Any, int]:
        """Left record id -> row position in ``ltable`` (shared; don't mutate).

        Columnar consumers (kernel feature extraction) use this to read
        attribute values straight out of the table columns instead of
        materializing a row dict per pair via :meth:`record_pair`.
        """
        return self._l_index

    @property
    def r_row_index(self) -> dict[Any, int]:
        """Right record id -> row position in ``rtable`` (shared; don't mutate)."""
        return self._r_index

    def left_row(self, lid: Any) -> dict[str, Any]:
        """Full left record for an id."""
        return self.ltable.row(self._l_index[lid])

    def right_row(self, rid: Any) -> dict[str, Any]:
        """Full right record for an id."""
        return self.rtable.row(self._r_index[rid])

    def record_pair(self, pair: Pair) -> tuple[dict[str, Any], dict[str, Any]]:
        """(left record, right record) for a candidate pair."""
        lid, rid = pair
        return self.left_row(lid), self.right_row(rid)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "candidates"
        return f"<CandidateSet {label!r}: {len(self)} pairs>"

    # ------------------------------------------------------------------
    # set algebra (all return new candidate sets over the same tables)
    # ------------------------------------------------------------------
    def _check_compatible(self, other: "CandidateSet") -> None:
        if (
            self.ltable is not other.ltable
            or self.rtable is not other.rtable
            or self.l_key != other.l_key
            or self.r_key != other.r_key
        ):
            raise BlockingError(
                "candidate sets must share base tables and keys to combine"
            )

    def union(self, other: "CandidateSet", name: str = "") -> "CandidateSet":
        self._check_compatible(other)
        return CandidateSet(
            self.ltable, self.rtable, self.l_key, self.r_key,
            self._pairs + other._pairs, name=name,
        )

    def intersection(self, other: "CandidateSet", name: str = "") -> "CandidateSet":
        self._check_compatible(other)
        return CandidateSet(
            self.ltable, self.rtable, self.l_key, self.r_key,
            [p for p in self._pairs if p in other._seen], name=name,
        )

    def difference(self, other: "CandidateSet", name: str = "") -> "CandidateSet":
        self._check_compatible(other)
        return CandidateSet(
            self.ltable, self.rtable, self.l_key, self.r_key,
            [p for p in self._pairs if p not in other._seen], name=name,
        )

    def subset(self, pairs: Sequence[Pair], name: str = "") -> "CandidateSet":
        """A candidate set restricted to *pairs* (all must be members)."""
        missing = [p for p in pairs if tuple(p) not in self._seen]
        if missing:
            raise BlockingError(f"{len(missing)} pairs not in candidate set: {missing[:3]}")
        return CandidateSet(
            self.ltable, self.rtable, self.l_key, self.r_key, pairs, name=name
        )

    def filter(self, predicate: Callable[[dict, dict], bool], name: str = "") -> "CandidateSet":
        """Keep pairs whose records satisfy *predicate(l_row, r_row)*."""
        kept = [p for p in self._pairs if predicate(*self.record_pair(p))]
        return CandidateSet(
            self.ltable, self.rtable, self.l_key, self.r_key, kept, name=name
        )

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def to_table(
        self,
        l_attrs: Sequence[str] = (),
        r_attrs: Sequence[str] = (),
        name: str = "",
    ) -> Table:
        """Materialise as a table with ``_id``, the two key columns
        (prefixed ``ltable_``/``rtable_``) and any requested attributes."""
        rows = []
        for i, (lid, rid) in enumerate(self._pairs):
            lrow, rrow = self.record_pair((lid, rid))
            out: dict[str, Any] = {"_id": i, f"ltable_{self.l_key}": lid, f"rtable_{self.r_key}": rid}
            for a in l_attrs:
                out[f"ltable_{a}"] = lrow[a]
            for a in r_attrs:
                out[f"rtable_{a}"] = rrow[a]
            rows.append(out)
        columns = (
            ["_id", f"ltable_{self.l_key}", f"rtable_{self.r_key}"]
            + [f"ltable_{a}" for a in l_attrs]
            + [f"rtable_{a}" for a in r_attrs]
        )
        return Table.from_rows(rows, columns=columns, name=name or self.name)

    def sample(self, n: int, rng) -> list[Pair]:
        """Uniform random sample of *n* pairs without replacement."""
        if n > len(self._pairs):
            raise BlockingError(f"cannot sample {n} pairs from {len(self._pairs)}")
        indices = rng.choice(len(self._pairs), size=n, replace=False)
        return [self._pairs[int(i)] for i in indices]


def full_cross_product(
    ltable: Table, rtable: Table, l_key: str, r_key: str, name: str = "AxB"
) -> CandidateSet:
    """The un-blocked Cartesian product (use only on small tables)."""
    pairs = [
        (lid, rid) for lid in ltable[l_key] for rid in rtable[r_key]
    ]
    return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name)
