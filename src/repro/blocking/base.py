"""Blocker interface.

A blocker takes two tables (plus their key columns) and produces a
:class:`~repro.blocking.candidate_set.CandidateSet` of pairs that survive
its heuristic. Blockers are deliberately *recall-oriented*: their job is to
drop obvious non-matches, never plausible matches.
"""

from __future__ import annotations

from typing import Any

from ..errors import BlockingError, IncrementalBlockingError
from ..runtime.context import EngineSession, resolve_session
from ..runtime.instrument import Instrumentation
from ..table import Table
from ..table.catalog import validate_key
from .candidate_set import CandidateSet


class Blocker:
    """Abstract base class for blockers.

    Subclasses implement :meth:`_compute_blocking`, which receives the
    resolved :class:`~repro.runtime.context.EngineSession` and returns the
    candidate set. The public :meth:`block_tables` is the shared driver:
    it resolves the session (ambient ``with EngineSession(...)`` scope,
    or a transient stand-in built from the legacy kwargs) and executes
    through ``session.run_stage`` — one implementation of the store
    memoization, chunk dispatch and tracing glue that each blocker
    previously re-threaded.

    The keyword-only runtime knobs are **deprecated shims** kept for
    pre-session call sites; ``None`` always means "inherit from the
    ambient session":

    ``workers``
        Process count for chunk-parallel evaluation. Blockers without a
        parallel path accept and ignore higher values. Parallel results
        are identical to serial.
    ``instrumentation``
        Optional :class:`~repro.runtime.instrument.Instrumentation` that
        receives stage timings and pair counters.
    ``store``
        Optional :class:`~repro.store.store.ArtifactStore`. When
        resolved (directly or from the session), the blocker is memoized
        by the content fingerprints of its config and both input tables
        (see :class:`repro.store.stages.BlockStage`).
    ``pool``
        Optional shared :class:`~repro.runtime.executor.WorkerPool`. When
        given it supplies the worker processes (overriding ``workers``)
        and is reused across stages; the caller owns its lifetime.
        Results are identical with or without it.
    """

    #: Subclasses set this for nicer candidate-set names.
    short_name = "blocker"

    #: True when :meth:`incremental` vends a delta-maintained handle.
    #: Implies the blocker's emission is independent per left row (the
    #: property the segmented store layer also relies on).
    supports_incremental = False

    def incremental(
        self,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        session: EngineSession | None = None,
    ) -> "Any":
        """Vend an :class:`~repro.blocking.incremental.IncrementalBlocking`
        handle over a fixed right table.

        Blockers without posting-index maintenance raise a typed
        :class:`~repro.errors.IncrementalBlockingError` — never a silent
        fallback to a full re-block, whose cost callers must opt into
        explicitly via :meth:`block_tables`.
        """
        raise IncrementalBlockingError(
            f"{type(self).__name__} does not support incremental blocking: "
            "no posting-index maintenance is defined for it; run "
            "block_tables() for a full re-block instead"
        )

    def upsert(self, records: "Any", *_args: Any, **_kwargs: Any) -> "Any":
        """Guard rail: upserts live on incremental *handles*, not on the
        stateless blocker config.

        Raises :class:`~repro.errors.IncrementalBlockingError` always —
        with a pointer to :meth:`incremental` when this blocker supports
        delta maintenance, and an explicit "not supported, re-block
        instead" otherwise. Silently falling back to ``block_tables``
        here would hide a full re-run behind an O(delta)-looking call.
        """
        if not self.supports_incremental:
            raise IncrementalBlockingError(
                f"{type(self).__name__} does not support incremental blocking: "
                "no posting-index maintenance is defined for it; run "
                "block_tables() for a full re-block instead"
            )
        raise IncrementalBlockingError(
            f"{type(self).__name__} is a stateless blocker config; build a "
            "delta-maintained handle with incremental(rtable, l_key, r_key) "
            "and upsert on the handle"
        )

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str = "",
        *,
        workers: int | None = None,
        instrumentation: Instrumentation | None = None,
        store: "Any | None" = None,
        pool: "Any | None" = None,
        session: EngineSession | None = None,
    ) -> CandidateSet:
        """Produce the candidate set for (ltable, rtable)."""
        # Lazy import: repro.store depends on blocking (codecs rebuild
        # candidate sets), so the reverse edge must not exist at import
        # time.
        from ..store.stages import BlockStage

        resolved = resolve_session(
            session,
            workers=workers,
            instrumentation=instrumentation,
            store=store,
            pool=pool,
        )
        return resolved.run_stage(
            BlockStage(self, ltable, rtable, l_key, r_key, name=name)
        )

    def _compute_blocking(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
    ) -> CandidateSet:
        """Produce the candidate set (no store/trace glue — the session
        already applied it)."""
        raise NotImplementedError

    def _validate_inputs(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str, attrs: list[tuple[Table, str]]
    ) -> None:
        validate_key(ltable, l_key)
        validate_key(rtable, r_key)
        for table, attr in attrs:
            if attr not in table:
                raise BlockingError(
                    f"blocking attribute {attr!r} not in table {table.name!r}"
                )
