"""Blocker interface.

A blocker takes two tables (plus their key columns) and produces a
:class:`~repro.blocking.candidate_set.CandidateSet` of pairs that survive
its heuristic. Blockers are deliberately *recall-oriented*: their job is to
drop obvious non-matches, never plausible matches.
"""

from __future__ import annotations

from typing import Any

from ..errors import BlockingError
from ..runtime.instrument import Instrumentation
from ..table import Table
from ..table.catalog import validate_key
from .candidate_set import CandidateSet


class Blocker:
    """Abstract base class for blockers.

    Every blocker accepts two runtime knobs (keyword-only, so positional
    call sites are unaffected):

    ``workers``
        Process count for chunk-parallel evaluation. The default ``1`` is
        strictly serial; blockers without a parallel path accept and
        ignore higher values. Parallel results are identical to serial.
    ``instrumentation``
        Optional :class:`~repro.runtime.instrument.Instrumentation` that
        receives stage timings and pair counters.
    ``store``
        Optional :class:`~repro.store.store.ArtifactStore`. When given,
        the blocker is memoized by the content fingerprints of its config
        and both input tables (see :func:`repro.store.cached_block`);
        ``None`` (the default) computes unconditionally.
    ``pool``
        Optional shared :class:`~repro.runtime.executor.WorkerPool`. When
        given it supplies the worker processes (overriding ``workers``)
        and is reused across stages; the caller owns its lifetime.
        Results are identical with or without it.
    """

    #: Subclasses set this for nicer candidate-set names.
    short_name = "blocker"

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str = "",
        *,
        workers: int = 1,
        instrumentation: Instrumentation | None = None,
        store: "Any | None" = None,
        pool: "Any | None" = None,
    ) -> CandidateSet:
        """Produce the candidate set for (ltable, rtable)."""
        raise NotImplementedError

    def _memoized(
        self,
        store: "Any",
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
        workers: int,
        instrumentation: Instrumentation | None,
        pool: "Any | None" = None,
    ) -> CandidateSet:
        """Route ``block_tables`` through an artifact store.

        Imported lazily: ``repro.store`` depends on blocking (codecs build
        candidate sets), so the dependency must not also run this way at
        import time.
        """
        from ..store.stages import cached_block

        return cached_block(
            store,
            self,
            ltable,
            rtable,
            l_key,
            r_key,
            name=name,
            workers=workers,
            instrumentation=instrumentation,
            pool=pool,
        )

    def _validate_inputs(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str, attrs: list[tuple[Table, str]]
    ) -> None:
        validate_key(ltable, l_key)
        validate_key(rtable, r_key)
        for table, attr in attrs:
            if attr not in table:
                raise BlockingError(
                    f"blocking attribute {attr!r} not in table {table.name!r}"
                )
