"""Overlap-coefficient blocker: keep pairs with |X∩Y|/min(|X|,|Y|) >= t.

Section 7 step 3 adds this blocker (word tokens, threshold 0.7) because the
raw overlap blocker's K=3 floor silently drops similar titles shorter than
three tokens. Candidates are generated from an inverted index (any
surviving pair must share at least one token when t > 0) with a size-aware
bound: a pair needs at least ``ceil(t * min(|X|,|Y|))`` shared tokens, so
left records probe the index with a prefix of length
``len(tokens) - ceil(t*len(tokens)) + 1`` (min-size can only shrink when
the right side is smaller, in which case any shared token still appears in
some prefix token's posting list... we keep the exact verification step, so
the filter only needs to be safe, and a 1-token prefix bound is used when
the computed prefix would be empty).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..errors import BlockingError
from ..table import Table
from ..table.column import is_missing
from ..similarity.set_based import overlap_coefficient
from ..text.tokenizers import Tokenizer, whitespace
from .base import Blocker
from .candidate_set import CandidateSet

Normalizer = Callable[[Any], Any]


class OverlapCoefficientBlocker(Blocker):
    """Overlap-coefficient blocker.

    Parameters mirror :class:`~repro.blocking.overlap.OverlapBlocker`,
    except *threshold* is a fraction in (0, 1].
    """

    short_name = "overlap_coeff"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: float = 0.7,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise BlockingError(
                f"overlap-coefficient threshold must be in (0,1], got {threshold}"
            )
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.threshold = threshold
        self.tokenizer = tokenizer
        self.normalizer = normalizer

    def _tokens_by_id(self, table: Table, attr: str, key: str) -> dict[Any, frozenset[str]]:
        out: dict[Any, frozenset[str]] = {}
        for rid, value in zip(table[key], table[attr]):
            if is_missing(value):
                continue
            if self.normalizer is not None:
                value = self.normalizer(value)
                if is_missing(value):
                    continue
            tokens = frozenset(self.tokenizer(str(value)))
            if tokens:
                out[rid] = tokens
        return out

    def block_tables(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str, name: str = ""
    ) -> CandidateSet:
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        l_tokens = self._tokens_by_id(ltable, self.l_attr, l_key)
        r_tokens = self._tokens_by_id(rtable, self.r_attr, r_key)
        index: dict[str, list[Any]] = {}
        for rid, tokens in r_tokens.items():
            for t in tokens:
                index.setdefault(t, []).append(rid)
        pairs = []
        t = self.threshold
        for lid, tokens in l_tokens.items():
            # Any pair reaching the threshold shares >= 1 token, so probing
            # every left token is a safe (and simple) candidate generator.
            seen: set[Any] = set()
            for tok in tokens:
                for rid in index.get(tok, ()):
                    seen.add(rid)
            for rid in seen:
                rtoks = r_tokens[rid]
                needed = math.ceil(t * min(len(tokens), len(rtoks)) - 1e-9)
                if len(tokens & rtoks) < needed:
                    continue
                if overlap_coefficient(tokens, rtoks) >= t - 1e-12:
                    pairs.append((lid, rid))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)
