"""Overlap-coefficient blocker: keep pairs with |X∩Y|/min(|X|,|Y|) >= t.

Section 7 step 3 adds this blocker (word tokens, threshold 0.7) because the
raw overlap blocker's K=3 floor silently drops similar titles shorter than
three tokens. Candidates are generated from an inverted index (any
surviving pair must share at least one token when t > 0); shared-token
counts are verified exactly against the size-aware bound
``ceil(t * min(|X|,|Y|))`` before the coefficient itself is checked.

Like :class:`~repro.blocking.overlap.OverlapBlocker`, tokenization is
memoized through the shared runtime cache and the probe loop chunks over
left records when ``workers >= 2`` (identical results to serial).
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..errors import BlockingError
from ..runtime.cache import get_default_cache
from ..runtime.executor import ChunkedExecutor, chunk_ranges
from ..runtime.instrument import Instrumentation, count, stage
from ..similarity.set_based import overlap_coefficient
from ..table import Table
from ..text.tokenizers import Tokenizer, whitespace
from .base import Blocker
from .candidate_set import CandidateSet

Normalizer = Callable[[Any], Any]


def _probe_coefficient_chunk(
    l_items: list[tuple[Any, frozenset[str]]],
    r_tokens: dict[Any, frozenset[str]],
    index: dict[str, list[Any]],
    threshold: float,
) -> list[tuple[Any, Any]]:
    """Candidate generation + exact verification for a chunk of left records
    (module-level so worker processes can run it; serial uses it too)."""
    pairs: list[tuple[Any, Any]] = []
    for lid, tokens in l_items:
        # Any pair reaching the threshold shares >= 1 token, so probing
        # every left token is a safe (and simple) candidate generator.
        seen: set[Any] = set()
        for tok in tokens:
            for rid in index.get(tok, ()):
                seen.add(rid)
        for rid in seen:
            rtoks = r_tokens[rid]
            needed = math.ceil(threshold * min(len(tokens), len(rtoks)) - 1e-9)
            if len(tokens & rtoks) < needed:
                continue
            if overlap_coefficient(tokens, rtoks) >= threshold - 1e-12:
                pairs.append((lid, rid))
    return pairs


class OverlapCoefficientBlocker(Blocker):
    """Overlap-coefficient blocker.

    Parameters mirror :class:`~repro.blocking.overlap.OverlapBlocker`,
    except *threshold* is a fraction in (0, 1].
    """

    short_name = "overlap_coeff"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: float = 0.7,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise BlockingError(
                f"overlap-coefficient threshold must be in (0,1], got {threshold}"
            )
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.threshold = threshold
        self.tokenizer = tokenizer
        self.normalizer = normalizer

    def _tokens_by_id(self, table: Table, attr: str, key: str) -> dict[Any, frozenset[str]]:
        return get_default_cache().tokens_by_id(
            table, attr, key, self.tokenizer, self.normalizer
        )

    def block_tables(
        self,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str = "",
        *,
        workers: int = 1,
        instrumentation: Instrumentation | None = None,
        store: Any | None = None,
    ) -> CandidateSet:
        if store is not None:
            return self._memoized(
                store, ltable, rtable, l_key, r_key, name, workers, instrumentation
            )
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        cache = get_default_cache()
        hits_before = cache.hits
        with stage(instrumentation, "tokenize"):
            l_tokens = self._tokens_by_id(ltable, self.l_attr, l_key)
            r_tokens = self._tokens_by_id(rtable, self.r_attr, r_key)
            count(instrumentation, "l_records", len(l_tokens))
            count(instrumentation, "r_records", len(r_tokens))
            count(instrumentation, "cache_hits", cache.hits - hits_before)
        with stage(instrumentation, "index"):
            index: dict[str, list[Any]] = {}
            for rid, tokens in r_tokens.items():
                for t in tokens:
                    index.setdefault(t, []).append(rid)
        with stage(instrumentation, "probe"):
            l_items = list(l_tokens.items())
            ranges = chunk_ranges(len(l_items), workers)
            executor = ChunkedExecutor(workers=workers, instrumentation=instrumentation)
            chunks = executor.map(
                _probe_coefficient_chunk,
                [
                    (l_items[start:stop], r_tokens, index, self.threshold)
                    for start, stop in ranges
                ],
                sizes=[stop - start for start, stop in ranges],
            )
            pairs = [pair for chunk in chunks for pair in chunk]
            count(instrumentation, "pairs_out", len(pairs))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)
