"""Overlap-coefficient blocker: keep pairs with |X∩Y|/min(|X|,|Y|) >= t.

Section 7 step 3 adds this blocker (word tokens, threshold 0.7) because the
raw overlap blocker's K=3 floor silently drops similar titles shorter than
three tokens. Candidates are generated from an inverted index (any
surviving pair must share at least one token when t > 0); shared-token
counts are verified exactly against the size-aware bound
``ceil(t * min(|X|,|Y|))`` before the coefficient itself is checked.

Like :class:`~repro.blocking.overlap.OverlapBlocker`, tokenization is
memoized through the shared runtime cache; when the kernel switch is on
(default) the probe runs over interned ids shipped as columnar
:class:`~repro.runtime.columnar.TokenColumn` chunks with one batch
keep-mask call (:func:`~repro.similarity.batch.overlap_coefficient_at_least_batch`)
verifying each chunk's ordered candidate list, and over the legacy
``frozenset[str]`` sets otherwise; the probe loop chunks over left
records when ``workers >= 2`` — identical results on every path. Both
paths probe each left record's tokens in the *iteration order of the
parent's frozenset*, materialized in the parent before chunks ship (the
kernel path via :class:`~repro.runtime.cache.InternedTokens.probe`, the
string path via a token list): an unpickled frozenset may iterate in a
different order than the original, and the per-record ``seen`` insertion
sequence — and therefore pair emission order — must stay bit-identical
to the serial loop.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from ..errors import BlockingError, IncrementalBlockingError
from ..runtime.columnar import TokenColumn
from ..runtime.context import EngineSession
from ..runtime.executor import chunk_ranges
from ..runtime.instrument import count, stage
from ..similarity import batch
from ..similarity.set_based import overlap_coefficient
from ..table import Table
from ..text.intern import id_array
from ..text.tokenizers import Tokenizer, whitespace
from .base import Blocker
from .candidate_set import CandidateSet
from .policy import BlockSizePolicy, capped_keys, resolve_policy

Normalizer = Callable[[Any], Any]


def _probe_coefficient_chunk(
    l_items: list[tuple[Any, list[str], frozenset[str]]],
    r_tokens: dict[Any, frozenset[str]],
    index: dict[str, list[Any]],
    threshold: float,
) -> list[tuple[Any, Any]]:
    """Candidate generation + exact verification for a chunk of left records
    (module-level so worker processes can run it; serial uses it too).

    ``l_items`` carries ``(lid, probe, tokens)`` where *probe* is the
    token list materialized **in the parent**, in the parent frozenset's
    iteration order. Workers must probe from the list, not the frozenset:
    a frozenset rebuilt by unpickling can iterate in a different order
    than the original (reinsertion may land a different hash-table
    layout), which would reorder ``seen`` — and with it the emitted pairs
    — relative to the serial run. Lists round-trip order exactly.
    """
    pairs: list[tuple[Any, Any]] = []
    for lid, probe, tokens in l_items:
        # Any pair reaching the threshold shares >= 1 token, so probing
        # every left token is a safe (and simple) candidate generator.
        seen: set[Any] = set()
        for tok in probe:
            for rid in index.get(tok, ()):
                seen.add(rid)
        for rid in seen:
            rtoks = r_tokens[rid]
            needed = math.ceil(threshold * min(len(tokens), len(rtoks)) - 1e-9)
            if len(tokens & rtoks) < needed:
                continue
            if overlap_coefficient(tokens, rtoks) >= threshold - 1e-12:
                pairs.append((lid, rid))
    return pairs


def _probe_coefficient_ids_chunk(
    lids: list[Any],
    probes: list[Any],
    l_col: TokenColumn,
    rids: tuple[Any, ...],
    r_col: TokenColumn,
    index: dict[int, list[Any]],
    threshold: float,
) -> list[tuple[Any, Any]]:
    """Kernel twin of :func:`_probe_coefficient_chunk` over columnar chunks.

    Workers receive whole columns — the chunk's left ids, per-record
    ``probe`` arrays replaying each cached frozenset's iteration order
    (materialized in the parent; see the module docstring), and both
    sides' token sets as :class:`~repro.runtime.columnar.TokenColumn`
    CSR buffers. Candidate generation walks the inverted index exactly
    like the string path; verification is one
    :func:`~repro.similarity.batch.overlap_coefficient_at_least_batch`
    call over the chunk's whole candidate list — the same size-aware
    count bound and coefficient comparisons over the same integers, with
    the keep-mask filtering the ordered candidate list in place.
    """
    l_sets = l_col.sets()
    r_map = dict(zip(rids, r_col.sets()))
    cand_pairs: list[tuple[Any, Any]] = []
    cand_a: list[Any] = []
    cand_b: list[Any] = []
    for i, lid in enumerate(lids):
        a = l_sets[i]
        seen: set[Any] = set()
        for tid in probes[i]:
            for rid in index.get(tid, ()):
                seen.add(rid)
        for rid in seen:
            cand_pairs.append((lid, rid))
            cand_a.append(a)
            cand_b.append(r_map[rid])
    keep = batch.overlap_coefficient_at_least_batch(cand_a, cand_b, threshold)
    return [pair for pair, kept in zip(cand_pairs, keep) if kept]


class OverlapCoefficientBlocker(Blocker):
    """Overlap-coefficient blocker.

    Parameters mirror :class:`~repro.blocking.overlap.OverlapBlocker`,
    except *threshold* is a fraction in (0, 1].
    """

    short_name = "overlap_coeff"
    supports_incremental = True

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        threshold: float = 0.7,
        tokenizer: Tokenizer = whitespace,
        normalizer: Normalizer | None = None,
        *,
        block_size_policy: "BlockSizePolicy | int | None" = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise BlockingError(
                f"overlap-coefficient threshold must be in (0,1], got {threshold}"
            )
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.threshold = threshold
        self.tokenizer = tokenizer
        self.normalizer = normalizer
        self.block_size_policy = resolve_policy(block_size_policy)

    def incremental(
        self,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        session: EngineSession | None = None,
    ) -> "Any":
        """Delta-maintained handle; see :mod:`repro.blocking.incremental`."""
        if self.block_size_policy.capped:
            raise IncrementalBlockingError(
                "incremental blocking does not support block-size caps; "
                "use an uncapped blocker for delta handles"
            )
        from .incremental import OverlapCoefficientIncremental

        return OverlapCoefficientIncremental(self, rtable, l_key, r_key, session=session)

    def _compute_blocking(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
    ) -> CandidateSet:
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        if session.kernels_enabled():
            pairs = self._block_ids(session, ltable, rtable, l_key, r_key)
        else:
            pairs = self._block_strings(session, ltable, rtable, l_key, r_key)
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)

    def _block_strings(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
    ) -> list[tuple[Any, Any]]:
        instrumentation = session.instrumentation
        cache = session.token_cache
        hits_before = cache.hits
        with stage(instrumentation, "tokenize"):
            l_tokens = cache.tokens_by_id(
                ltable, self.l_attr, l_key, self.tokenizer, self.normalizer
            )
            r_tokens = cache.tokens_by_id(
                rtable, self.r_attr, r_key, self.tokenizer, self.normalizer
            )
            count(instrumentation, "l_records", len(l_tokens))
            count(instrumentation, "r_records", len(r_tokens))
            count(instrumentation, "cache_hits", cache.hits - hits_before)
        with stage(instrumentation, "index"):
            index: dict[str, list[Any]] = {}
            for rid, tokens in r_tokens.items():
                for t in tokens:
                    index.setdefault(t, []).append(rid)
            capped = capped_keys(
                {t: len(rids_) for t, rids_ in index.items()},
                self.block_size_policy,
                instrumentation,
            )
        with stage(instrumentation, "probe"):
            # Probe lists replay the parent frozenset's iteration order;
            # the cap filter preserves it (filters, never reorders).
            l_items = [
                (
                    lid,
                    [t for t in tokens if t not in capped] if capped else list(tokens),
                    tokens,
                )
                for lid, tokens in l_tokens.items()
            ]
            ranges = chunk_ranges(len(l_items), session.workers)
            chunks = session.map_chunks(
                _probe_coefficient_chunk,
                [
                    (l_items[start:stop], r_tokens, index, self.threshold)
                    for start, stop in ranges
                ],
                sizes=[stop - start for start, stop in ranges],
            )
            pairs = [pair for chunk in chunks for pair in chunk]
            count(instrumentation, "pairs_out", len(pairs))
        return pairs

    def _block_ids(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
    ) -> list[tuple[Any, Any]]:
        instrumentation = session.instrumentation
        cache = session.token_cache
        hits_before = cache.hits
        with stage(instrumentation, "tokenize"):
            l_entries = cache.token_ids_by_id(
                ltable, self.l_attr, l_key, self.tokenizer, self.normalizer
            )
            r_entries = cache.token_ids_by_id(
                rtable, self.r_attr, r_key, self.tokenizer, self.normalizer
            )
            count(instrumentation, "l_records", len(l_entries))
            count(instrumentation, "r_records", len(r_entries))
            count(instrumentation, "cache_hits", cache.hits - hits_before)
        with stage(instrumentation, "index"):
            index: dict[int, list[Any]] = {}
            for rid, entry in r_entries.items():
                for tid in entry.sorted:
                    index.setdefault(tid, []).append(rid)
            capped = capped_keys(
                {tid: len(rids_) for tid, rids_ in index.items()},
                self.block_size_policy,
                instrumentation,
            )
        with stage(instrumentation, "probe"):
            lids = list(l_entries.keys())
            if capped:
                probes = [
                    id_array(t for t in entry.probe if t not in capped)
                    for entry in l_entries.values()
                ]
            else:
                probes = [entry.probe for entry in l_entries.values()]
            l_col = TokenColumn.from_entries(l_entries.values())
            rids = tuple(r_entries.keys())
            r_col = TokenColumn.from_entries(r_entries.values())
            ranges = chunk_ranges(len(lids), session.workers)
            chunks = session.map_chunks(
                _probe_coefficient_ids_chunk,
                [
                    (
                        lids[start:stop],
                        probes[start:stop],
                        l_col.slice(start, stop),
                        rids,
                        r_col,
                        index,
                        self.threshold,
                    )
                    for start, stop in ranges
                ],
                sizes=[stop - start for start, stop in ranges],
            )
            pairs = [pair for chunk in chunks for pair in chunk]
            count(instrumentation, "pairs_out", len(pairs))
        return pairs
