"""Rule-based blocker: keep pairs satisfying an arbitrary record predicate.

Used for "patching" blocking when the match definition changes (Section 10:
the new award-number/project-number positive rule had to be added to the
blocking pipeline). An optional *index_attrs* pair turns the evaluation
from a full cross product into an equi-join pre-grouping when the rule is
known to require equality on those attributes.

``workers >= 2`` chunks the left rows over a process pool. Predicates are
often closures/lambdas, which cannot be pickled — the executor detects
that and silently recomputes serially, so results never depend on whether
the pool engaged.
"""

from __future__ import annotations

from typing import Any, Callable

from ..runtime.context import EngineSession
from ..runtime.executor import ChunkedExecutor, chunk_ranges
from ..runtime.instrument import count, stage
from ..table import Table
from ..table.column import is_missing
from .base import Blocker
from .candidate_set import CandidateSet

PairPredicate = Callable[[dict[str, Any], dict[str, Any]], bool]


def _rule_cross_chunk(
    l_rows: list[dict[str, Any]],
    r_rows: list[dict[str, Any]],
    predicate: PairPredicate,
    l_key: str,
    r_key: str,
) -> list[tuple[Any, Any]]:
    """Evaluate the predicate over (chunk of left rows) x (all right rows)."""
    pairs: list[tuple[Any, Any]] = []
    for lrow in l_rows:
        for rrow in r_rows:
            if predicate(lrow, rrow):
                pairs.append((lrow[l_key], rrow[r_key]))
    return pairs


def _rule_indexed_chunk(
    l_entries: list[tuple[Any, dict[str, Any], Any]],
    r_groups: dict[Any, list[tuple[Any, dict[str, Any]]]],
    predicate: PairPredicate,
) -> list[tuple[Any, Any]]:
    """Evaluate the predicate for left entries against their equi-join group.

    *l_entries* holds ``(left id, left row, join value)`` triples whose join
    value is known to exist in *r_groups*.
    """
    pairs: list[tuple[Any, Any]] = []
    for lid, lrow, value in l_entries:
        for rid, rrow in r_groups[value]:
            if predicate(lrow, rrow):
                pairs.append((lid, rid))
    return pairs


class RuleBasedBlocker(Blocker):
    """Keep pairs with ``predicate(l_row, r_row)`` true.

    Parameters
    ----------
    predicate:
        Boolean function of the two records.
    index_attrs:
        Optional ``(l_attr, r_attr)``; when given, only pairs whose values
        agree on these attributes are evaluated (a correct shortcut iff the
        predicate implies that equality).
    """

    short_name = "rule"

    def __init__(
        self,
        predicate: PairPredicate,
        index_attrs: tuple[str, str] | None = None,
    ) -> None:
        self.predicate = predicate
        self.index_attrs = index_attrs

    def _compute_blocking(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
    ) -> CandidateSet:
        attrs = []
        if self.index_attrs is not None:
            attrs = [(ltable, self.index_attrs[0]), (rtable, self.index_attrs[1])]
        self._validate_inputs(ltable, rtable, l_key, r_key, attrs)
        instrumentation = session.instrumentation
        executor = session.executor()
        with stage(instrumentation, "evaluate"):
            if self.index_attrs is not None:
                pairs = self._block_indexed(ltable, rtable, l_key, r_key, executor)
            else:
                pairs = self._block_cross(ltable, rtable, l_key, r_key, executor)
            count(instrumentation, "pairs_out", len(pairs))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)

    def _block_indexed(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str,
        executor: ChunkedExecutor,
    ) -> list[tuple[Any, Any]]:
        l_attr, r_attr = self.index_attrs
        r_ids = rtable[r_key]
        r_groups: dict[Any, list[tuple[Any, dict[str, Any]]]] = {}
        for j, v in enumerate(rtable[r_attr]):
            if not is_missing(v):
                r_groups.setdefault(v, []).append((r_ids[j], rtable.row(j)))
        l_ids = ltable[l_key]
        l_entries = [
            (l_ids[i], ltable.row(i), v)
            for i, v in enumerate(ltable[l_attr])
            if not is_missing(v) and v in r_groups
        ]
        ranges = chunk_ranges(len(l_entries), executor.workers)
        chunks = executor.map(
            _rule_indexed_chunk,
            [
                (l_entries[start:stop], r_groups, self.predicate)
                for start, stop in ranges
            ],
            sizes=[stop - start for start, stop in ranges],
        )
        return [pair for chunk in chunks for pair in chunk]

    def _block_cross(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str,
        executor: ChunkedExecutor,
    ) -> list[tuple[Any, Any]]:
        l_rows = ltable.to_rows()
        r_rows = rtable.to_rows()
        ranges = chunk_ranges(len(l_rows), executor.workers)
        chunks = executor.map(
            _rule_cross_chunk,
            [
                (l_rows[start:stop], r_rows, self.predicate, l_key, r_key)
                for start, stop in ranges
            ],
            sizes=[stop - start for start, stop in ranges],
        )
        return [pair for chunk in chunks for pair in chunk]
