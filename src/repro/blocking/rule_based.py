"""Rule-based blocker: keep pairs satisfying an arbitrary record predicate.

Used for "patching" blocking when the match definition changes (Section 10:
the new award-number/project-number positive rule had to be added to the
blocking pipeline). An optional *index_attrs* pair turns the evaluation
from a full cross product into an equi-join pre-grouping when the rule is
known to require equality on those attributes.
"""

from __future__ import annotations

from typing import Any, Callable

from ..table import Table
from ..table.column import is_missing
from .base import Blocker
from .candidate_set import CandidateSet

PairPredicate = Callable[[dict[str, Any], dict[str, Any]], bool]


class RuleBasedBlocker(Blocker):
    """Keep pairs with ``predicate(l_row, r_row)`` true.

    Parameters
    ----------
    predicate:
        Boolean function of the two records.
    index_attrs:
        Optional ``(l_attr, r_attr)``; when given, only pairs whose values
        agree on these attributes are evaluated (a correct shortcut iff the
        predicate implies that equality).
    """

    short_name = "rule"

    def __init__(
        self,
        predicate: PairPredicate,
        index_attrs: tuple[str, str] | None = None,
    ) -> None:
        self.predicate = predicate
        self.index_attrs = index_attrs

    def block_tables(
        self, ltable: Table, rtable: Table, l_key: str, r_key: str, name: str = ""
    ) -> CandidateSet:
        attrs = []
        if self.index_attrs is not None:
            attrs = [(ltable, self.index_attrs[0]), (rtable, self.index_attrs[1])]
        self._validate_inputs(ltable, rtable, l_key, r_key, attrs)
        pairs = []
        if self.index_attrs is not None:
            l_attr, r_attr = self.index_attrs
            r_groups: dict[Any, list[int]] = {}
            for i, v in enumerate(rtable[r_attr]):
                if not is_missing(v):
                    r_groups.setdefault(v, []).append(i)
            l_ids = ltable[l_key]
            r_ids = rtable[r_key]
            for i, v in enumerate(ltable[l_attr]):
                if is_missing(v) or v not in r_groups:
                    continue
                lrow = ltable.row(i)
                for j in r_groups[v]:
                    if self.predicate(lrow, rtable.row(j)):
                        pairs.append((l_ids[i], r_ids[j]))
        else:
            l_rows = ltable.to_rows()
            r_rows = rtable.to_rows()
            for lrow in l_rows:
                for rrow in r_rows:
                    if self.predicate(lrow, rrow):
                        pairs.append((lrow[l_key], rrow[r_key]))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)
