"""Black-box blocker: apply an arbitrary scoring function over A x B.

PyMatcher's escape hatch: when none of the built-in blockers fits, users
write a Python function. Unlike :class:`RuleBasedBlocker`, a black-box
blocker may return a *score*; pairs scoring at or above the threshold are
kept. There is no index acceleration — this is the "quick patch" tool.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import BlockingError
from ..runtime.context import EngineSession
from ..runtime.instrument import count
from ..table import Table
from .base import Blocker
from .candidate_set import CandidateSet

PairScore = Callable[[dict[str, Any], dict[str, Any]], float]


class BlackBoxBlocker(Blocker):
    """Keep pairs whose ``score(l_row, r_row) >= threshold``."""

    short_name = "blackbox"

    def __init__(self, score: PairScore, threshold: float = 0.5) -> None:
        self.score = score
        self.threshold = threshold

    def _compute_blocking(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
    ) -> CandidateSet:
        # Scores can return any type and are usually ad-hoc closures; the
        # quick-patch tool stays serial regardless of the session's pool.
        instrumentation = session.instrumentation
        self._validate_inputs(ltable, rtable, l_key, r_key, [])
        pairs = []
        l_rows = ltable.to_rows()
        r_rows = rtable.to_rows()
        for lrow in l_rows:
            for rrow in r_rows:
                value = self.score(lrow, rrow)
                if isinstance(value, bool):
                    keep = value
                elif isinstance(value, (int, float)):
                    keep = value >= self.threshold
                else:
                    raise BlockingError(
                        f"black-box score returned {type(value).__name__}, "
                        "expected bool or number"
                    )
                if keep:
                    pairs.append((lrow[l_key], rrow[r_key]))
        count(instrumentation, "pairs_out", len(pairs))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)
