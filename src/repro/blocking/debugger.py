"""Blocking debugger (MatchCatcher-style).

Takes the two input tables and the consolidated candidate set C and returns
pairs that are (a) in A x B but *not* in C and (b) judged likely matches,
ranked by decreasing likelihood. The user eyeballs the top of the list: if
few true matches appear there, blocking probably has not killed off many
real matches (Section 7 step 4 of the case study ran exactly this check and
then froze the blocking pipeline).

Likelihood is the maximum, over the given attribute pairs, of the Jaccard
similarity of lower-cased word tokens — the same cheap similarity
MatchCatcher uses to surface survivors quickly. Candidate generation goes
through an inverted index so the debugger never materialises A x B.

When the kernel switch is on (default), tokenization goes through the
shared :class:`~repro.runtime.cache.TokenCache` and Jaccard is computed
over interned-id frozensets: the intersection/union counts are the same
integers as over the string sets, so every score — and the ranking — is
bit-identical, but the sets hash small ints instead of strings and warm
runs skip tokenizing entirely.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Sequence

from ..runtime.cache import get_default_cache
from ..similarity import kernels
from ..similarity.set_based import jaccard
from ..table.column import is_missing
from ..text.normalize import normalize_title
from ..text.tokenizers import whitespace
from .candidate_set import CandidateSet


@dataclass(frozen=True)
class MissedPairReport:
    """One potentially-missed pair, with the similarity that ranked it."""

    l_id: Any
    r_id: Any
    score: float
    best_attrs: tuple[str, str]


def _token_map(table, key: str, attr: str) -> dict[Any, frozenset[str]]:
    out: dict[Any, frozenset[str]] = {}
    for rid, value in zip(table[key], table[attr]):
        if is_missing(value):
            continue
        tokens = frozenset(whitespace(str(normalize_title(value))))
        if tokens:
            out[rid] = tokens
    return out


def _token_id_map(table, key: str, attr: str) -> dict[Any, frozenset]:
    """Kernel twin of :func:`_token_map`: interned-id frozensets per row.

    The cache applies the very same recipe
    (``frozenset(whitespace(str(normalize_title(cell))))``, missing and
    empty cells dropped), then swaps each token for its vocabulary id.
    """
    entries = get_default_cache().token_ids_by_id(
        table, attr, key, whitespace, normalize_title
    )
    return {rid: entry.ids for rid, entry in entries.items()}


def debug_blocker(
    candidates: CandidateSet,
    attr_pairs: Sequence[tuple[str, str]],
    top_k: int = 100,
) -> list[MissedPairReport]:
    """Rank pairs outside *candidates* by likelihood of being matches.

    Parameters
    ----------
    candidates:
        The consolidated candidate set C (carries the base tables).
    attr_pairs:
        (left attribute, right attribute) pairs to compare, e.g.
        ``[("AwardTitle", "AwardTitle"), ("EmployeeName", "EmployeeName")]``.
    top_k:
        Number of ranked pairs to return.
    """
    in_c = candidates.pair_set()
    ltable, rtable = candidates.ltable, candidates.rtable
    l_key, r_key = candidates.l_key, candidates.r_key

    scored: dict[tuple[Any, Any], tuple[float, tuple[str, str]]] = {}
    for l_attr, r_attr in attr_pairs:
        if kernels.kernels_enabled():
            l_tokens = _token_id_map(ltable, l_key, l_attr)
            r_tokens = _token_id_map(rtable, r_key, r_attr)
            similarity = kernels.jaccard_id_sets
        else:
            l_tokens = _token_map(ltable, l_key, l_attr)
            r_tokens = _token_map(rtable, r_key, r_attr)
            similarity = jaccard
        index: dict[str, list[Any]] = {}
        for rid, tokens in r_tokens.items():
            for t in tokens:
                index.setdefault(t, []).append(rid)
        for lid, tokens in l_tokens.items():
            seen: set[Any] = set()
            for t in tokens:
                seen.update(index.get(t, ()))
            for rid in seen:
                if (lid, rid) in in_c:
                    continue
                score = similarity(tokens, r_tokens[rid])
                key = (lid, rid)
                if key not in scored or score > scored[key][0]:
                    scored[key] = (score, (l_attr, r_attr))

    # nsmallest(k, ..., key) is documented to equal sorted(..., key)[:k],
    # so the report is unchanged while the full O(n log n) sort becomes
    # O(n log k) over the ~|A x B| scored survivors.
    ranked = heapq.nsmallest(
        top_k, scored.items(), key=lambda kv: (-kv[1][0], str(kv[0]))
    )
    return [
        MissedPairReport(l_id=lid, r_id=rid, score=score, best_attrs=attrs)
        for (lid, rid), (score, attrs) in ranked
    ]
