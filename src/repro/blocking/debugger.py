"""Blocking debugger (MatchCatcher-style).

Takes the two input tables and the consolidated candidate set C and returns
pairs that are (a) in A x B but *not* in C and (b) judged likely matches,
ranked by decreasing likelihood. The user eyeballs the top of the list: if
few true matches appear there, blocking probably has not killed off many
real matches (Section 7 step 4 of the case study ran exactly this check and
then froze the blocking pipeline).

Likelihood is the maximum, over the given attribute pairs, of the Jaccard
similarity of lower-cased word tokens — the same cheap similarity
MatchCatcher uses to surface survivors quickly. Candidate generation goes
through an inverted index so the debugger never materialises A x B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..similarity.set_based import jaccard
from ..table.column import is_missing
from ..text.normalize import normalize_title
from ..text.tokenizers import whitespace
from .candidate_set import CandidateSet


@dataclass(frozen=True)
class MissedPairReport:
    """One potentially-missed pair, with the similarity that ranked it."""

    l_id: Any
    r_id: Any
    score: float
    best_attrs: tuple[str, str]


def _token_map(table, key: str, attr: str) -> dict[Any, frozenset[str]]:
    out: dict[Any, frozenset[str]] = {}
    for rid, value in zip(table[key], table[attr]):
        if is_missing(value):
            continue
        tokens = frozenset(whitespace(str(normalize_title(value))))
        if tokens:
            out[rid] = tokens
    return out


def debug_blocker(
    candidates: CandidateSet,
    attr_pairs: Sequence[tuple[str, str]],
    top_k: int = 100,
) -> list[MissedPairReport]:
    """Rank pairs outside *candidates* by likelihood of being matches.

    Parameters
    ----------
    candidates:
        The consolidated candidate set C (carries the base tables).
    attr_pairs:
        (left attribute, right attribute) pairs to compare, e.g.
        ``[("AwardTitle", "AwardTitle"), ("EmployeeName", "EmployeeName")]``.
    top_k:
        Number of ranked pairs to return.
    """
    in_c = candidates.pair_set()
    ltable, rtable = candidates.ltable, candidates.rtable
    l_key, r_key = candidates.l_key, candidates.r_key

    scored: dict[tuple[Any, Any], tuple[float, tuple[str, str]]] = {}
    for l_attr, r_attr in attr_pairs:
        l_tokens = _token_map(ltable, l_key, l_attr)
        r_tokens = _token_map(rtable, r_key, r_attr)
        index: dict[str, list[Any]] = {}
        for rid, tokens in r_tokens.items():
            for t in tokens:
                index.setdefault(t, []).append(rid)
        for lid, tokens in l_tokens.items():
            seen: set[Any] = set()
            for t in tokens:
                seen.update(index.get(t, ()))
            for rid in seen:
                if (lid, rid) in in_c:
                    continue
                score = jaccard(tokens, r_tokens[rid])
                key = (lid, rid)
                if key not in scored or score > scored[key][0]:
                    scored[key] = (score, (l_attr, r_attr))

    ranked = sorted(scored.items(), key=lambda kv: (-kv[1][0], str(kv[0])))
    return [
        MissedPairReport(l_id=lid, r_id=rid, score=score, best_attrs=attrs)
        for (lid, rid), (score, attrs) in ranked[:top_k]
    ]
