"""Sorted-neighborhood blocker.

A classic alternative to token blocking (Hernandez & Stolfo): sort all
records of both tables by a key expression and pair up records that fall
within a sliding window of each other. Useful when a lexicographic
ordering clusters duplicates — e.g. award numbers sharing long prefixes —
and as a cheap extra recall source to union with the token blockers.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import BlockingError
from ..runtime.context import EngineSession
from ..runtime.executor import chunk_ranges
from ..runtime.instrument import count
from ..table import Table
from ..table.column import is_missing
from .base import Blocker
from .candidate_set import CandidateSet

KeyFunction = Callable[[Any], Any]


def _window_chunk(
    entries: list[tuple[str, str, Any]], length: int, w: int
) -> list[tuple[Any, Any]]:
    """Window pairing for one chunk of the merged sort order.

    *entries* holds the chunk's ``length`` owned positions plus up to
    ``w - 1`` look-ahead entries from the next chunk, so every window
    anchored inside the chunk is complete. Module-level and closure-free
    so the chunked executor can ship it to workers; concatenating chunk
    outputs in order reproduces the serial loop exactly (each pair is
    anchored at — and emitted by — its window's first position only).
    """
    pairs: list[tuple[Any, Any]] = []
    for i in range(length):
        _, side_i, rid_i = entries[i]
        for j in range(i + 1, min(i + w, len(entries))):
            _, side_j, rid_j = entries[j]
            if side_i == side_j:
                continue
            if side_i == "L":
                pairs.append((rid_i, rid_j))
            else:
                pairs.append((rid_j, rid_i))
    return pairs


class SortedNeighborhoodBlocker(Blocker):
    """Slide a window over the merged sort order of both tables.

    Parameters
    ----------
    l_attr, r_attr:
        Attributes supplying the sort key on each side.
    window:
        Window size w >= 2: records within w-1 positions of each other in
        the merged order are paired (left-with-right only).
    key:
        Optional transform applied to the attribute before sorting (e.g.
        :func:`repro.text.patterns.award_number_suffix`). Records whose
        key is missing (or transformed to ``None``) are skipped.
    """

    short_name = "sorted_neighborhood"

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        window: int = 3,
        key: KeyFunction | None = None,
    ) -> None:
        if window < 2:
            raise BlockingError(f"window must be >= 2, got {window}")
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.window = window
        self.key = key

    def _entries(
        self, table: Table, attr: str, key_column: str, side: str
    ) -> list[tuple[str, Any, Any]]:
        out = []
        for rid, value in zip(table[key_column], table[attr]):
            if is_missing(value):
                continue
            sort_key = self.key(value) if self.key is not None else value
            if sort_key is None:
                continue
            out.append((str(sort_key), side, rid))
        return out

    def _compute_blocking(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
    ) -> CandidateSet:
        instrumentation = session.instrumentation
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        merged = self._entries(ltable, self.l_attr, l_key, "L") + self._entries(
            rtable, self.r_attr, r_key, "R"
        )
        merged.sort(key=lambda e: (e[0], e[1], str(e[2])))
        # The window loop is chunk-parallel over the merged order: each
        # chunk ships its owned slice plus w-1 look-ahead entries, and
        # in-order concatenation equals the serial loop bit for bit.
        w = self.window
        ranges = chunk_ranges(len(merged), session.workers)
        chunks = session.map_chunks(
            _window_chunk,
            [
                (merged[start : stop + w - 1], stop - start, w)
                for start, stop in ranges
            ],
            sizes=[stop - start for start, stop in ranges],
        )
        pairs = [pair for chunk in chunks for pair in chunk]
        count(instrumentation, "pairs_out", len(pairs))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)
