"""Attribute-equivalence (AE) blocker.

Keeps a pair only when the blocking attributes of both records agree
exactly. Section 7 step 1 of the case study applies this blocker to the
M1 rule: it first derives a temporary column holding the suffix of the
UMETRICS ``UniqueAwardNumber`` (via *l_preprocess*) and AE-blocks it
against USDA's ``AwardNumber``. Missing values never join.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import IncrementalBlockingError
from ..runtime.context import EngineSession
from ..runtime.instrument import count
from ..table import Table
from ..table.column import is_missing
from .base import Blocker
from .candidate_set import CandidateSet
from .policy import BlockSizePolicy, capped_keys, resolve_policy

Preprocess = Callable[[Any], Any]


class AttrEquivalenceBlocker(Blocker):
    """Equi-join blocker on one attribute per side.

    Parameters
    ----------
    l_attr, r_attr:
        Blocking attributes of the left/right tables.
    l_preprocess, r_preprocess:
        Optional cell transforms applied before comparison (e.g. extracting
        the award-number suffix). A transform returning ``None`` removes the
        record from consideration, mirroring a missing value.
    """

    short_name = "attr_equiv"
    supports_incremental = True

    def __init__(
        self,
        l_attr: str,
        r_attr: str,
        l_preprocess: Preprocess | None = None,
        r_preprocess: Preprocess | None = None,
        *,
        block_size_policy: "BlockSizePolicy | int | None" = None,
    ) -> None:
        self.l_attr = l_attr
        self.r_attr = r_attr
        self.l_preprocess = l_preprocess
        self.r_preprocess = r_preprocess
        self.block_size_policy = resolve_policy(block_size_policy)

    def incremental(
        self,
        rtable: Table,
        l_key: str,
        r_key: str,
        *,
        session: EngineSession | None = None,
    ) -> "Any":
        """Delta-maintained handle; see :mod:`repro.blocking.incremental`."""
        if self.block_size_policy.capped:
            raise IncrementalBlockingError(
                "incremental blocking does not support block-size caps; "
                "use an uncapped blocker for delta handles"
            )
        from .incremental import AttrEquivalenceIncremental

        return AttrEquivalenceIncremental(self, rtable, l_key, r_key, session=session)

    def _values(self, table: Table, attr: str, preprocess: Preprocess | None):
        values = table[attr]
        if preprocess is not None:
            values = [None if is_missing(v) else preprocess(v) for v in values]
        return values

    def _compute_blocking(
        self,
        session: EngineSession,
        ltable: Table,
        rtable: Table,
        l_key: str,
        r_key: str,
        name: str,
    ) -> CandidateSet:
        # The equi-join is a single hash pass — the session's pool is
        # available for interface uniformity but there is nothing worth
        # parallelising.
        instrumentation = session.instrumentation
        self._validate_inputs(
            ltable, rtable, l_key, r_key, [(ltable, self.l_attr), (rtable, self.r_attr)]
        )
        l_values = self._values(ltable, self.l_attr, self.l_preprocess)
        r_values = self._values(rtable, self.r_attr, self.r_preprocess)
        l_ids = ltable[l_key]
        r_ids = rtable[r_key]
        index: dict[Any, list[Any]] = {}
        for rid, value in zip(r_ids, r_values):
            if not is_missing(value):
                index.setdefault(value, []).append(rid)
        capped = capped_keys(
            {v: len(rids_) for v, rids_ in index.items()},
            self.block_size_policy,
            instrumentation,
        )
        pairs = []
        for lid, value in zip(l_ids, l_values):
            if is_missing(value):
                continue
            if value in capped:
                continue
            for rid in index.get(value, ()):
                pairs.append((lid, rid))
        count(instrumentation, "pairs_out", len(pairs))
        return CandidateSet(ltable, rtable, l_key, r_key, pairs, name=name or self.short_name)
