"""Block-size capping policy shared by every block-producing blocker.

A "block" is one posting list of an inverted index (token blockers), one
equi-join group (attribute equivalence), or one LSH bucket. At million-row
scale a handful of stop-word-like tokens own posting lists covering a
large fraction of the table, and probing them turns blocking quadratic:
the cross product of a single oversized block can dwarf every real match.
The classic fix (the ``max_block_size`` idea in dedupe-style blocking
schemes) is to *skip* oversized blocks at candidate-generation time — a
recall-bounded trade the caller opts into explicitly, sized to the data.

:class:`BlockSizePolicy` is that knob as a tiny frozen value object. Every
blocker that groups records accepts ``block_size_policy=``; the default
(``None`` / :data:`UNCAPPED`) changes nothing, keeping the paper recipe
and every golden snapshot bit-identical. When a cap is set the blocker

* drops capped tokens/values from its *probe side only* — verification
  still counts every shared token, so a pair reached through a surviving
  block is scored exactly as before;
* reports what it skipped through the session instrumentation as
  ``capped_blocks`` (distinct oversized blocks) and ``capped_postings``
  (index entries those blocks held), which the :mod:`repro.obs` metrics
  collector rolls up like any other stage counter.

Capping decisions are made on *complete* block sizes (the whole posting
list / join group), so the sharded and unsharded execution paths — where
a token's full posting always lives in exactly one shard — cap the same
blocks and stay bit-identical to each other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import BlockingError
from ..runtime.instrument import count


@dataclass(frozen=True)
class BlockSizePolicy:
    """Skip blocks holding more than ``max_block_size`` records.

    ``max_block_size=None`` (the default) means uncapped: every block is
    probed, exactly like the policy-free code path.
    """

    max_block_size: int | None = None

    def __post_init__(self) -> None:
        if self.max_block_size is not None and self.max_block_size < 1:
            raise BlockingError(
                f"max_block_size must be >= 1 or None, got {self.max_block_size}"
            )

    @property
    def capped(self) -> bool:
        """True when this policy can skip anything at all."""
        return self.max_block_size is not None

    def keeps(self, size: int) -> bool:
        """True when a block of *size* records should be probed."""
        return self.max_block_size is None or size <= self.max_block_size


#: The do-nothing default shared by all blockers.
UNCAPPED = BlockSizePolicy()


def resolve_policy(policy: "BlockSizePolicy | int | None") -> BlockSizePolicy:
    """Coerce the ``block_size_policy=`` argument blockers accept.

    ``None`` -> :data:`UNCAPPED`; a bare int is shorthand for
    ``BlockSizePolicy(max_block_size=n)`` (the factory config path).
    """
    if policy is None:
        return UNCAPPED
    if isinstance(policy, BlockSizePolicy):
        return policy
    if isinstance(policy, int) and not isinstance(policy, bool):
        return BlockSizePolicy(max_block_size=policy)
    raise BlockingError(
        f"block_size_policy must be a BlockSizePolicy, int or None, got {policy!r}"
    )


def capped_keys(
    sizes: Mapping[Any, int],
    policy: BlockSizePolicy,
    instrument: Any = None,
) -> frozenset:
    """The keys of blocks *policy* rejects, with counter accounting.

    *sizes* maps a block key (token, join value, bucket) to the complete
    block's record count. Emits the ``capped_blocks`` / ``capped_postings``
    counters (even at zero, so capped runs always expose them); returns
    ``frozenset()`` untallied for uncapped policies — the default recipe's
    metrics stay byte-for-byte unchanged.
    """
    if not policy.capped:
        return frozenset()
    cap = policy.max_block_size
    over = frozenset(k for k, n in sizes.items() if n > cap)
    count(instrument, "capped_blocks", len(over))
    count(instrument, "capped_postings", sum(sizes[k] for k in over))
    return over
