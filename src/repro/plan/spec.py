"""The :class:`PipelineSpec` IR: an EM pipeline as data.

The paper's thesis is that entity matching is a *pipeline* of how-to
steps. This module makes that pipeline a first-class, JSON-serializable
value: a DAG of :class:`NodeSpec` stage nodes (``preprocess``, ``block``,
``down_sample``, ``label``, ``extract``, ``rules``, ``train``,
``predict``, ``cluster``, ``combine``) connected by *named artifact
edges*. A node declares which artifact each input port reads and which
artifact each output port produces; the compiler
(:mod:`repro.plan.compile`) checks the wiring and runs the nodes in
topological order on an :class:`~repro.runtime.context.EngineSession`.

Two usage modes share the one IR:

* **Config mode** — every parameter is JSON data (blocker configs, rule
  names, matcher kinds). The spec round-trips through
  :meth:`PipelineSpec.to_json` / :meth:`PipelineSpec.from_json`, can be
  committed (``examples/figure10.json``), fingerprinted
  (:meth:`PipelineSpec.fingerprint`) and recorded in run manifests.
* **Object mode** — live Python objects (a fitted matcher, a
  ``FeatureSet``) are fed in as *plan inputs* at execute time, or stored
  in node params by in-process wrappers like
  :class:`repro.core.workflow.EMWorkflow`. Such specs execute the same
  but refuse :meth:`canonical` with a :class:`~repro.errors.PlanError`
  naming the offending node.

Malformed specs raise :class:`~repro.errors.PlanError` (a
:class:`~repro.errors.WorkflowError`) — a typo in a plan should fail
loudly at parse/compile time, never silently change matching output.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from ..errors import PlanError

_SCHEMA_VERSION = 1


def _check_jsonable(value: Any, where: str) -> Any:
    """Return ``value`` coerced to canonical JSON types, or raise."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_jsonable(v, where) for v in value]
    if isinstance(value, Mapping):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                raise PlanError(
                    f"{where}: mapping key {key!r} is not a string"
                )
            out[key] = _check_jsonable(val, where)
        return out
    raise PlanError(
        f"{where}: value of type {type(value).__name__} is not "
        f"JSON-serializable; pass live objects as plan inputs instead"
    )


def _str_map(obj: Any, where: str) -> dict[str, str]:
    if not isinstance(obj, Mapping):
        raise PlanError(f"{where} must be a mapping, got {type(obj).__name__}")
    out = {}
    for key, val in obj.items():
        if not isinstance(key, str) or not isinstance(val, str):
            raise PlanError(f"{where}: ports and artifacts must be strings")
        out[key] = val
    return out


@dataclass(frozen=True)
class NodeSpec:
    """One pipeline stage: a kind, its params, and its artifact wiring.

    ``inputs`` and ``outputs`` map *port names* (the node kind's
    vocabulary, e.g. ``candidates``) to *artifact names* (the plan's
    vocabulary, e.g. ``orig:C``). ``group`` assigns the node to a named
    instrumentation stage — consecutive nodes sharing a group run inside
    one ``stage(...)`` span and share one provenance collector, which is
    how the Figure-10 plan reproduces the legacy per-slice traces.
    """

    id: str
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)
    inputs: Mapping[str, str] = field(default_factory=dict)
    outputs: Mapping[str, str] = field(default_factory=dict)
    group: str | None = None

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise PlanError(f"node id must be a non-empty string, got {self.id!r}")
        if not self.kind or not isinstance(self.kind, str):
            raise PlanError(
                f"node {self.id!r}: kind must be a non-empty string"
            )

    def canonical(self) -> dict[str, Any]:
        """JSON-safe dict form; raises :class:`PlanError` on live params."""
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "params": _check_jsonable(
                dict(self.params), f"node {self.id!r} params"
            ),
            "inputs": dict(self.inputs),
            "outputs": dict(self.outputs),
        }
        if self.group is not None:
            out["group"] = self.group
        return out

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "NodeSpec":
        if not isinstance(obj, Mapping):
            raise PlanError(f"node spec must be a mapping, got {obj!r}")
        unknown = set(obj) - {"id", "kind", "params", "inputs", "outputs", "group"}
        if unknown:
            raise PlanError(
                f"node spec has unknown fields {sorted(unknown)}"
            )
        if "id" not in obj or "kind" not in obj:
            raise PlanError(f"node spec needs 'id' and 'kind': {dict(obj)!r}")
        params = obj.get("params", {})
        if not isinstance(params, Mapping):
            raise PlanError(f"node {obj['id']!r}: params must be a mapping")
        where = f"node {obj['id']!r}"
        return cls(
            id=obj["id"],
            kind=obj["kind"],
            params=dict(params),
            inputs=_str_map(obj.get("inputs", {}), f"{where} inputs"),
            outputs=_str_map(obj.get("outputs", {}), f"{where} outputs"),
            group=obj.get("group"),
        )


@dataclass(frozen=True)
class PipelineSpec:
    """A named DAG of :class:`NodeSpec` nodes plus its external contract.

    ``inputs`` names the artifacts the caller must provide at execute
    time; ``outputs`` maps exported result names to internal artifact
    names. Node order in ``nodes`` is only a tiebreak — execution order
    comes from the artifact edges — but it is preserved canonically so
    serialization round-trips bit-identically.
    """

    name: str
    nodes: tuple[NodeSpec, ...] = ()
    inputs: tuple[str, ...] = ()
    outputs: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise PlanError(f"plan name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "inputs", tuple(self.inputs))
        seen: set[str] = set()
        for node in self.nodes:
            if node.id in seen:
                raise PlanError(f"duplicate node id {node.id!r} in plan {self.name!r}")
            seen.add(node.id)

    # -- lookup helpers ------------------------------------------------

    def node(self, node_id: str) -> NodeSpec:
        for node in self.nodes:
            if node.id == node_id:
                return node
        raise PlanError(f"plan {self.name!r} has no node {node_id!r}")

    def producers(self) -> dict[str, NodeSpec]:
        """artifact name -> the node that produces it (uniqueness checked)."""
        out: dict[str, NodeSpec] = {}
        for node in self.nodes:
            for artifact in node.outputs.values():
                if artifact in out:
                    raise PlanError(
                        f"artifact {artifact!r} produced by both "
                        f"{out[artifact].id!r} and {node.id!r}"
                    )
                if artifact in self.inputs:
                    raise PlanError(
                        f"artifact {artifact!r} is both a plan input and an "
                        f"output of node {node.id!r}"
                    )
                out[artifact] = node
        return out

    # -- derivation helpers --------------------------------------------

    def with_name(self, name: str) -> "PipelineSpec":
        return replace(self, name=name)

    def replace_node(self, node_id: str, **changes: Any) -> "PipelineSpec":
        """A copy with one node rebuilt via :func:`dataclasses.replace`."""
        self.node(node_id)  # raise early on unknown id
        nodes = tuple(
            replace(n, **changes) if n.id == node_id else n for n in self.nodes
        )
        return replace(self, nodes=nodes)

    def without_nodes(self, node_ids: Iterable[str]) -> "PipelineSpec":
        """Drop nodes, promoting their outputs to plan inputs.

        Used to e.g. strip the ``train`` node from the Figure-10 spec
        when a caller supplies an already-fitted matcher: the dropped
        node's output artifacts become the caller's responsibility.
        """
        drop = set(node_ids)
        unknown = drop - {n.id for n in self.nodes}
        if unknown:
            raise PlanError(
                f"plan {self.name!r} has no nodes {sorted(unknown)}"
            )
        promoted: list[str] = []
        kept: list[NodeSpec] = []
        for node in self.nodes:
            if node.id in drop:
                promoted.extend(node.outputs.values())
            else:
                kept.append(node)
        consumed = {a for n in kept for a in n.inputs.values()}
        consumed.update(self.outputs.values())
        new_inputs = tuple(self.inputs) + tuple(
            a for a in promoted if a in consumed and a not in self.inputs
        )
        return replace(self, nodes=tuple(kept), inputs=new_inputs)

    # -- serialization -------------------------------------------------

    def canonical(self) -> dict[str, Any]:
        """Canonical JSON-safe dict: the fingerprint/manifest form."""
        return {
            "schema_version": _SCHEMA_VERSION,
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": dict(self.outputs),
            "nodes": [node.canonical() for node in self.nodes],
        }

    def to_dict(self) -> dict[str, Any]:
        return self.canonical()

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.canonical(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "PipelineSpec":
        if not isinstance(obj, Mapping):
            raise PlanError(f"plan spec must be a mapping, got {obj!r}")
        unknown = set(obj) - {
            "schema_version", "name", "inputs", "outputs", "nodes",
        }
        if unknown:
            raise PlanError(f"plan spec has unknown fields {sorted(unknown)}")
        if "name" not in obj:
            raise PlanError("plan spec is missing 'name'")
        nodes_obj = obj.get("nodes", [])
        if not isinstance(nodes_obj, (list, tuple)):
            raise PlanError("plan 'nodes' must be a list")
        inputs_obj = obj.get("inputs", [])
        if not isinstance(inputs_obj, (list, tuple)) or not all(
            isinstance(a, str) for a in inputs_obj
        ):
            raise PlanError("plan 'inputs' must be a list of artifact names")
        return cls(
            name=obj["name"],
            nodes=tuple(NodeSpec.from_dict(n) for n in nodes_obj),
            inputs=tuple(inputs_obj),
            outputs=_str_map(obj.get("outputs", {}), "plan outputs"),
        )

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"plan spec is not valid JSON: {exc}") from exc
        return cls.from_dict(obj)

    @classmethod
    def load(cls, path: Any) -> "PipelineSpec":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def dump(self, path: Any) -> Any:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")
        return path

    # -- fingerprints --------------------------------------------------

    def fingerprint(self) -> str:
        """Content fingerprint of the whole plan (canonical form)."""
        from ..store.fingerprint import fingerprint_value

        return fingerprint_value(self.canonical())

    def node_fingerprints(self) -> dict[str, str]:
        """Per-node content fingerprints keyed by node id.

        These derive from each node's canonical serialization, so a
        one-node edit changes exactly one fingerprint — the property
        ``trace diff`` uses to attribute count changes to node edits.
        """
        from ..store.fingerprint import fingerprint_value

        return {
            node.id: fingerprint_value(node.canonical()) for node in self.nodes
        }
