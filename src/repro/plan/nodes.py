"""Node-kind registry: how each :class:`~repro.plan.spec.NodeSpec` runs.

Every node kind is a :class:`NodeKind` — a ``run(node, ins, ctx)``
function plus an optional compile-time ``prepare(node)`` validator —
registered in :data:`NODE_KINDS`. Runners resolve declarative params
through the per-family registries (blockers, matchers, rules, features,
samplers) and delegate the actual work to the *existing*
:class:`~repro.runtime.context.StageOperator` objects in
:mod:`repro.store.stages` via ``ctx.session.run_stage`` — so store
fingerprints, trace names and counters are byte-for-byte those of the
legacy hand-wired pipeline.

Input ports may carry either live objects (wired in by in-process
wrappers, or supplied as plan inputs) or be absent in favor of
JSON params (``{"blocker": {...config...}}``); both paths build
value-equal stage operators.

Third-party stages join via :func:`register_node_kind` — ROADMAP items 4
(weak supervision) and 5 (collective EM) are "register a node kind and
write a spec", not new plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..errors import PlanError, WorkflowError
from .spec import NodeSpec


@dataclass(frozen=True)
class ExecContext:
    """What a node runner sees beyond its own inputs."""

    session: Any
    collector: Any = None  # provenance collector for this node's group
    plan_name: str = ""


Runner = Callable[[NodeSpec, dict[str, Any], ExecContext], Mapping[str, Any]]


@dataclass(frozen=True)
class NodeKind:
    """A registered node kind: runner + optional eager validator."""

    name: str
    run: Runner
    prepare: Callable[[NodeSpec], None] | None = None


#: kind name -> NodeKind. Extend via :func:`register_node_kind`.
NODE_KINDS: dict[str, NodeKind] = {}


def register_node_kind(
    name: str,
    run: Runner,
    prepare: Callable[[NodeSpec], None] | None = None,
) -> None:
    """Register a node kind (overwriting an existing kind fails)."""
    if name in NODE_KINDS:
        raise PlanError(f"node kind {name!r} is already registered")
    NODE_KINDS[name] = NodeKind(name=name, run=run, prepare=prepare)


# ---------------------------------------------------------------------
# shared input plumbing


def _require(ins: Mapping[str, Any], node: NodeSpec, port: str) -> Any:
    if port not in ins:
        raise PlanError(
            f"node {node.id!r} ({node.kind}) needs an input wired to port "
            f"{port!r}; wired ports: {sorted(node.inputs)}"
        )
    return ins[port]


def _table_pair(node: NodeSpec, ins: Mapping[str, Any]) -> tuple:
    """Resolve ``(ltable, rtable, l_key, r_key)`` from a node's inputs.

    Accepts either one ``tables`` port carrying a
    :class:`~repro.casestudy.preprocess.ProjectedTables`-style object
    (``umetrics``/``usda``/``l_key``/``r_key``) or separate
    ``ltable``/``rtable`` ports with keys from params or a ``keys`` port.
    """
    if "tables" in ins:
        t = ins["tables"]
        return t.umetrics, t.usda, t.l_key, t.r_key
    ltable = _require(ins, node, "ltable")
    rtable = _require(ins, node, "rtable")
    keys = ins.get("keys")
    if keys is not None:
        l_key, r_key = keys
    else:
        l_key = node.params.get("l_key")
        r_key = node.params.get("r_key")
    if l_key is None or r_key is None:
        raise PlanError(
            f"node {node.id!r} ({node.kind}) needs keys: wire a 'keys' "
            f"input or set 'l_key'/'r_key' params"
        )
    return ltable, rtable, l_key, r_key


def _feature_set(node: NodeSpec, ins: Mapping[str, Any], ltable, rtable) -> Any:
    if "feature_set" in ins:
        return ins["feature_set"]
    config = node.params.get("features")
    if config is None:
        raise PlanError(
            f"node {node.id!r} ({node.kind}) needs a feature set: wire a "
            f"'feature_set' input or set a 'features' param"
        )
    from ..features.factory import create_feature_set

    return create_feature_set(config, ltable, rtable)


# ---------------------------------------------------------------------
# node runners


def _run_preprocess(node, ins, ctx):
    from ..casestudy.preprocess import preprocess, preprocess_extra

    scenario = _require(ins, node, "scenario")
    variant = node.params.get("variant", "projected")
    include_pn = bool(node.params.get("include_project_number", True))
    if variant in ("projected", "projected_v2"):
        if variant == "projected":
            include_pn = bool(node.params.get("include_project_number", False))
        tables = preprocess(scenario, include_project_number=include_pn)
    elif variant == "projected_extra":
        tables = preprocess_extra(scenario, include_project_number=include_pn)
    else:
        raise PlanError(
            f"node {node.id!r}: unknown preprocess variant {variant!r}"
        )
    return {"tables": tables}


def _run_block(node, ins, ctx):
    from ..store.stages import BlockStage

    ltable, rtable, l_key, r_key = _table_pair(node, ins)
    blocker = ins.get("blocker")
    if blocker is None:
        blocker = node.params.get("blocker")
    if blocker is None:
        raise PlanError(
            f"node {node.id!r} (block) needs a blocker: wire a 'blocker' "
            f"input or set a 'blocker' param (config or instance)"
        )
    if isinstance(blocker, Mapping):
        from ..blocking.factory import create_blocker

        blocker = create_blocker(blocker)
    trace = node.params.get("trace", f"block:{blocker.short_name}")
    candidates = ctx.session.run_stage(
        BlockStage(
            blocker, ltable, rtable, l_key, r_key,
            name=node.params.get("name", ""), trace_name=trace,
        ),
        provenance=ctx.collector,
    )
    return {"candidates": candidates}


def _prepare_block(node: NodeSpec) -> None:
    blocker = node.params.get("blocker")
    if isinstance(blocker, Mapping):
        from ..blocking.factory import BLOCKER_REGISTRY, BlockerConfig

        cfg = BlockerConfig.parse(blocker)
        if cfg.kind not in BLOCKER_REGISTRY:
            raise PlanError(
                f"node {node.id!r}: unknown blocker kind {cfg.kind!r}; "
                f"available: {sorted(BLOCKER_REGISTRY)}"
            )


def _resolve_rules(node: NodeSpec, ins: Mapping[str, Any], mode: str) -> list:
    if "rules" in ins:
        return list(ins["rules"])
    configs = node.params.get("rules", [])
    from ..rules.factory import create_negative_rules, create_positive_rules

    if mode == "negative":
        return create_negative_rules(configs)
    return create_positive_rules(configs)


def _run_rules(node, ins, ctx):
    mode = node.params.get("mode", "positive")
    rules = _resolve_rules(node, ins, mode)
    if mode == "positive":
        from ..store.stages import SureMatchStage

        ltable, rtable, l_key, r_key = _table_pair(node, ins)
        matches = ctx.session.run_stage(
            SureMatchStage(
                rules, ltable, rtable, l_key, r_key,
                name=node.params.get("name", "sure_matches"),
                trace_name=node.params.get("trace"),
            ),
            provenance=ctx.collector,
        )
        return {"matches": matches}
    if mode == "negative":
        from ..rules.negative import apply_negative_rules

        matches = _require(ins, node, "matches")
        candidates = _require(ins, node, "candidates")
        if rules:
            kept, flipped = apply_negative_rules(matches, candidates, rules)
        else:
            kept, flipped = list(matches), []
        return {"kept": kept, "flipped": flipped}
    raise PlanError(f"node {node.id!r}: unknown rules mode {mode!r}")


def _run_down_sample(node, ins, ctx):
    from ..labeling.factory import create_sampler

    table_a = _require(ins, node, "table_a")
    table_b = _require(ins, node, "table_b")
    params = dict(node.params)
    params.setdefault("kind", "corleone")
    params.setdefault("seed", ctx.session.seed)
    sampler = create_sampler(params)
    if getattr(sampler, "mode", None) != "tables":
        raise PlanError(
            f"node {node.id!r}: down_sample needs a 'tables'-mode sampler"
        )
    sampled_a, sampled_b = sampler.sample_tables(
        table_a, table_b, session=ctx.session
    )
    return {"table_a": sampled_a, "table_b": sampled_b}


def _run_label(node, ins, ctx):
    protocol = node.params.get("protocol", "section8")
    if protocol != "section8":
        raise PlanError(
            f"node {node.id!r}: unknown labeling protocol {protocol!r}"
        )
    from ..casestudy.sampling import run_sampling_and_labeling

    candidates = _require(ins, node, "candidates")
    truth = _require(ins, node, "truth")
    ltable = getattr(candidates, "ltable", None)
    rtable = getattr(candidates, "rtable", None)
    feature_set = _feature_set(node, ins, ltable, rtable)
    seed = node.params.get("seed", ctx.session.seed)
    rounds = tuple(node.params.get("rounds", (100, 100, 100)))
    outcome = run_sampling_and_labeling(
        candidates, truth, feature_set, seed=seed, rounds=rounds
    )
    return {"labels": outcome.labels, "outcome": outcome}


def _run_extract(node, ins, ctx):
    from ..store.stages import ExtractStage

    candidates = _require(ins, node, "candidates")
    pairs = ins.get("pairs")
    feature_set = _feature_set(
        node, ins, getattr(candidates, "ltable", None),
        getattr(candidates, "rtable", None),
    )
    if node.params.get("skip_empty") and pairs is None and not len(candidates):
        # The legacy workflow never touches the store (or opens the
        # extract stage) for an empty prediction set; mirror that so
        # store ledgers and traces stay bit-identical.
        return {"matrix": None, "feature_set": feature_set}
    matrix = ctx.session.run_stage(
        ExtractStage(candidates, feature_set, pairs=pairs)
    )
    return {"matrix": matrix, "feature_set": feature_set}


def _resolve_matcher(node: NodeSpec, ins: Mapping[str, Any]) -> Any:
    if "matcher" in ins:
        return ins["matcher"]
    config = node.params.get("matcher")
    if config is None:
        raise PlanError(
            f"node {node.id!r} ({node.kind}) needs a matcher: wire a "
            f"'matcher' input or set a 'matcher' param"
        )
    from ..matchers.factory import create_matcher

    return create_matcher(config)


def _run_train(node, ins, ctx):
    protocol = node.params.get("protocol", "fit")
    matcher = _resolve_matcher(node, ins)
    if protocol == "workflow_matcher":
        # Section 9 / train_workflow_matcher semantics: drop Unsure pairs
        # and the M1 sure matches, extract over the surviving pairs, fit
        # a clone under the fit_matcher stage.
        from ..casestudy.matching import sure_match_pairs, training_labels
        from ..runtime.instrument import stage
        from ..store.stages import ExtractStage

        candidates = _require(ins, node, "candidates")
        labels = _require(ins, node, "labels")
        feature_set = _feature_set(
            node, ins, getattr(candidates, "ltable", None),
            getattr(candidates, "rtable", None),
        )
        sure = sure_match_pairs(candidates)
        pairs, y = training_labels(labels, sure)
        matrix = ctx.session.run_stage(
            ExtractStage(candidates, feature_set, pairs=pairs)
        )
        with stage(ctx.session.instrumentation, "fit_matcher"):
            trained = matcher.clone()
            trained.fit(matrix, y)
        return {"matcher": trained}
    if protocol == "fit":
        from ..runtime.instrument import stage

        matrix = _require(ins, node, "matrix")
        y = _require(ins, node, "labels")
        with stage(ctx.session.instrumentation, "fit_matcher"):
            trained = matcher.clone()
            trained.fit(matrix, y)
        return {"matcher": trained}
    raise PlanError(f"node {node.id!r}: unknown train protocol {protocol!r}")


def _run_predict(node, ins, ctx):
    from ..store.stages import PredictStage

    matcher = _resolve_matcher(node, ins)
    matrix = _require(ins, node, "matrix")
    if not getattr(matcher, "is_fitted", True):
        raise WorkflowError(
            f"node {node.id!r} needs a trained matcher; "
            f"{matcher.name!r} is unfitted"
        )
    if matrix is None:
        return {"matches": []}
    predicted = ctx.session.run_stage(
        PredictStage(
            matcher, matrix,
            trace_name=node.params.get("trace", "predict"),
            cached=bool(node.params.get("cached", True)),
        )
    )
    if ctx.collector is not None:
        ctx.collector.record_scores(matcher.predict_proba(matrix))
    return {"matches": predicted}


def _run_combine(node, ins, ctx):
    op = node.params.get("op")
    if op == "union":
        from ..blocking.combiner import union_candidates

        parts = [ins[port] for port in node.inputs]
        return {
            "candidates": union_candidates(
                parts, name=node.params.get("name", "")
            )
        }
    if op == "difference":
        from ..runtime.instrument import count

        left = _require(ins, node, "left")
        right = _require(ins, node, "right")
        result = left.difference(right, name=node.params.get("name", ""))
        counter = node.params.get("count_left")
        if counter:
            count(ctx.session.instrumentation, counter, len(left))
        return {"candidates": result}
    if op == "finalize_matches":
        sure = _require(ins, node, "sure")
        kept = _require(ins, node, "kept")
        final = list(sure.pairs) + [p for p in kept if p not in sure]
        if ctx.collector is not None:
            ctx.collector.record_outcome(
                ins.get("predicted", ()), ins.get("flipped", ()), final
            )
        return {"matches": final}
    if op == "merge_match_sets":
        from ..core.patch import merge_match_sets

        parts = []
        for port in node.inputs:
            value = ins[port]
            parts.append(getattr(value, "pairs", value))
        return {"matches": merge_match_sets(parts)}
    raise PlanError(f"node {node.id!r}: unknown combine op {op!r}")


def _prepare_combine(node: NodeSpec) -> None:
    if node.params.get("op") not in (
        "union", "difference", "finalize_matches", "merge_match_sets"
    ):
        raise PlanError(
            f"node {node.id!r}: combine needs an 'op' param of "
            f"union/difference/finalize_matches/merge_match_sets, got "
            f"{node.params.get('op')!r}"
        )


def _run_cluster(node, ins, ctx):
    method = node.params.get("method", "connected_components")
    matches = _require(ins, node, "matches")
    matches = getattr(matches, "pairs", matches)
    if method == "connected_components":
        from ..clustering.cluster_match import cluster_by_links

        ids = sorted({x for pair in matches for x in pair})
        return {"clusters": cluster_by_links(ids, [tuple(p) for p in matches])}
    if method == "one_to_one":
        from ..clustering.graph import optimal_one_to_one

        return {"clusters": optimal_one_to_one(matches)}
    raise PlanError(f"node {node.id!r}: unknown cluster method {method!r}")


register_node_kind("preprocess", _run_preprocess)
register_node_kind("block", _run_block, prepare=_prepare_block)
register_node_kind("rules", _run_rules)
register_node_kind("down_sample", _run_down_sample)
register_node_kind("label", _run_label)
register_node_kind("extract", _run_extract)
register_node_kind("train", _run_train)
register_node_kind("predict", _run_predict)
register_node_kind("combine", _run_combine, prepare=_prepare_combine)
register_node_kind("cluster", _run_cluster)
