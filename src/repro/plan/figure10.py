"""The paper's Figure-9/10 combined workflow as a single pipeline spec.

This is *the* recipe — previously hand-wired in three places
(``run_combined_workflow``, the ``MatchService`` CLI bootstrap, and the
benches) — now declared once. :func:`figure10_spec` grows PR 9's
``default_plan_configs()`` (blockers only) into the full pipeline: train
the Section-9 matcher, run rules + blocking + prediction + negative
rules over the original and extra table slices, and merge the final
match sets.

The default spec is pure config (JSON-serializable; committed as
``examples/figure10.json``); callers may substitute live blocker
instances, which keeps execution identical but makes the spec
object-mode only.

:func:`recipe_from_spec` walks a spec back into the (blockers, positive
rules, negative rules) triple that slice-level consumers like
:class:`repro.serving.MatchService` need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Sequence

from ..errors import PlanError
from .spec import NodeSpec, PipelineSpec

_SLICES = (
    ("orig", "tables", "original_slice"),
    ("extra", "extra_tables", "extra_slice"),
)

#: the two Section-12 negative-rule clauses, in recipe order.
DEFAULT_NEGATIVE_RULES = (
    "comparable_award_numbers_differ",
    "comparable_project_numbers_differ",
)

#: the revised (Section-10) positive match definition.
DEFAULT_POSITIVE_RULES = ("m1", "award_project")


def _slice_nodes(
    prefix: str,
    tables_artifact: str,
    group: str,
    blockers: Sequence[Any],
    negative_rules: Sequence[Any],
) -> list[NodeSpec]:
    """One table slice of the combined workflow (Figure 10, steps 1-6)."""
    a = lambda suffix: f"{prefix}.{suffix}"  # noqa: E731 - artifact namer
    nodes = [
        NodeSpec(
            id=f"{prefix}_c1",
            kind="rules",
            params={
                "mode": "positive",
                "rules": list(DEFAULT_POSITIVE_RULES),
                "name": "C1",
                "trace": "positive_rules",
            },
            inputs={"tables": tables_artifact},
            outputs={"matches": a("c1")},
            group=group,
        )
    ]
    for i, blocker in enumerate(blockers):
        nodes.append(
            NodeSpec(
                id=f"{prefix}_block_{i}",
                kind="block",
                params={"blocker": blocker},
                inputs={"tables": tables_artifact},
                outputs={"candidates": a(f"b{i}")},
                group=group,
            )
        )
    union_inputs = {"c1": a("c1")}
    union_inputs.update({f"b{i}": a(f"b{i}") for i in range(len(blockers))})
    nodes += [
        NodeSpec(
            id=f"{prefix}_c2",
            kind="combine",
            params={"op": "union", "name": "C2"},
            inputs=union_inputs,
            outputs={"candidates": a("c2")},
            group=group,
        ),
        NodeSpec(
            id=f"{prefix}_c",
            kind="combine",
            # count_left records the legacy "candidates" counter: |C2|.
            params={"op": "difference", "name": "C", "count_left": "candidates"},
            inputs={"left": a("c2"), "right": a("c1")},
            outputs={"candidates": a("c")},
            group=group,
        ),
        NodeSpec(
            id=f"{prefix}_extract",
            kind="extract",
            params={"skip_empty": True},
            inputs={"candidates": a("c"), "feature_set": "feature_set"},
            outputs={"matrix": a("matrix")},
            group=group,
        ),
        NodeSpec(
            id=f"{prefix}_predict",
            kind="predict",
            inputs={"matcher": "matcher", "matrix": a("matrix")},
            outputs={"matches": a("predicted")},
            group=group,
        ),
        NodeSpec(
            id=f"{prefix}_negative",
            kind="rules",
            params={"mode": "negative", "rules": list(negative_rules)},
            inputs={"matches": a("predicted"), "candidates": a("c")},
            outputs={"kept": a("kept"), "flipped": a("flipped")},
            group=group,
        ),
        NodeSpec(
            id=f"{prefix}_final",
            kind="combine",
            params={"op": "finalize_matches"},
            inputs={
                "sure": a("c1"),
                "kept": a("kept"),
                "predicted": a("predicted"),
                "flipped": a("flipped"),
            },
            outputs={"matches": a("final")},
            group=group,
        ),
    ]
    return nodes


def figure10_spec(
    with_negative_rules: bool = True,
    blockers: Sequence[Any] | None = None,
) -> PipelineSpec:
    """The combined Figure-10 (or, without negative rules, Figure-9) plan.

    *blockers* substitutes the Section-7 blocking plan — a list of
    factory configs (JSON mode) or live blocker instances (object
    mode); ``None`` uses the paper recipe
    (:func:`repro.blocking.factory.default_plan_configs`).
    """
    if blockers is None:
        from ..blocking.factory import default_plan_configs

        blockers = default_plan_configs()
    blockers = list(blockers)
    negative = list(DEFAULT_NEGATIVE_RULES) if with_negative_rules else []
    nodes = [
        NodeSpec(
            id="train",
            kind="train",
            params={"protocol": "workflow_matcher"},
            inputs={
                "candidates": "candidates",
                "labels": "labels",
                "feature_set": "feature_set",
                "matcher": "matcher_proto",
            },
            outputs={"matcher": "matcher"},
        )
    ]
    for prefix, tables_artifact, group in _SLICES:
        nodes += _slice_nodes(prefix, tables_artifact, group, blockers, negative)
    nodes.append(
        NodeSpec(
            id="merge",
            kind="combine",
            params={"op": "merge_match_sets"},
            inputs={
                "sure_original": "orig.c1",
                "sure_extra": "extra.c1",
                "kept_original": "orig.kept",
                "kept_extra": "extra.kept",
            },
            outputs={"matches": "matches"},
        )
    )
    outputs = {"matches": "matches", "trained_matcher": "matcher"}
    for prefix, _, _ in _SLICES:
        name = "original" if prefix == "orig" else prefix
        outputs.update(
            {
                f"{name}_sure": f"{prefix}.c1",
                f"{name}_blocked": f"{prefix}.c2",
                f"{name}_to_predict": f"{prefix}.c",
                f"{name}_predicted": f"{prefix}.predicted",
                f"{name}_flipped": f"{prefix}.flipped",
                f"{name}_matches": f"{prefix}.final",
            }
        )
    return PipelineSpec(
        name="figure10" if with_negative_rules else "figure9",
        nodes=tuple(nodes),
        inputs=(
            "tables", "extra_tables", "candidates", "labels",
            "feature_set", "matcher_proto",
        ),
        outputs=outputs,
    )


def strip_negative_rules(spec: PipelineSpec) -> PipelineSpec:
    """The Figure-9 variant of *spec*: negative-rule nodes become no-ops.

    Emptying the rule list (rather than removing the nodes) keeps the
    artifact wiring — and with it every downstream edge — untouched;
    ``apply_negative_rules`` with no rules keeps every match, exactly
    like the legacy ``with_negative_rules=False`` path.
    """
    nodes = tuple(
        replace(n, params={**dict(n.params), "rules": []})
        if n.kind == "rules" and n.params.get("mode", "positive") == "negative"
        else n
        for n in spec.nodes
    )
    name = "figure9" if spec.name == "figure10" else spec.name
    return replace(spec, nodes=nodes, name=name)


def drop_train_nodes(spec: PipelineSpec) -> PipelineSpec:
    """Strip every ``train`` node, promoting its outputs to plan inputs.

    Used when the caller supplies an already-fitted matcher (the legacy
    ``run_combined_workflow(matcher=...)`` contract)."""
    train_ids = [n.id for n in spec.nodes if n.kind == "train"]
    return spec.without_nodes(train_ids) if train_ids else spec


@dataclass(frozen=True)
class PlanRecipe:
    """A spec's per-slice recipe: what slice-level consumers need."""

    blockers: tuple
    positive_rules: tuple
    negative_rules: tuple


def _materialize_blocker(value: Any) -> Any:
    if isinstance(value, Mapping):
        from ..blocking.factory import create_blocker

        return create_blocker(value)
    return value


def recipe_from_spec(spec: PipelineSpec) -> PlanRecipe:
    """Extract (blockers, positive rules, negative rules) from a spec.

    Reads the *first* slice containing block nodes (node declaration
    order), resolving configs through the family registries — the single
    source the ``MatchService`` bootstrap and the Section-7 blocking plan
    derive from. Rules wired through input ports (rather than params)
    cannot be resolved statically and raise :class:`PlanError`.
    """
    block_nodes = [n for n in spec.nodes if n.kind == "block"]
    if not block_nodes:
        raise PlanError(f"plan {spec.name!r} has no block nodes")
    slice_group = block_nodes[0].group
    in_slice = [n for n in spec.nodes if n.group == slice_group]
    blockers = tuple(
        _materialize_blocker(
            n.params.get("blocker")
            if n.params.get("blocker") is not None
            else _port_error(n, "blocker")
        )
        for n in in_slice
        if n.kind == "block"
    )

    def _rules(mode: str, create) -> tuple:
        for node in in_slice:
            if node.kind == "rules" and node.params.get("mode", "positive") == mode:
                if "rules" in node.inputs:
                    _port_error(node, "rules")
                configs = node.params.get("rules", [])
                if configs and not isinstance(configs[0], str) and not isinstance(
                    configs[0], Mapping
                ):
                    return tuple(configs)  # live rule objects
                return tuple(create(configs))
        return ()

    from ..rules.factory import create_negative_rules, create_positive_rules

    return PlanRecipe(
        blockers=blockers,
        positive_rules=_rules("positive", create_positive_rules),
        negative_rules=_rules("negative", create_negative_rules),
    )


def _port_error(node: NodeSpec, what: str) -> Any:
    raise PlanError(
        f"node {node.id!r} wires {what!r} through an input port; "
        f"a static recipe needs it in params"
    )


def figure10_workflow(spec: PipelineSpec | None = None, *, name: str | None = None):
    """One table slice of *spec* as an :class:`~repro.core.EMWorkflow`.

    The slice-level consumers (packaging, the serving-vs-rerun bench)
    need an ``EMWorkflow`` object; deriving it from the spec via
    :func:`recipe_from_spec` keeps the recipe single-sourced instead of
    re-wiring blockers and rules by hand at each call site.
    """
    from ..core.workflow import EMWorkflow

    spec = spec if spec is not None else figure10_spec()
    recipe = recipe_from_spec(spec)
    return EMWorkflow(
        name=name if name is not None else spec.name,
        positive_rules=list(recipe.positive_rules),
        blockers=list(recipe.blockers),
        negative_rules=list(recipe.negative_rules),
    )
