"""Declarative pipeline plans: one IR for every EM pipeline.

The :class:`PipelineSpec` IR (:mod:`repro.plan.spec`) describes an EM
pipeline as a DAG of stage nodes with named artifact edges;
:func:`compile_plan` (:mod:`repro.plan.compile`) validates it and
executes it on an :class:`~repro.runtime.context.EngineSession`;
:data:`NODE_KINDS` (:mod:`repro.plan.nodes`) maps each node kind onto
the existing :class:`~repro.runtime.context.StageOperator` machinery;
and :func:`figure10_spec` (:mod:`repro.plan.figure10`) is the paper's
combined workflow as the one shared recipe.

See ``docs/pipeline.md`` for the IR reference and how to register a
custom node kind.
"""

from .compile import CompiledPlan, PlanResult, compile_plan
from .figure10 import (
    DEFAULT_NEGATIVE_RULES,
    DEFAULT_POSITIVE_RULES,
    PlanRecipe,
    drop_train_nodes,
    figure10_spec,
    figure10_workflow,
    recipe_from_spec,
    strip_negative_rules,
)
from .nodes import NODE_KINDS, ExecContext, NodeKind, register_node_kind
from .spec import NodeSpec, PipelineSpec

__all__ = [
    "CompiledPlan",
    "DEFAULT_NEGATIVE_RULES",
    "DEFAULT_POSITIVE_RULES",
    "ExecContext",
    "NODE_KINDS",
    "NodeKind",
    "NodeSpec",
    "PipelineSpec",
    "PlanRecipe",
    "PlanResult",
    "compile_plan",
    "drop_train_nodes",
    "figure10_spec",
    "figure10_workflow",
    "recipe_from_spec",
    "register_node_kind",
    "strip_negative_rules",
]
