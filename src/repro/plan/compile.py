"""Compile a :class:`~repro.plan.spec.PipelineSpec` and execute its DAG.

:func:`compile_plan` validates the spec eagerly — unknown node kinds,
duplicate artifact producers, missing artifact edges and dependency
cycles all raise :class:`~repro.errors.PlanError` *before* any stage
runs — and fixes the execution order: a topological sort that follows
declaration order whenever it is itself a valid topological order, so a
spec listing its nodes in pipeline order executes (and traces) exactly
in that order.

:meth:`CompiledPlan.execute` then runs each node on an
:class:`~repro.runtime.context.EngineSession` with explicit artifact
passing: a plain ``{artifact name: value}`` environment seeded from the
caller's ``inputs`` and extended by each node's outputs. Store
memoization, tracing, counters and provenance all happen inside the
node runners via ``session.run_stage`` — the executor only adds the
*group* structure: consecutive nodes sharing a ``group`` run inside one
instrumentation stage span and (under ``provenance=True``) share one
fresh :class:`~repro.obs.provenance.MatchProvenance` collector, which is
how the Figure-10 plan reproduces the legacy per-slice stage trees and
lineage exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import PlanError
from .nodes import NODE_KINDS, ExecContext, NodeKind
from .spec import NodeSpec, PipelineSpec


def compile_plan(spec: PipelineSpec) -> "CompiledPlan":
    """Validate *spec* and return an executable :class:`CompiledPlan`."""
    kinds: dict[str, NodeKind] = {}
    for node in spec.nodes:
        kind = NODE_KINDS.get(node.kind)
        if kind is None:
            raise PlanError(
                f"unknown node kind {node.kind!r} (node {node.id!r}); "
                f"available: {sorted(NODE_KINDS)}"
            )
        kinds[node.id] = kind
        if kind.prepare is not None:
            kind.prepare(node)

    producers = spec.producers()  # raises on duplicate producers
    for node in spec.nodes:
        for port, artifact in node.inputs.items():
            if artifact not in producers and artifact not in spec.inputs:
                raise PlanError(
                    f"node {node.id!r} input port {port!r} reads artifact "
                    f"{artifact!r}, but no node produces it and it is not a "
                    f"declared plan input — missing edge"
                )

    # Declaration-order-stable topological sort: repeatedly run the first
    # declared node whose input artifacts are all available.
    available = set(spec.inputs)
    remaining = list(spec.nodes)
    order: list[NodeSpec] = []
    while remaining:
        ready = next(
            (
                n for n in remaining
                if all(a in available for a in n.inputs.values())
            ),
            None,
        )
        if ready is None:
            cycle = sorted(n.id for n in remaining)
            raise PlanError(
                f"plan {spec.name!r} has a dependency cycle among nodes "
                f"{cycle}"
            )
        remaining.remove(ready)
        order.append(ready)
        available.update(ready.outputs.values())
    return CompiledPlan(spec=spec, order=tuple(order), _kinds=kinds)


@dataclass(frozen=True)
class PlanResult:
    """Everything one plan execution produced."""

    spec: PipelineSpec
    #: every artifact computed (plus the caller-supplied inputs).
    artifacts: dict[str, Any]
    #: provenance collectors, keyed by node group (empty unless enabled).
    collectors: dict[str, Any] = field(default_factory=dict)
    #: node ids in execution order.
    order: tuple[str, ...] = ()

    @property
    def outputs(self) -> dict[str, Any]:
        """The spec's exported outputs, by exported name."""
        return {
            name: self.artifacts[artifact]
            for name, artifact in self.spec.outputs.items()
            if artifact in self.artifacts
        }

    def __getitem__(self, name: str) -> Any:
        """An exported output by name (falls back to raw artifact names)."""
        artifact = self.spec.outputs.get(name, name)
        try:
            return self.artifacts[artifact]
        except KeyError:
            raise PlanError(
                f"plan {self.spec.name!r} produced no artifact {name!r}"
            ) from None


@dataclass(frozen=True)
class CompiledPlan:
    """A validated spec with a fixed execution order."""

    spec: PipelineSpec
    order: tuple[NodeSpec, ...]
    _kinds: dict[str, NodeKind] = field(repr=False, default_factory=dict)

    def _collector_factory(self, policy, collector_name):
        if policy is None or policy is False:
            return lambda group: None
        if policy is True:
            from ..obs.provenance import MatchProvenance

            made: dict[str, Any] = {}

            def fresh(group):
                # One fresh collector per named group; ungrouped nodes
                # run without lineage (matching the legacy combined
                # workflow, where only the per-slice runs collect).
                if group is None:
                    return None
                if group not in made:
                    made[group] = MatchProvenance(
                        collector_name or self.spec.name
                    )
                return made[group]

            return fresh
        return lambda group: policy  # explicit collector, shared

    def execute(
        self,
        session: Any = None,
        *,
        inputs: Mapping[str, Any] | None = None,
        provenance: Any = None,
        collector_name: str | None = None,
    ) -> PlanResult:
        """Run the DAG; returns every artifact plus exported outputs.

        ``provenance`` follows the workflow convention: ``None`` inherits
        the session policy, ``False`` disables lineage, ``True`` builds a
        fresh collector per node group, and an explicit collector object
        is shared by every node.
        """
        from ..runtime.context import resolve_session
        from ..runtime.instrument import stage

        resolved = resolve_session(session)
        env: dict[str, Any] = dict(inputs or {})
        consumed = {a for n in self.order for a in n.inputs.values()}
        missing = [
            a for a in self.spec.inputs if a in consumed and a not in env
        ]
        if missing:
            raise PlanError(
                f"plan {self.spec.name!r} needs input artifacts "
                f"{sorted(missing)}; got {sorted(env)}"
            )

        policy = provenance if provenance is not None else resolved.provenance
        collector_for = self._collector_factory(policy, collector_name)
        collectors: dict[str, Any] = {}
        executed: list[str] = []

        open_group: str | None = None
        open_cm = None

        def close_group():
            nonlocal open_group, open_cm
            if open_cm is not None:
                open_cm.__exit__(None, None, None)
            open_group, open_cm = None, None

        try:
            for node in self.order:
                if node.group != open_group:
                    close_group()
                    if node.group is not None:
                        open_cm = stage(resolved.instrumentation, node.group)
                        open_cm.__enter__()
                        open_group = node.group
                collector = collector_for(node.group)
                if collector is not None and node.group is not None:
                    collectors[node.group] = collector
                ins = {
                    port: env[artifact]
                    for port, artifact in node.inputs.items()
                }
                ctx = ExecContext(
                    session=resolved,
                    collector=collector,
                    plan_name=self.spec.name,
                )
                produced = self._kinds[node.id].run(node, ins, ctx)
                for port, artifact in node.outputs.items():
                    if port not in produced:
                        raise PlanError(
                            f"node {node.id!r} ({node.kind}) declared output "
                            f"port {port!r} but produced only "
                            f"{sorted(produced)}"
                        )
                    env[artifact] = produced[port]
                executed.append(node.id)
        except BaseException:
            close_group()
            raise
        close_group()
        return PlanResult(
            spec=self.spec,
            artifacts=env,
            collectors=collectors,
            order=tuple(executed),
        )
