"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``casestudy``   run the end-to-end case study and print each stage's summary
``release``     generate the synthetic data bundle as CSV files
``profile``     profile the raw tables (the Section-4 exploration report)

Common options: ``--seed N`` (default 45), ``--small`` (a ~5x downsized
scenario that runs in well under a minute), ``--out DIR`` (for release).
"""

from __future__ import annotations

import argparse
import sys

from .casestudy import CaseStudyRun
from .datasets import ScenarioConfig, generate_scenario
from .datasets.release import save_scenario
from .evaluation import evaluate_matches
from .table import format_profile, profile_table


def _config(args: argparse.Namespace) -> ScenarioConfig:
    if args.small:
        return ScenarioConfig(
            seed=args.seed,
            n_umetrics_rows=280, n_usda_rows=400, n_extra_rows=100,
            n_federal=40, n_state=65, n_forest=20, n_extra_matched=12,
            n_sibling_families=18, n_generic_umetrics=5, n_generic_usda=6,
            n_multistate_usda=12, aux_scale=0.002,
        )
    return ScenarioConfig(seed=args.seed)


def _cmd_casestudy(args: argparse.Namespace) -> int:
    run = CaseStudyRun(config=_config(args))
    print("== Section 7, blocking ==")
    print(run.blocking.summary())
    print("\n== Section 8, labeling ==")
    print(run.labeling.summary())
    print("\n== Section 9, matching ==")
    print(run.matching.final_selection.table())
    print(run.matching.summary())
    print("\n== Section 10, patched workflow ==")
    print(run.updated_workflow.summary())
    print("\n== Sections 11-12, accuracy ==")
    print(run.accuracy.table())
    print("\n== Figure 10, final workflow ==")
    print(run.final_workflow.summary())
    truth = run.combined_truth
    print("\nexact accuracy vs ground truth:")
    for name, matches in (
        ("IRIS", run.iris_matches),
        ("learning", run.updated_workflow.matches),
        ("learning+rules", run.final_workflow.matches),
    ):
        print(f"  {name:<15} {evaluate_matches(matches, truth)}")
    return 0


def _cmd_release(args: argparse.Namespace) -> int:
    scenario = generate_scenario(_config(args))
    directory = save_scenario(scenario, args.out)
    print(f"wrote release bundle to {directory}/")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    scenario = generate_scenario(_config(args))
    for table in (
        scenario.award_agg, scenario.usda, scenario.employees,
        scenario.org_units, scenario.object_codes, scenario.sub_awards,
        scenario.vendors,
    ):
        print(format_profile(profile_table(table)))
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UMETRICS entity-matching case study"
    )
    parser.add_argument("--seed", type=int, default=45)
    parser.add_argument("--small", action="store_true",
                        help="use a ~5x downsized scenario")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("casestudy", help="run the end-to-end case study")
    release = sub.add_parser("release", help="export the data bundle as CSVs")
    release.add_argument("--out", default="umetrics_release")
    sub.add_parser("profile", help="profile the raw tables")
    args = parser.parse_args(argv)
    handlers = {
        "casestudy": _cmd_casestudy,
        "release": _cmd_release,
        "profile": _cmd_profile,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
