"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``casestudy``   run the end-to-end case study and print each stage's summary
``serve``       run the case study as an online service: build a
                :class:`~repro.serving.MatchService`, probe late records via
                ``match()``, and with ``--patch`` replay the Section-10
                late-arriving records through the delta path (verified
                against the batch rerun)
``release``     generate the synthetic data bundle as CSV files
``profile``     profile the raw tables (the Section-4 exploration report)
``trace``       inspect telemetry: ``trace summary`` (hotspots + flamegraph
                from a JSONL trace), ``trace top`` (span self-time ranking,
                per-worker utilization, ``--folded`` flamegraph stacks),
                ``trace diff`` (two run manifests)
``bench``       ``bench history`` — summarize the cross-run benchmark
                trend log (``benchmarks/history.jsonl``)

Common options: ``--seed N`` (default 45), ``--small`` (a ~5x downsized
scenario that runs in well under a minute), ``--out DIR`` (for release).
``casestudy`` additionally takes ``--trace PATH`` (write a JSONL trace),
``--manifest PATH`` (write a RunManifest JSON, implies provenance
collection), ``--workers N``, ``--store DIR`` (content-addressed artifact
store; a re-run reuses every unchanged stage), ``--no-kernels`` (force
the pure-Python similarity paths), ``--resources`` (sample per-stage
CPU/RSS/GC deltas into the trace) and ``--blocker CONFIG_JSON`` (a
three-element JSON config list building the Section-7 plan through the
blocker registry — see :mod:`repro.blocking.factory`). ``serve`` takes
``--metrics-port N``
(expose Prometheus ``/metrics`` + ``/healthz`` over HTTP, with ``proc:*``
gauges from a background resource sampler) and ``--linger-seconds X``
(keep the endpoint up after the run — scrape smoke tests). All of these
configure one :class:`~repro.runtime.context.EngineSession` that carries
the whole run.
"""

from __future__ import annotations

import argparse
import sys

from .casestudy import CaseStudyRun
from .datasets import ScenarioConfig, generate_scenario
from .runtime.context import EngineSession
from .datasets.release import save_scenario
from .evaluation import evaluate_matches
from .table import format_profile, profile_table


def _config(args: argparse.Namespace) -> ScenarioConfig:
    if args.small:
        return ScenarioConfig(
            seed=args.seed,
            n_umetrics_rows=280, n_usda_rows=400, n_extra_rows=100,
            n_federal=40, n_state=65, n_forest=20, n_extra_matched=12,
            n_sibling_families=18, n_generic_umetrics=5, n_generic_usda=6,
            n_multistate_usda=12, aux_scale=0.002,
        )
    return ScenarioConfig(seed=args.seed)


def _load_json_arg(raw: str):
    """An inline-JSON or ``@file`` CLI payload, parsed."""
    import json

    if raw.startswith("@"):
        with open(raw[1:], "r", encoding="utf-8") as fh:
            return json.load(fh)
    return json.loads(raw)


def _parse_blocker_configs(raw: str):
    """``--blocker`` payload -> blocker list via the factory registry.

    Accepts one config object or a list of three; a path to a JSON file
    is accepted too (starts with ``@``).
    """
    from .blocking import create_blockers

    return create_blockers(_load_json_arg(raw))


def _parse_plan_spec(raw: str):
    """``--plan`` payload -> :class:`repro.plan.PipelineSpec`.

    Accepts an inline JSON spec or ``@path/to/spec.json``.
    """
    from .plan import PipelineSpec

    return PipelineSpec.from_dict(_load_json_arg(raw))


def _plan_from_args(args: argparse.Namespace):
    """Resolve ``--plan`` / deprecated ``--blocker`` into one spec.

    ``--blocker`` warns and delegates: the configs are substituted into
    the Figure-10 spec, so both flags drive the same plan path.
    """
    plan_json = getattr(args, "plan", None)
    blocker_json = getattr(args, "blocker", None)
    if plan_json is not None and blocker_json is not None:
        raise SystemExit(
            "--plan and --blocker are mutually exclusive "
            "(--blocker is deprecated; fold the blockers into the plan)"
        )
    if plan_json is not None:
        return _parse_plan_spec(plan_json)
    if blocker_json is not None:
        import warnings

        warnings.warn(
            "--blocker is deprecated; use --plan with a pipeline spec "
            "(the blocker configs are being folded into the Figure-10 "
            "plan for you)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .plan import figure10_spec

        payload = _load_json_arg(blocker_json)
        if isinstance(payload, dict):
            payload = [payload]
        return figure10_spec(blockers=payload)
    return None


def _cmd_casestudy(args: argparse.Namespace) -> int:
    trace_path = getattr(args, "trace", None)
    manifest_path = getattr(args, "manifest", None)
    store_dir = getattr(args, "store", None)
    plan = _plan_from_args(args)
    config = _config(args)
    instrumentation = None
    if trace_path is None and manifest_path is not None:
        from .obs import TracingInstrumentation

        instrumentation = TracingInstrumentation()
    store = None
    if store_dir is not None:
        from .store import ArtifactStore

        store = ArtifactStore(store_dir)
    session = EngineSession(
        workers=getattr(args, "workers", 1),
        store=store,
        trace_path=trace_path,
        instrumentation=instrumentation,
        provenance=manifest_path is not None,
        kernels=False if getattr(args, "no_kernels", False) else None,
        seed=config.seed,
        resources=getattr(args, "resources", False),
    )
    with session, CaseStudyRun(
        config=config, session=session, plan=plan
    ) as run:
        return _run_casestudy(run, trace_path, manifest_path)


def _run_casestudy(
    run: CaseStudyRun, trace_path: str | None, manifest_path: str | None
) -> int:
    print("== Section 7, blocking ==")
    print(run.blocking.summary())
    print("\n== Section 8, labeling ==")
    print(run.labeling.summary())
    print("\n== Section 9, matching ==")
    print(run.matching.final_selection.table())
    print(run.matching.summary())
    print("\n== Section 10, patched workflow ==")
    print(run.updated_workflow.summary())
    print("\n== Sections 11-12, accuracy ==")
    print(run.accuracy.table())
    print("\n== Figure 10, final workflow ==")
    print(run.final_workflow.summary())
    truth = run.combined_truth
    print("\nexact accuracy vs ground truth:")
    for name, matches in (
        ("IRIS", run.iris_matches),
        ("learning", run.updated_workflow.matches),
        ("learning+rules", run.final_workflow.matches),
    ):
        print(f"  {name:<15} {evaluate_matches(matches, truth)}")
    if manifest_path is not None:
        from .obs import RunManifest

        run.monitoring  # one §12 monitoring round, recorded in the manifest
        manifest = RunManifest.from_case_study(run)
        manifest.write(manifest_path)
        print(f"\nwrote run manifest to {manifest_path}")
    if trace_path is not None:
        print(f"wrote trace to {trace_path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from .casestudy.workflows import train_workflow_matcher
    from .obs.metrics import MetricsRegistry
    from .plan import figure10_spec
    from .serving import MatchService

    config = _config(args)
    metrics = MetricsRegistry()
    session = EngineSession(
        workers=getattr(args, "workers", 1),
        metrics=metrics,
        seed=config.seed,
    )
    with session, CaseStudyRun(config=config, session=session) as run:
        tables, extra = run.projected_v2, run.projected_extra
        feature_set = run.matching.feature_set
        matcher = train_workflow_matcher(
            run.blocking_v2.candidates, run.labeling.labels,
            feature_set, run.matching.matcher, session=session,
        )
        plan = _plan_from_args(args) or figure10_spec()
        service = MatchService.from_plan(
            plan, tables.umetrics, tables.usda, tables.l_key, tables.r_key,
            matcher=matcher, feature_set=feature_set, session=session,
        )
        initial = len(service.current_matches())
        print(f"serving {len(service)} records, {initial} initial matches")
        probes = min(args.probes, len(extra.umetrics))
        probe_matches = 0
        for i in range(probes):
            probe_matches += len(service.match(extra.umetrics.row(i)).matches)
        print(f"probed {probes} late records: {probe_matches} matches")
        counts = {
            "records": len(service),
            "initial_matches": initial,
            "probes": probes,
            "probe_matches": probe_matches,
        }
        status = 0
        if args.patch:
            result = service.apply_patch(upserts=extra.umetrics)
            reference = run.final_workflow
            delta_ok = tuple(result.matches) == tuple(reference.extra.matches)
            total_ok = set(service.current_matches()) == set(reference.matches)
            counts.update(
                patch_upserts=len(result.upserted),
                patch_sure=len(result.sure_matches),
                patch_candidates=len(result.candidates),
                patch_to_predict=len(result.to_predict),
                patch_predicted=len(result.predicted_matches),
                patch_flipped=len(result.flipped),
                patch_matches=len(result.matches),
                patch_retired=len(result.retired),
                total_matches=len(service.current_matches()),
                delta_equals_rerun=bool(delta_ok and total_ok),
            )
            verdict = "OK" if delta_ok and total_ok else "MISMATCH"
            print(
                f"patched {len(result.upserted)} late records through the "
                f"delta path: {len(result.matches)} delta matches, "
                f"{counts['total_matches']} total; delta == rerun: {verdict}"
            )
            if not (delta_ok and total_ok):
                status = 1
        print()
        print(metrics.render("serving metrics"))
        if args.metrics_port is not None:
            # Started after the probe/patch work so the first scrape
            # already sees populated serve:* histograms; the resource
            # monitor adds live proc:* gauges next to them.
            from .obs.export import MetricsServer

            service.start_resource_monitor(interval=0.5)
            server = MetricsServer(
                service.metrics_text, port=args.metrics_port
            ).start()
            print(f"\nmetrics endpoint: {server.url}/metrics "
                  f"(health: {server.url}/healthz)")
            try:
                if args.linger_seconds > 0:
                    import time as _time

                    _time.sleep(args.linger_seconds)
            except KeyboardInterrupt:
                pass
            finally:
                server.stop()
                service.stop_resource_monitor()
        if args.json is not None:
            histograms = {
                name: metrics.histograms[name].snapshot()
                for name in ("serve:match_seconds", "serve:patch_seconds")
                if name in metrics.histograms
            }
            from .obs.manifest import git_sha

            import time as _time

            payload = {
                "schema": "repro/serve-report/1",
                "timestamp": _time.time(),
                "git_sha": git_sha(),
                "counts": counts,
                "latency": histograms,
            }
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"\nwrote serve report to {args.json}")
        return status


def _cmd_release(args: argparse.Namespace) -> int:
    scenario = generate_scenario(_config(args))
    directory = save_scenario(scenario, args.out)
    print(f"wrote release bundle to {directory}/")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    scenario = generate_scenario(_config(args))
    for table in (
        scenario.award_agg, scenario.usda, scenario.employees,
        scenario.org_units, scenario.object_codes, scenario.sub_awards,
        scenario.vendors,
    ):
        print(format_profile(profile_table(table)))
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.cli import cmd_trace_diff, cmd_trace_summary, cmd_trace_top

    if args.trace_command == "summary":
        return cmd_trace_summary(args.trace, top=args.top)
    if args.trace_command == "top":
        return cmd_trace_top(args.trace, top=args.top, folded=args.folded)
    return cmd_trace_diff(args.old, args.new, strict_counts=args.strict_counts)


def _cmd_bench(args: argparse.Namespace) -> int:
    from .obs.cli import cmd_bench_history

    return cmd_bench_history(
        args.history, benchmark=args.benchmark, metric=args.metric,
        limit=args.limit,
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    # Mirrored on each subparser so `repro casestudy --small` works too;
    # SUPPRESS keeps an omitted flag from clobbering the top-level value.
    parser.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    parser.add_argument("--small", action="store_true",
                        default=argparse.SUPPRESS,
                        help="use a ~5x downsized scenario")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UMETRICS entity-matching case study"
    )
    parser.add_argument("--seed", type=int, default=45)
    parser.add_argument("--small", action="store_true",
                        help="use a ~5x downsized scenario")
    sub = parser.add_subparsers(dest="command", required=True)
    casestudy = sub.add_parser("casestudy", help="run the end-to-end case study")
    _add_common(casestudy)
    casestudy.add_argument("--trace", metavar="PATH",
                           help="write a JSONL stage trace to PATH")
    casestudy.add_argument("--manifest", metavar="PATH",
                           help="write a RunManifest JSON to PATH "
                                "(implies provenance collection)")
    casestudy.add_argument("--workers", type=int, default=1,
                           help="process-pool width for the hot stages")
    casestudy.add_argument("--store", metavar="DIR",
                           help="artifact-store directory; re-runs reuse "
                                "every unchanged stage")
    casestudy.add_argument("--no-kernels", action="store_true",
                           help="force the pure-Python similarity paths "
                                "for this run")
    casestudy.add_argument("--plan", metavar="CONFIG_JSON",
                           help="drive the Figure-10 workflow from a pipeline "
                                "spec: an inline PipelineSpec JSON document "
                                "or @path/to/spec.json (see "
                                "examples/figure10.json)")
    casestudy.add_argument("--blocker", metavar="CONFIG_JSON",
                           help="deprecated: use --plan. Replaces the "
                                "Section-7 blocking plan with blockers built "
                                "by the registry factory: a JSON list of "
                                "three {kind, ...} configs "
                                "(or @path/to/configs.json)")
    casestudy.add_argument("--resources", action="store_true",
                           help="sample per-stage CPU/RSS/GC deltas "
                                "(recorded as resource trace events)")
    serve = sub.add_parser(
        "serve", help="online serving: delta patches + per-record match()"
    )
    _add_common(serve)
    serve.add_argument("--plan", metavar="CONFIG_JSON",
                       help="bootstrap the MatchService recipe from a "
                            "pipeline spec (inline JSON or @file; default: "
                            "the built-in Figure-10 plan)")
    serve.add_argument("--patch", action="store_true",
                       help="replay the Section-10 late records through the "
                            "delta path and verify against the batch rerun")
    serve.add_argument("--probes", type=int, default=5,
                       help="late records to probe through match()")
    serve.add_argument("--workers", type=int, default=1,
                       help="process-pool width for the hot stages")
    serve.add_argument("--json", metavar="PATH",
                       help="write a counts + latency report JSON to PATH")
    serve.add_argument("--metrics-port", type=int, default=None,
                       metavar="PORT",
                       help="expose Prometheus /metrics + /healthz on PORT "
                            "(0 = OS-assigned) after the run completes")
    serve.add_argument("--linger-seconds", type=float, default=60.0,
                       metavar="X",
                       help="keep the metrics endpoint up for X seconds "
                            "(with --metrics-port; default 60)")
    release = sub.add_parser("release", help="export the data bundle as CSVs")
    _add_common(release)
    release.add_argument("--out", default="umetrics_release")
    profile = sub.add_parser("profile", help="profile the raw tables")
    _add_common(profile)
    trace = sub.add_parser("trace", help="inspect traces and run manifests")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summary = trace_sub.add_parser(
        "summary", help="hotspot table + flamegraph from a JSONL trace"
    )
    summary.add_argument("trace", help="path to a JSONL trace file")
    summary.add_argument("--top", type=int, default=15,
                         help="rows in the hotspot table")
    top = trace_sub.add_parser(
        "top", help="span self-time ranking + per-worker utilization"
    )
    top.add_argument("trace", help="path to a JSONL trace file")
    top.add_argument("--top", type=int, default=15,
                     help="rows in the span ranking")
    top.add_argument("--folded", action="store_true",
                     help="emit folded stacks for flamegraph tools instead")
    diff = trace_sub.add_parser(
        "diff", help="compare two run manifests stage by stage"
    )
    diff.add_argument("old", help="baseline manifest JSON")
    diff.add_argument("new", help="candidate manifest JSON")
    diff.add_argument("--strict-counts", action="store_true",
                      help="exit nonzero when headline counts differ")
    bench = sub.add_parser("bench", help="benchmark trend tooling")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    history = bench_sub.add_parser(
        "history", help="summarize the cross-run benchmark trend log"
    )
    history.add_argument("--history", default="benchmarks/history.jsonl",
                         help="trend log path "
                              "(default: benchmarks/history.jsonl)")
    history.add_argument("--benchmark", default=None,
                         help="show only this benchmark's records")
    history.add_argument("--metric", default=None,
                         help="show only these data metrics per record "
                              "(comma-separated names)")
    history.add_argument("--limit", type=int, default=20,
                         help="records to show, newest last (default 20)")
    args = parser.parse_args(argv)
    handlers = {
        "casestudy": _cmd_casestudy,
        "serve": _cmd_serve,
        "release": _cmd_release,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
