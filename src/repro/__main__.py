"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``casestudy``   run the end-to-end case study and print each stage's summary
``release``     generate the synthetic data bundle as CSV files
``profile``     profile the raw tables (the Section-4 exploration report)
``trace``       inspect telemetry: ``trace summary`` (hotspots + flamegraph
                from a JSONL trace), ``trace diff`` (two run manifests)

Common options: ``--seed N`` (default 45), ``--small`` (a ~5x downsized
scenario that runs in well under a minute), ``--out DIR`` (for release).
``casestudy`` additionally takes ``--trace PATH`` (write a JSONL trace),
``--manifest PATH`` (write a RunManifest JSON, implies provenance
collection), ``--workers N``, ``--store DIR`` (content-addressed artifact
store; a re-run reuses every unchanged stage) and ``--no-kernels`` (force
the pure-Python similarity paths). All of these configure one
:class:`~repro.runtime.context.EngineSession` that carries the whole run.
"""

from __future__ import annotations

import argparse
import sys

from .casestudy import CaseStudyRun
from .datasets import ScenarioConfig, generate_scenario
from .runtime.context import EngineSession
from .datasets.release import save_scenario
from .evaluation import evaluate_matches
from .table import format_profile, profile_table


def _config(args: argparse.Namespace) -> ScenarioConfig:
    if args.small:
        return ScenarioConfig(
            seed=args.seed,
            n_umetrics_rows=280, n_usda_rows=400, n_extra_rows=100,
            n_federal=40, n_state=65, n_forest=20, n_extra_matched=12,
            n_sibling_families=18, n_generic_umetrics=5, n_generic_usda=6,
            n_multistate_usda=12, aux_scale=0.002,
        )
    return ScenarioConfig(seed=args.seed)


def _cmd_casestudy(args: argparse.Namespace) -> int:
    trace_path = getattr(args, "trace", None)
    manifest_path = getattr(args, "manifest", None)
    store_dir = getattr(args, "store", None)
    config = _config(args)
    instrumentation = None
    if trace_path is None and manifest_path is not None:
        from .obs import TracingInstrumentation

        instrumentation = TracingInstrumentation()
    store = None
    if store_dir is not None:
        from .store import ArtifactStore

        store = ArtifactStore(store_dir)
    session = EngineSession(
        workers=getattr(args, "workers", 1),
        store=store,
        trace_path=trace_path,
        instrumentation=instrumentation,
        provenance=manifest_path is not None,
        kernels=False if getattr(args, "no_kernels", False) else None,
        seed=config.seed,
    )
    with session, CaseStudyRun(config=config, session=session) as run:
        return _run_casestudy(run, trace_path, manifest_path)


def _run_casestudy(
    run: CaseStudyRun, trace_path: str | None, manifest_path: str | None
) -> int:
    print("== Section 7, blocking ==")
    print(run.blocking.summary())
    print("\n== Section 8, labeling ==")
    print(run.labeling.summary())
    print("\n== Section 9, matching ==")
    print(run.matching.final_selection.table())
    print(run.matching.summary())
    print("\n== Section 10, patched workflow ==")
    print(run.updated_workflow.summary())
    print("\n== Sections 11-12, accuracy ==")
    print(run.accuracy.table())
    print("\n== Figure 10, final workflow ==")
    print(run.final_workflow.summary())
    truth = run.combined_truth
    print("\nexact accuracy vs ground truth:")
    for name, matches in (
        ("IRIS", run.iris_matches),
        ("learning", run.updated_workflow.matches),
        ("learning+rules", run.final_workflow.matches),
    ):
        print(f"  {name:<15} {evaluate_matches(matches, truth)}")
    if manifest_path is not None:
        from .obs import RunManifest

        run.monitoring  # one §12 monitoring round, recorded in the manifest
        manifest = RunManifest.from_case_study(run)
        manifest.write(manifest_path)
        print(f"\nwrote run manifest to {manifest_path}")
    if trace_path is not None:
        print(f"wrote trace to {trace_path}")
    return 0


def _cmd_release(args: argparse.Namespace) -> int:
    scenario = generate_scenario(_config(args))
    directory = save_scenario(scenario, args.out)
    print(f"wrote release bundle to {directory}/")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    scenario = generate_scenario(_config(args))
    for table in (
        scenario.award_agg, scenario.usda, scenario.employees,
        scenario.org_units, scenario.object_codes, scenario.sub_awards,
        scenario.vendors,
    ):
        print(format_profile(profile_table(table)))
        print()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs.cli import cmd_trace_diff, cmd_trace_summary

    if args.trace_command == "summary":
        return cmd_trace_summary(args.trace, top=args.top)
    return cmd_trace_diff(args.old, args.new, strict_counts=args.strict_counts)


def _add_common(parser: argparse.ArgumentParser) -> None:
    # Mirrored on each subparser so `repro casestudy --small` works too;
    # SUPPRESS keeps an omitted flag from clobbering the top-level value.
    parser.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    parser.add_argument("--small", action="store_true",
                        default=argparse.SUPPRESS,
                        help="use a ~5x downsized scenario")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="UMETRICS entity-matching case study"
    )
    parser.add_argument("--seed", type=int, default=45)
    parser.add_argument("--small", action="store_true",
                        help="use a ~5x downsized scenario")
    sub = parser.add_subparsers(dest="command", required=True)
    casestudy = sub.add_parser("casestudy", help="run the end-to-end case study")
    _add_common(casestudy)
    casestudy.add_argument("--trace", metavar="PATH",
                           help="write a JSONL stage trace to PATH")
    casestudy.add_argument("--manifest", metavar="PATH",
                           help="write a RunManifest JSON to PATH "
                                "(implies provenance collection)")
    casestudy.add_argument("--workers", type=int, default=1,
                           help="process-pool width for the hot stages")
    casestudy.add_argument("--store", metavar="DIR",
                           help="artifact-store directory; re-runs reuse "
                                "every unchanged stage")
    casestudy.add_argument("--no-kernels", action="store_true",
                           help="force the pure-Python similarity paths "
                                "for this run")
    release = sub.add_parser("release", help="export the data bundle as CSVs")
    _add_common(release)
    release.add_argument("--out", default="umetrics_release")
    profile = sub.add_parser("profile", help="profile the raw tables")
    _add_common(profile)
    trace = sub.add_parser("trace", help="inspect traces and run manifests")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summary = trace_sub.add_parser(
        "summary", help="hotspot table + flamegraph from a JSONL trace"
    )
    summary.add_argument("trace", help="path to a JSONL trace file")
    summary.add_argument("--top", type=int, default=15,
                         help="rows in the hotspot table")
    diff = trace_sub.add_parser(
        "diff", help="compare two run manifests stage by stage"
    )
    diff.add_argument("old", help="baseline manifest JSON")
    diff.add_argument("new", help="candidate manifest JSON")
    diff.add_argument("--strict-counts", action="store_true",
                      help="exit nonzero when headline counts differ")
    args = parser.parse_args(argv)
    handlers = {
        "casestudy": _cmd_casestudy,
        "release": _cmd_release,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
