"""Project-title generation and per-side styling.

Matched records carry the *same underlying title* rendered differently on
each side: UMETRICS stores titles in upper case (see the paper's Figure 5:
"DEVELOPMENT OF IPM-BASED CORN FUNGICIDE GUIDELINES...") while USDA stores
title case ("Development of IPM-Based Corn Fungicide Guidelines...").
That case gap is exactly what broke the first selected matcher and led to
the case-insensitive features of Section 9.

Perturbations model real drift: token drop/swap, abbreviation, a typo, or
an appended multistate code ("NC-213") for the D1 discrepancy class.
"""

from __future__ import annotations

import numpy as np

from . import vocab


class TitleFactory:
    """Generates distinct research-project titles from domain vocabulary.

    Titles cluster into *topics* (a research portfolio is bursty: many
    corn projects, many dairy projects, ...). Each topic owns a subpool of
    the word vocabulary; same-topic titles share several words with
    noticeable probability while cross-topic titles rarely do. This burst
    structure is what makes the paper's overlap-threshold sweep so steep
    (K=1 explodes, K=3 is selective, K=7 nearly empty).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_topics: int = 25,
        topic_pool_size: int = 38,
    ) -> None:
        self._rng = rng
        self._issued: set[str] = set()
        self._topics: list[tuple[str, ...]] = []
        for _ in range(n_topics):
            indices = rng.choice(
                len(vocab.TITLE_WORDS), size=topic_pool_size, replace=False
            )
            self._topics.append(tuple(vocab.TITLE_WORDS[int(i)] for i in indices))

    def make(self) -> str:
        """A fresh noun-phrase title (3-7 content words).

        Titles are composed of distinct single words from the domain pool,
        with a function word ("of", "in", ...) inserted only occasionally —
        matching the token-overlap statistics of real award titles, where
        sharing one word with a random other title is common but sharing
        three is rare (the property the Section-7 thresholds exploit).
        """
        for _ in range(10_000):
            title = self._compose()
            if title not in self._issued:
                self._issued.add(title)
                return title
        raise RuntimeError("title space exhausted")

    def _compose(self) -> str:
        rng = self._rng
        pool = self._topics[int(rng.integers(0, len(self._topics)))]
        n_words = int(rng.integers(3, 8))
        indices = rng.choice(len(pool), size=min(n_words, len(pool)), replace=False)
        words = [pool[int(i)] for i in indices]
        if n_words >= 4 and rng.random() < 0.25:
            position = int(rng.integers(1, len(words) - 1))
            words.insert(position, str(rng.choice(vocab.TITLE_FUNCTION_WORDS)))
        return " ".join(words)

    def generic(self) -> str:
        """A short generic title (deliberately reused across awards)."""
        return str(self._rng.choice(vocab.GENERIC_TITLES))


def umetrics_style(title: str) -> str:
    """How UMETRICS renders a title: upper case."""
    return title.upper()


def usda_style(title: str) -> str:
    """How USDA renders a title: title case with short words lowered."""
    small = {"of", "in", "and", "for", "the", "to", "a", "an", "on", "through"}
    words = title.split()
    out = []
    for i, word in enumerate(words):
        lower = word.lower()
        if i > 0 and lower in small:
            out.append(lower)
        else:
            out.append(word[:1].upper() + word[1:])
    return " ".join(out)


def perturb_tokens(title: str, rng: np.random.Generator, max_edits: int = 1) -> str:
    """Lightly perturb a title: drop, swap or typo one token.

    Titles shorter than five words are left untouched: a one-token edit on
    a short title would push a genuine match below every blocking
    threshold, and the paper's blocking-debugger check found no such
    casualties — drift lives in the longer titles.
    """
    words = title.split()
    for _ in range(max_edits):
        if len(words) < 5:
            break
        edit = int(rng.integers(0, 3))
        index = int(rng.integers(0, len(words)))
        if edit == 0:
            words.pop(index)
        elif edit == 1 and index + 1 < len(words):
            words[index], words[index + 1] = words[index + 1], words[index]
        else:
            word = words[index]
            if len(word) > 3:
                cut = int(rng.integers(1, len(word) - 1))
                words[index] = word[:cut] + word[cut + 1 :]
    return " ".join(words)


def with_multistate_suffix(title: str, rng: np.random.Generator) -> str:
    """Append a multistate code — the D1 "NC/NRSP" suffix."""
    code = str(rng.choice(vocab.MULTISTATE_CODES))
    return f"{title} {code}"
