"""Builder for the 78-column USDA awards table.

The real table is a CRIS/REEport export; the paper's Figure 4 shows the
columns the pipeline touches (Accession Number, Project Title, Award
Number, Project Number, dates, Project Director, Recipient Organization /
DUNS) plus dozens of administrative and financial columns. We generate
the full 78-column shape: the matching-relevant columns faithfully, and the
remainder as plausible filler (knowledge-area codes, per-year obligations)
so profiling the raw table behaves like profiling the real one.
"""

from __future__ import annotations

import numpy as np

from ..table import Table
from . import vocab
from .scenario import UsdaRecord

#: Columns the case-study pipeline reads (the first block of the schema).
CORE_COLUMNS = [
    "AccessionNumber",
    "ProjectTitle",
    "SponsoringAgency",
    "FundingMechanism",
    "AwardNumber",
    "InitialAwardFiscalYear",
    "RecipientOrganization",
    "RecipientDUNS",
    "ProjectDirector",
    "MultistateProjectNumber",
    "ProjectNumber",
    "ProjectStartDate",
    "ProjectEndDate",
    "ProjectStartFiscalYear",
]

_KNOWLEDGE_AREAS = (102, 111, 205, 211, 212, 216, 301, 307, 501, 601, 605, 703, 903)


def _filler_columns() -> list[str]:
    """The administrative/financial tail of the 78-column export."""
    columns = [
        "ProjectStatus", "ProjectType", "StatePrefix", "PerformingOrganization",
        "PerformingDepartment", "CoProjectDirectors", "NonTechnicalSummary",
        "KnowledgeAreaCode", "KnowledgeAreaPct", "SubjectOfInvestigation",
        "FieldOfScience", "ActivityCode", "CRISNumber", "GrantYear",
        "TerminationReason", "AnnualReportStatus", "RecipientCity",
        "RecipientState", "RecipientZip", "RecipientCounty",
        "CongressionalDistrict", "ProgramCode", "ProgramName",
        "ProposalNumber", "AwardDate", "ObligationFiscalYear",
        "ReportingFrequency", "DataSource",
    ]
    for year in range(1997, 2013):
        columns.append(f"Financial: USDA Contracts, Grants, Coop Agmt FY{year}")
    for year in range(1997, 2013):
        columns.append(f"FTEs FY{year}")
    columns.extend(
        [
            "Financial: USDA Contracts, Grants, Coop Agmt",
            "Financial: State Appropriations",
            "Financial: Total",
            "LastUpdated",
        ]
    )
    return columns


USDA_COLUMNS = CORE_COLUMNS + _filler_columns()
assert len(USDA_COLUMNS) == 78, f"expected 78 USDA columns, got {len(USDA_COLUMNS)}"


def build_usda_table(records: list[UsdaRecord], rng: np.random.Generator) -> Table:
    """USDAAwardMatching — 78 columns, one row per USDA record."""
    rows = []
    for record in records:
        total = float(np.round(rng.lognormal(11.5, 1.1), 2))
        is_federal = record.award_number is not None
        row = {
            "AccessionNumber": record.accession_number,
            "ProjectTitle": record.title,
            "SponsoringAgency": record.sponsoring_agency,
            "FundingMechanism": record.funding_mechanism,
            "AwardNumber": record.award_number,
            "InitialAwardFiscalYear": record.start_year,
            "RecipientOrganization": vocab.RECIPIENT_ORGANIZATION,
            "RecipientDUNS": None,
            "ProjectDirector": record.director,
            "MultistateProjectNumber": None,
            "ProjectNumber": record.project_number,
            "ProjectStartDate": record.start_date,
            "ProjectEndDate": record.end_date,
            "ProjectStartFiscalYear": record.start_year,
            "ProjectStatus": str(rng.choice(["Terminated", "Active", "Extended"])),
            "ProjectType": "Research" if is_federal else "Hatch",
            "StatePrefix": "WIS",
            "PerformingOrganization": vocab.CAMPUS_NAME,
            "PerformingDepartment": str(rng.choice(vocab.SUB_ORG_UNITS)),
            "CoProjectDirectors": None,
            "NonTechnicalSummary": None,
            "KnowledgeAreaCode": int(rng.choice(_KNOWLEDGE_AREAS)),
            "KnowledgeAreaPct": 100,
            "SubjectOfInvestigation": int(rng.integers(1000, 9999)),
            "FieldOfScience": int(rng.integers(1000, 1199)),
            "ActivityCode": str(rng.choice(["A", "B", "C"])),
            "CRISNumber": f"{record.accession_number}-CRIS",
            "GrantYear": record.start_year,
            "TerminationReason": None,
            "AnnualReportStatus": str(rng.choice(["Filed", "Pending"])),
            "RecipientCity": "Madison",
            "RecipientState": "WI",
            "RecipientZip": "53706",
            "RecipientCounty": "Dane",
            "CongressionalDistrict": "WI-02",
            "ProgramCode": f"{int(rng.integers(100, 999))}",
            "ProgramName": str(rng.choice(vocab.SPONSORING_AGENCIES)),
            "ProposalNumber": f"P{int(rng.integers(10**5, 10**6))}",
            "AwardDate": record.start_date,
            "ObligationFiscalYear": record.start_year,
            "ReportingFrequency": "Annual",
            "DataSource": "CRIS",
            "Financial: USDA Contracts, Grants, Coop Agmt": total if is_federal else None,
            "Financial: State Appropriations": None if is_federal else total,
            "Financial: Total": total,
            "LastUpdated": f"{record.start_year + 1}-06-30",
        }
        active = record.start_year
        for year in range(1997, 2013):
            in_window = active <= year <= active + 3
            row[f"Financial: USDA Contracts, Grants, Coop Agmt FY{year}"] = (
                float(np.round(total / 4, 2)) if in_window and is_federal else None
            )
            row[f"FTEs FY{year}"] = (
                float(np.round(rng.uniform(0.2, 3.0), 2)) if in_window else None
            )
        rows.append(row)
    return Table.from_rows(rows, columns=USDA_COLUMNS, name="USDAAwardMatching")
