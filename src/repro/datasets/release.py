"""Data release: export/import the scenario as a CSV bundle.

The paper's final contribution is the release of "all data underlying this
case study, including labeled tuple pairs and documentation" as a challenge
problem. This module produces the equivalent bundle for the synthetic
scenario — the seven raw tables, the extra records, the ground-truth match
list, and a README describing the matching task — and can load such a
bundle back into tables.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import DatasetError
from ..table import Table, read_csv, write_csv
from .scenario import Scenario

#: Files in a release bundle: attribute on Scenario -> file name.
TABLE_FILES = {
    "award_agg": "UMETRICSAwardAggMatching.csv",
    "extra_award_agg": "UMETRICSAwardAggMatchingExtra.csv",
    "employees": "UMETRICSEmployeesMatching.csv",
    "org_units": "UMETRICSOrgUnitMatching.csv",
    "object_codes": "UMETRICSObjectCodesMatching.csv",
    "sub_awards": "UMETRICSSubAwardMatching.csv",
    "vendors": "UMETRICSVendorMatching.csv",
    "usda": "USDAAwardMatching.csv",
}

TRUTH_FILE = "gold_matches.csv"
README_FILE = "README.txt"

_README_TEXT = """The UMETRICS entity matching challenge (synthetic edition)
===========================================================

Task: find all record pairs (UniqueAwardNumber, AccessionNumber) between
UMETRICSAwardAggMatching(+Extra) and USDAAwardMatching that refer to the
same grant.

Match definition (from the domain-expert team):
  (M1) if the part of UniqueAwardNumber after the CFDA prefix equals the
       USDA Award Number, the pair is a match;
  (M2) records without award numbers may match on similar project titles
       (beware generic titles such as "Lab Supplies");
  (M3) the individuals involved in the project may also be compared.
A later revision adds: if the UniqueAwardNumber suffix equals the USDA
Project Number, the pair is a match.

gold_matches.csv holds the complete ground truth (a luxury the real
challenge problem does not have). Seed and generator: see repro.datasets.
"""


def save_scenario(scenario: Scenario, directory: str | Path) -> Path:
    """Write the full release bundle into *directory* (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for attr, file_name in TABLE_FILES.items():
        write_csv(getattr(scenario, attr), directory / file_name)
    truth = Table(
        {
            "UniqueAwardNumber": [u for u, _ in sorted(scenario.truth)],
            "AccessionNumber": [s for _, s in sorted(scenario.truth)],
        },
        name="gold_matches",
    )
    write_csv(truth, directory / TRUTH_FILE)
    (directory / README_FILE).write_text(_README_TEXT, encoding="utf-8")
    return directory


def load_tables(directory: str | Path) -> dict[str, Table]:
    """Load the raw tables of a release bundle, keyed by scenario attr."""
    directory = Path(directory)
    out = {}
    for attr, file_name in TABLE_FILES.items():
        path = directory / file_name
        if not path.exists():
            raise DatasetError(f"release bundle is missing {file_name}")
        out[attr] = read_csv(path, name=path.stem)
    return out


def load_truth(directory: str | Path) -> set[tuple[str, int]]:
    """Load the gold match list of a release bundle."""
    path = Path(directory) / TRUTH_FILE
    if not path.exists():
        raise DatasetError(f"release bundle is missing {TRUTH_FILE}")
    table = read_csv(path)
    return set(zip(table["UniqueAwardNumber"], table["AccessionNumber"]))
