"""The synthetic UMETRICS/USDA matching scenario.

The real case-study data is restricted-release (UMETRICS requires a data-use
agreement), so this module generates a synthetic world with the same
matching structure, sized to the paper's Figure 2:

* a population of grant *projects* at UW-Madison, split into federal,
  state/Hatch and forest-service kinds (matched across both datasets),
  plus USDA-only and UMETRICS-only projects;
* each project emits 1-2 UMETRICS award records and 1-3 USDA records
  (annual reports), reproducing the one-to-many matches of Section 10;
* identifying numbers follow the paper's grammars, with controlled
  missingness and "comparable variant" corruption (same pattern, one digit
  off) — the raw material for the M1/project-number positive rules, the
  IRIS baseline's recall ceiling, and the Section-12 negative rule's
  precision gain and recall cost;
* titles are shared by matched records but styled differently per side
  (UPPER vs Title Case), sometimes perturbed; *sibling* (renewal) projects
  reuse a matched project's title with a different number (the D2 class);
  generic titles ("Lab Supplies") recur across unrelated awards; some
  USDA-only titles carry a multistate "NC/NRSP" suffix (the D1 class);
* ground truth is the exact set of matching
  (UniqueAwardNumber, AccessionNumber) record pairs.

Everything is deterministic given ``ScenarioConfig.seed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import DatasetError
from ..similarity.set_based import jaccard
from ..table import Table
from ..table.column import is_missing
from ..text.normalize import normalize_title
from ..text.patterns import award_number_suffix, comparable
from . import vocab
from .award_numbers import (
    FederalNumberFactory,
    ForestNumberFactory,
    StateNumberFactory,
    cfda_code,
    comparable_variant,
    unique_award_number,
)
from .titles import (
    TitleFactory,
    perturb_tokens,
    umetrics_style,
    usda_style,
    with_multistate_suffix,
)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the synthetic world (defaults calibrated to the paper)."""

    seed: int = 45
    # table sizes (Figure 2 / Section 10)
    n_umetrics_rows: int = 1336
    n_usda_rows: int = 1915
    n_extra_rows: int = 496
    # matched-project population
    n_federal: int = 190
    n_state: int = 320
    n_forest: int = 100
    n_extra_matched: int = 55
    # distractor structure
    n_sibling_families: int = 85
    n_generic_umetrics: int = 18
    n_generic_usda: int = 20
    n_multistate_usda: int = 55
    # noise probabilities
    p_umetrics_double: float = 0.08
    usda_multiplicity_probs: tuple[float, ...] = (0.62, 0.28, 0.10)
    p_usda_award_number_missing: float = 0.22
    p_number_corrupted: float = 0.07
    p_title_perturbed: float = 0.30
    p_title_unrelated: float = 0.10
    p_sibling_number_missing: float = 0.15
    p_usda_only_project_number_missing: float = 0.15
    # auxiliary-table scale (1.0 = the paper's full row counts)
    aux_scale: float = 0.01
    # year range of the data slice
    first_year: int = 1997
    last_year: int = 2012


# ----------------------------------------------------------------------
# internal record model
# ----------------------------------------------------------------------
@dataclass
class UmetricsRecord:
    """One row of UMETRICSAwardAggMatching (pre-table form)."""

    unique_award_number: str
    title: str
    first_trans: str
    last_trans: str
    sub_org_unit: str
    project_id: int


@dataclass
class UsdaRecord:
    """One row of USDAAwardMatching (pre-table form)."""

    accession_number: int
    title: str
    award_number: str | None
    project_number: str | None
    start_date: str
    end_date: str
    director: str
    sponsoring_agency: str
    funding_mechanism: str
    start_year: int
    project_id: int


@dataclass
class Project:
    """One underlying grant project."""

    pid: int
    kind: str  # federal | state | forest | usda_only | umetrics_only
    base_title: str
    director_first: str
    director_last: str
    start_year: int
    suffix: str | None = None  # the UMETRICS award-number suffix
    project_number: str | None = None  # USDA "WIS#####" project number
    sibling_of: int | None = None
    umetrics_records: list[UmetricsRecord] = field(default_factory=list)
    usda_records: list[UsdaRecord] = field(default_factory=list)


# ----------------------------------------------------------------------
# scenario container
# ----------------------------------------------------------------------
@dataclass
class Scenario:
    """Generated tables, ground truth and oracle helpers."""

    config: ScenarioConfig
    projects: list[Project]
    award_agg: Table          # UMETRICSAwardAggMatching (original slice)
    extra_award_agg: Table    # the 496 late-arriving records
    usda: Table               # USDAAwardMatching
    employees: Table          # UMETRICSEmployeesMatching (scaled)
    org_units: Table
    object_codes: Table
    sub_awards: Table
    vendors: Table
    truth: set[tuple[str, int]]  # (UniqueAwardNumber, AccessionNumber)

    def all_umetrics_rows(self) -> int:
        return self.award_agg.num_rows + self.extra_award_agg.num_rows

    def truth_for(self, umetrics_ids: set[str]) -> set[tuple[str, int]]:
        """Ground-truth pairs restricted to a set of UMETRICS record ids."""
        return {(u, s) for (u, s) in self.truth if u in umetrics_ids}


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
class _Generator:
    """Stateful builder (one pass, deterministic)."""

    def __init__(self, config: ScenarioConfig) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.titles = TitleFactory(self.rng)
        self.federal_numbers = FederalNumberFactory(self.rng)
        self.state_numbers = StateNumberFactory(self.rng)
        self.forest_numbers = ForestNumberFactory(self.rng)
        self._accession = 150_000
        self._cfda_by_suffix: dict[str, set[str]] = {}
        self._pid = 0
        self.projects: list[Project] = []

    # -- primitives ----------------------------------------------------
    def _next_pid(self) -> int:
        self._pid += 1
        return self._pid

    def _next_accession(self) -> int:
        self._accession += int(self.rng.integers(1, 40))
        return self._accession

    def _director(self) -> tuple[str, str]:
        return (
            str(self.rng.choice(vocab.FIRST_NAMES)),
            str(self.rng.choice(vocab.LAST_NAMES)),
        )

    def _year(self) -> int:
        return int(
            self.rng.integers(self.config.first_year, self.config.last_year - 2)
        )

    def _unique_award_number(self, suffix: str) -> str:
        """A UniqueAwardNumber with a CFDA prefix unused for this suffix."""
        taken = self._cfda_by_suffix.setdefault(suffix, set())
        for _ in range(1000):
            cfda = cfda_code(self.rng)
            if cfda not in taken:
                taken.add(cfda)
                return unique_award_number(cfda, suffix)
        raise DatasetError("CFDA prefix space exhausted for suffix " + suffix)

    def _director_text(self, project: Project) -> str:
        style = int(self.rng.integers(0, 3))
        first, last = project.director_first, project.director_last
        if style == 0:
            return f"{last.upper()}, {first.upper()}"
        if style == 1:
            return f"{last}, {first[0]}."
        return f"{last}, {first}"

    # -- record emission -----------------------------------------------
    def _date(self, year: int) -> str:
        """A random date within *year* — transaction and project dates never
        coincide exactly (the paper's Figure 5: first transaction 10/1/08
        against a project start of 8/15/08), so date features carry only a
        coarse year-level signal."""
        month = int(self.rng.integers(1, 13))
        day = int(self.rng.integers(1, 29))
        return f"{year}-{month:02d}-{day:02d}"

    def _emit_umetrics(self, project: Project, n_records: int) -> None:
        config = self.config
        for _ in range(n_records):
            title = project.base_title
            if self.rng.random() < config.p_title_perturbed:
                title = perturb_tokens(title, self.rng)
            first_year = project.start_year + int(self.rng.integers(0, 2))
            project.umetrics_records.append(
                UmetricsRecord(
                    unique_award_number=self._unique_award_number(project.suffix),
                    title=umetrics_style(title),
                    first_trans=self._date(first_year),
                    last_trans=self._date(first_year + int(self.rng.integers(2, 5))),
                    sub_org_unit=str(self.rng.choice(vocab.SUB_ORG_UNITS)),
                    project_id=project.pid,
                )
            )

    def _emit_usda(
        self,
        project: Project,
        n_records: int,
        award_number: str | None,
        project_number: str | None,
        title_override: str | None = None,
    ) -> None:
        config = self.config
        for record_index in range(n_records):
            if title_override is not None:
                title = title_override
            elif self.rng.random() < config.p_title_unrelated:
                title = self.titles.make()  # an unrelated report title
            else:
                title = project.base_title
                if self.rng.random() < config.p_title_perturbed:
                    title = perturb_tokens(title, self.rng)
            year = project.start_year + record_index
            project.usda_records.append(
                UsdaRecord(
                    accession_number=self._next_accession(),
                    title=usda_style(title),
                    award_number=award_number,
                    project_number=project_number,
                    start_date=self._date(year),
                    end_date=self._date(year + int(self.rng.integers(1, 4))),
                    director=self._director_text(project),
                    sponsoring_agency=str(self.rng.choice(vocab.SPONSORING_AGENCIES)),
                    funding_mechanism=str(self.rng.choice(vocab.FUNDING_MECHANISMS)),
                    start_year=year,
                    project_id=project.pid,
                )
            )

    def _usda_multiplicity(self) -> int:
        probs = np.asarray(self.config.usda_multiplicity_probs, dtype=float)
        probs = probs / probs.sum()
        return 1 + int(self.rng.choice(len(probs), p=probs))

    def _umetrics_multiplicity(self) -> int:
        return 2 if self.rng.random() < self.config.p_umetrics_double else 1

    # -- project construction -------------------------------------------
    def _matched_project(self, kind: str) -> Project:
        config = self.config
        project = Project(
            pid=self._next_pid(),
            kind=kind,
            base_title=self.titles.make(),
            director_first=self._director()[0],
            director_last=self._director()[1],
            start_year=self._year(),
        )
        corrupted = self.rng.random() < config.p_number_corrupted
        if kind == "federal":
            number = self.federal_numbers.make(project.start_year)
            project.suffix = number
            project.project_number = self.state_numbers.make()
            usda_award = number
            if corrupted:
                usda_award = comparable_variant(number, self.rng)
                self.federal_numbers.reserve(usda_award)
            elif self.rng.random() < config.p_usda_award_number_missing:
                usda_award = None
            self._emit_usda(
                project,
                self._usda_multiplicity(),
                award_number=usda_award,
                project_number=project.project_number,
            )
        elif kind == "state":
            number = self.state_numbers.make()
            project.suffix = number
            project.project_number = number
            usda_project = number
            if corrupted:
                usda_project = comparable_variant(number, self.rng)
                self.state_numbers.reserve(usda_project)
            self._emit_usda(
                project,
                self._usda_multiplicity(),
                award_number=None,
                project_number=usda_project,
            )
        elif kind == "forest":
            number = self.forest_numbers.make(project.start_year)
            project.suffix = number
            project.project_number = self.state_numbers.make()
            self._emit_usda(
                project,
                self._usda_multiplicity(),
                award_number=None,
                project_number=project.project_number,
            )
        else:
            raise DatasetError(f"unknown matched kind {kind!r}")
        self._emit_umetrics(project, self._umetrics_multiplicity())
        self.projects.append(project)
        return project

    def _sibling_project(self, base: Project) -> Project:
        """A USDA-only renewal: near-identical title, different number."""
        config = self.config
        project = Project(
            pid=self._next_pid(),
            kind="usda_only",
            base_title=base.base_title,
            director_first=base.director_first,
            director_last=base.director_last,
            start_year=min(base.start_year + int(self.rng.integers(1, 4)),
                           config.last_year),
            sibling_of=base.pid,
        )
        if self.rng.random() < config.p_sibling_number_missing:
            project_number = None
        else:
            project_number = self.state_numbers.make()
        title = base.base_title
        if self.rng.random() < 0.10:
            title = perturb_tokens(title, self.rng)
        self._emit_usda(
            project, 1, award_number=None, project_number=project_number,
            title_override=title,
        )
        self.projects.append(project)
        return project

    def _usda_only_project(
        self, generic: bool = False, multistate_of: Project | None = None
    ) -> Project:
        config = self.config
        if multistate_of is not None:
            base_title = multistate_of.base_title
        elif generic:
            base_title = self.titles.generic()
        else:
            base_title = self.titles.make()
        project = Project(
            pid=self._next_pid(),
            kind="usda_only",
            base_title=base_title,
            director_first=self._director()[0],
            director_last=self._director()[1],
            start_year=self._year(),
            sibling_of=multistate_of.pid if multistate_of else None,
        )
        if self.rng.random() < config.p_usda_only_project_number_missing:
            project_number = None
        else:
            project_number = self.state_numbers.make()
        title = base_title
        if multistate_of is not None:
            title = with_multistate_suffix(title, self.rng)
        self._emit_usda(
            project, 1, award_number=None, project_number=project_number,
            title_override=title,
        )
        self.projects.append(project)
        return project

    def _umetrics_only_project(self, generic: bool = False) -> Project:
        project = Project(
            pid=self._next_pid(),
            kind="umetrics_only",
            base_title=self.titles.generic() if generic else self.titles.make(),
            director_first=self._director()[0],
            director_last=self._director()[1],
            start_year=self._year(),
        )
        shape = int(self.rng.integers(0, 3))
        if shape == 0:
            project.suffix = self.federal_numbers.make(project.start_year)
        elif shape == 1:
            project.suffix = self.state_numbers.make()
        else:
            project.suffix = self.forest_numbers.make(project.start_year)
        self._emit_umetrics(project, 1)
        self.projects.append(project)
        return project

    # -- orchestration ---------------------------------------------------
    def build(self) -> list[Project]:
        config = self.config
        matched: list[Project] = []
        for _ in range(config.n_federal):
            matched.append(self._matched_project("federal"))
        state_projects = [self._matched_project("state") for _ in range(config.n_state)]
        matched.extend(state_projects)
        for _ in range(config.n_forest):
            matched.append(self._matched_project("forest"))

        # sibling renewals of matched state projects (the D2 class)
        family_bases = self.rng.choice(
            len(state_projects),
            size=min(config.n_sibling_families, len(state_projects)),
            replace=False,
        )
        for index in family_bases:
            base = state_projects[int(index)]
            for _ in range(1 + int(self.rng.random() < 0.35)):
                self._sibling_project(base)

        # multistate NC/NRSP titles shadowing matched projects (D1 class)
        shadow_indices = self.rng.choice(
            len(matched), size=min(config.n_multistate_usda, len(matched)), replace=False
        )
        for index in shadow_indices:
            self._usda_only_project(multistate_of=matched[int(index)])

        # generic-title records on both sides
        for _ in range(config.n_generic_usda):
            self._usda_only_project(generic=True)
        for _ in range(config.n_generic_umetrics):
            self._umetrics_only_project(generic=True)

        # the late-arriving extra UMETRICS records: a few cleanly-numbered
        # matched projects (their USDA counterparts live in the regular
        # USDA table — only their UMETRICS rows were omitted) plus
        # UMETRICS-only filler
        extra: list[Project] = []
        for _ in range(config.n_extra_matched):
            project = Project(
                pid=self._next_pid(),
                kind="extra_matched",
                base_title=self.titles.make(),
                director_first=self._director()[0],
                director_last=self._director()[1],
                start_year=self._year(),
            )
            number = self.state_numbers.make()
            project.suffix = number
            project.project_number = number
            self._emit_usda(project, 1, award_number=None, project_number=number)
            self._emit_umetrics(project, 1)
            self.projects.append(project)
            extra.append(project)

        # fill the USDA table to its target size with plain USDA-only rows
        usda_rows = sum(len(p.usda_records) for p in self.projects)
        if usda_rows > config.n_usda_rows:
            raise DatasetError(
                f"matched structure already emits {usda_rows} USDA rows "
                f"(> target {config.n_usda_rows}); shrink the matched population"
            )
        while usda_rows < config.n_usda_rows:
            project = self._usda_only_project()
            usda_rows += len(project.usda_records)

        # fill the original UMETRICS table to its target size (extra
        # records do not count toward it — they arrive late)
        is_extra = lambda p: p.kind in ("extra_matched", "extra_umetrics_only")  # noqa: E731
        umetrics_rows = sum(
            len(p.umetrics_records) for p in self.projects if not is_extra(p)
        )
        if umetrics_rows > config.n_umetrics_rows:
            raise DatasetError(
                f"matched structure already emits {umetrics_rows} UMETRICS rows "
                f"(> target {config.n_umetrics_rows})"
            )
        while umetrics_rows < config.n_umetrics_rows:
            self._umetrics_only_project()
            umetrics_rows += 1

        # fill the extra-records table to its target size
        extra_rows = sum(len(p.umetrics_records) for p in extra)
        while extra_rows < config.n_extra_rows:
            project = self._umetrics_only_project()
            project.kind = "extra_umetrics_only"
            extra.append(project)
            extra_rows += 1
        return self.projects


def _truth_pairs(projects: list[Project]) -> set[tuple[str, int]]:
    truth: set[tuple[str, int]] = set()
    for project in projects:
        for u in project.umetrics_records:
            for s in project.usda_records:
                truth.add((u.unique_award_number, s.accession_number))
    return truth


def generate_scenario(config: ScenarioConfig | None = None) -> Scenario:
    """Generate the full synthetic scenario (all seven raw tables + truth)."""
    from .umetrics import (
        build_award_agg,
        build_employees,
        build_object_codes,
        build_org_units,
        build_sub_awards,
        build_vendors,
    )
    from .usda import build_usda_table

    config = config or ScenarioConfig()
    generator = _Generator(config)
    projects = generator.build()
    rng = generator.rng

    original = [
        p for p in projects if p.kind not in ("extra_matched", "extra_umetrics_only")
    ]
    extras = [
        p for p in projects if p.kind in ("extra_matched", "extra_umetrics_only")
    ]
    original_records = [u for p in original for u in p.umetrics_records]
    extra_records = [u for p in extras for u in p.umetrics_records]
    usda_records = [s for p in projects for s in p.usda_records]
    usda_records.sort(key=lambda r: r.accession_number)

    directors = {
        p.pid: (p.director_first, p.director_last) for p in projects
    }
    award_agg = build_award_agg(original_records, rng, name="UMETRICSAwardAggMatching")
    extra_award_agg = build_award_agg(
        extra_records, rng, name="UMETRICSAwardAggMatchingExtra"
    )
    all_umetrics = original_records + extra_records
    employees = build_employees(all_umetrics, directors, rng, config.aux_scale)
    return Scenario(
        config=config,
        projects=projects,
        award_agg=award_agg,
        extra_award_agg=extra_award_agg,
        usda=build_usda_table(usda_records, rng),
        employees=employees,
        org_units=build_org_units(rng),
        object_codes=build_object_codes(rng, config.aux_scale),
        sub_awards=build_sub_awards(all_umetrics, rng, config.aux_scale),
        vendors=build_vendors(all_umetrics, rng, config.aux_scale),
        truth=_truth_pairs(projects),
    )


# ----------------------------------------------------------------------
# oracle support
# ----------------------------------------------------------------------
_GENERIC_NORMALIZED = {normalize_title(t) for t in vocab.GENERIC_TITLES}
_MULTISTATE_TOKENS = {normalize_title(c) for c in vocab.MULTISTATE_CODES}


def _title_tokens(value: Any) -> list[str]:
    if is_missing(value):
        return []
    return str(normalize_title(value)).split()


def numbers_agree(l_row: dict[str, Any], r_row: dict[str, Any]) -> bool:
    """True when the M1 or award/project-number rule fires on the rows
    (rows in the *projected* schema: AwardNumber, ProjectNumber, ...)."""
    suffix = award_number_suffix(l_row.get("AwardNumber"))
    if suffix is None:
        return False
    for attr in ("AwardNumber", "ProjectNumber"):
        value = r_row.get(attr)
        if not is_missing(value) and str(value) == suffix:
            return True
    return False


def numbers_comparable_but_differ(l_row: dict[str, Any], r_row: dict[str, Any]) -> bool:
    """True when either negative-rule clause would fire."""
    suffix = award_number_suffix(l_row.get("AwardNumber"))
    if suffix is None:
        return False
    for attr in ("AwardNumber", "ProjectNumber"):
        value = r_row.get(attr)
        if is_missing(value):
            continue
        if str(value) != suffix and comparable(suffix, value):
            return True
    return False


def make_borderline_predicate():
    """The oracle's "hard pair" predicate over projected-table rows.

    A pair is borderline — the domain expert may hesitate or err — when the
    identifying numbers do not settle it and the titles alone must decide:
    generic titles, multistate (NC/NRSP) suffixes, and mid-similarity
    titles. Number-agreeing pairs are never borderline (M1 is a definition).
    """

    def borderline(l_row: dict[str, Any], r_row: dict[str, Any], is_match: bool) -> bool:
        if numbers_agree(l_row, r_row):
            return False
        l_tokens = _title_tokens(l_row.get("AwardTitle"))
        r_tokens = _title_tokens(r_row.get("AwardTitle"))
        if not l_tokens or not r_tokens:
            return True
        l_text = " ".join(l_tokens)
        r_text = " ".join(r_tokens)
        if l_text in _GENERIC_NORMALIZED or r_text in _GENERIC_NORMALIZED:
            return True
        if any(code in r_text for code in _MULTISTATE_TOKENS):
            return True
        similarity = jaccard(l_tokens, r_tokens)
        return 0.25 <= similarity <= 0.85

    return borderline
