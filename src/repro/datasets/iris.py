"""The IRIS baseline: the rule-based matcher deployed at UMETRICS.

Section 11 compares the learned workflow against "the rule-based matching
system" run by IRIS (the organization managing UMETRICS). Its behaviour —
perfect precision, limited recall — is that of an exact-number matcher: it
declares a match exactly when the M1 rule or the award/project-number rule
fires, and finds nothing whose numbers are missing, corrupted or absent
(title-only matches).
"""

from __future__ import annotations

from ..matchers.rule_matcher import PositiveRuleMatcher
from ..rules.positive import award_project_rule, m1_rule


def iris_matcher(
    l_attr: str = "AwardNumber",
    r_award_attr: str = "AwardNumber",
    r_project_attr: str = "ProjectNumber",
) -> PositiveRuleMatcher:
    """Build the IRIS rule-based matcher over the projected schemas."""
    return PositiveRuleMatcher(
        rules=[
            m1_rule(l_attr=l_attr, r_attr=r_award_attr),
            award_project_rule(l_attr=l_attr, r_attr=r_project_attr),
        ],
        name="IRIS",
    )
