"""Synthetic UMETRICS/USDA scenario with ground truth."""

from .award_numbers import (
    FederalNumberFactory,
    ForestNumberFactory,
    StateNumberFactory,
    cfda_code,
    comparable_variant,
    unique_award_number,
)
from .iris import iris_matcher
from .scenario import (
    Project,
    Scenario,
    ScenarioConfig,
    UmetricsRecord,
    UsdaRecord,
    generate_scenario,
    make_borderline_predicate,
    numbers_agree,
    numbers_comparable_but_differ,
)
from .scale import ScaleConfig, iter_scale_rows, scale_tables, true_matches
from .titles import (
    TitleFactory,
    perturb_tokens,
    umetrics_style,
    usda_style,
    with_multistate_suffix,
)
from .usda import USDA_COLUMNS

__all__ = [
    "FederalNumberFactory",
    "ForestNumberFactory",
    "Project",
    "ScaleConfig",
    "Scenario",
    "ScenarioConfig",
    "StateNumberFactory",
    "TitleFactory",
    "UmetricsRecord",
    "UsdaRecord",
    "USDA_COLUMNS",
    "cfda_code",
    "comparable_variant",
    "generate_scenario",
    "iris_matcher",
    "iter_scale_rows",
    "make_borderline_predicate",
    "numbers_agree",
    "numbers_comparable_but_differ",
    "perturb_tokens",
    "scale_tables",
    "true_matches",
    "umetrics_style",
    "unique_award_number",
    "usda_style",
    "with_multistate_suffix",
]
