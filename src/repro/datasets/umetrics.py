"""Builders for the six UMETRICS raw tables.

Schemas follow Section 4 of the paper verbatim. The award-aggregate table
is generated at full size; the employees / vendors / sub-awards /
object-codes tables carry an ``aux_scale`` factor because their full-size
row counts (1.45M, 378K, 21K, 4.6K) only exist to be profiled — the paper's
pipeline joins the employees table and ignores the rest after the
pre-processing analysis concludes they share no data with USDA.
"""

from __future__ import annotations

import numpy as np

from ..table import Table
from . import vocab
from .scenario import UmetricsRecord

#: Full-size row counts from Figure 2 (scaled by ``aux_scale``).
PAPER_ROWS_EMPLOYEES = 1_454_070
PAPER_ROWS_VENDORS = 377_746
PAPER_ROWS_SUBAWARDS = 21_470
PAPER_ROWS_OBJECT_CODES = 4_574
PAPER_ROWS_ORG_UNITS = 264


def _account_number(rng: np.random.Generator) -> str:
    return f"{int(rng.integers(100, 999))}-{int(rng.integers(1000000, 9999999))}"


def build_award_agg(
    records: list[UmetricsRecord], rng: np.random.Generator, name: str
) -> Table:
    """UMETRICSAwardAggMatching — 13 columns, one row per award."""
    rows = []
    for record in records:
        expenditures = float(np.round(rng.lognormal(11.0, 1.0), 2))
        rows.append(
            {
                "UniqueAwardNumber": record.unique_award_number,
                "AwardTitle": record.title,
                "FundingSource": str(rng.choice(vocab.FUNDING_SOURCES)),
                "FirstTransDate": record.first_trans,
                "LastTransDate": record.last_trans,
                "RecipientAccountNumber": _account_number(rng),
                "TotalOverheadCharged": float(np.round(expenditures * 0.26, 2)),
                "TotalExpenditures": expenditures,
                "NumberOfTransactions": int(rng.integers(3, 400)),
                "DataFileYearEarliest": int(record.first_trans[:4]),
                "DataFileYearLatest": int(record.last_trans[:4]),
                "SubOrgUnit": record.sub_org_unit,
                "CampusID": 1,
            }
        )
    return Table.from_rows(
        rows,
        columns=[
            "UniqueAwardNumber", "AwardTitle", "FundingSource", "FirstTransDate",
            "LastTransDate", "RecipientAccountNumber", "TotalOverheadCharged",
            "TotalExpenditures", "NumberOfTransactions", "DataFileYearEarliest",
            "DataFileYearLatest", "SubOrgUnit", "CampusID",
        ],
        name=name,
    )


def build_employees(
    records: list[UmetricsRecord],
    directors: dict[int, tuple[str, str]],
    rng: np.random.Generator,
    aux_scale: float,
) -> Table:
    """UMETRICSEmployeesMatching — 13 columns, scaled row count.

    Every award gets its project director (first row) so the Section-6
    employee-name join always finds the director; remaining rows are other
    personnel and extra pay periods, distributed to approximate the scaled
    target row count.
    """
    target_rows = max(len(records), int(round(PAPER_ROWS_EMPLOYEES * aux_scale)))
    per_award = max(1, target_rows // max(len(records), 1))
    rows = []
    for record in records:
        first, last = directors[record.project_id]
        names = [f"{last}, {first}"]
        for _ in range(per_award - 1):
            other_first = str(rng.choice(vocab.FIRST_NAMES))
            other_last = str(rng.choice(vocab.LAST_NAMES))
            names.append(f"{other_last}, {other_first}")
        for i, full_name in enumerate(names):
            year = int(record.first_trans[:4])
            rows.append(
                {
                    "UniqueAwardNumber": record.unique_award_number,
                    "PeriodStartDate": f"{year}-{(i % 12) + 1:02d}-01",
                    "PeriodEndDate": f"{year}-{(i % 12) + 1:02d}-28",
                    "RecipientAccountNumber": _account_number(rng),
                    "DeidentifiedEmployeeIdNumber": int(rng.integers(10**6, 10**7)),
                    "FullName": full_name,
                    "OccupationalClassification": str(
                        rng.choice(vocab.OCCUPATIONAL_CLASSES)
                    ),
                    "JobTitle": str(rng.choice(vocab.JOB_TITLES)),
                    "ObjectCode": int(rng.integers(1000, 1100)),
                    "SOCCode": f"{int(rng.integers(11, 53))}-{int(rng.integers(1000, 9999))}",
                    "FteStatus": float(np.round(rng.uniform(0.05, 1.0), 2)),
                    "ProportionOfEarningsAllocated": float(np.round(rng.uniform(0.05, 1.0), 2)),
                    "DataFileYear": year,
                }
            )
    return Table.from_rows(rows, name="UMETRICSEmployeesMatching")


def build_org_units(rng: np.random.Generator) -> Table:
    """UMETRICSOrgUnitMatching — 5 columns, 264 rows (full size)."""
    rows = []
    for i in range(PAPER_ROWS_ORG_UNITS):
        unit = vocab.SUB_ORG_UNITS[i % len(vocab.SUB_ORG_UNITS)]
        rows.append(
            {
                "CampusId": 1,
                "SubOrgUnit": f"{unit}-{i // len(vocab.SUB_ORG_UNITS)}",
                "CampusName": vocab.CAMPUS_NAME,
                "SubOrgUnitName": f"Department of {unit}",
                "DataFileYear": int(rng.integers(1997, 2013)),
            }
        )
    return Table.from_rows(rows, name="UMETRICSOrgUnitMatching")


def build_object_codes(rng: np.random.Generator, aux_scale: float) -> Table:
    """UMETRICSObjectCodesMatching — 3 columns, scaled row count."""
    target_rows = max(
        len(vocab.OBJECT_CODE_TEXTS), int(round(PAPER_ROWS_OBJECT_CODES * aux_scale))
    )
    rows = []
    for i in range(target_rows):
        rows.append(
            {
                "ObjectCode": 1000 + i,
                "ObjectCodeText": vocab.OBJECT_CODE_TEXTS[i % len(vocab.OBJECT_CODE_TEXTS)],
                "DataFileYear": int(rng.integers(1997, 2013)),
            }
        )
    return Table.from_rows(rows, name="UMETRICSObjectCodesMatching")


def build_sub_awards(
    records: list[UmetricsRecord], rng: np.random.Generator, aux_scale: float
) -> Table:
    """UMETRICSSubAwardMatching — 23 columns, scaled row count."""
    target_rows = int(round(PAPER_ROWS_SUBAWARDS * aux_scale))
    rows = []
    for i in range(target_rows):
        record = records[int(rng.integers(0, len(records)))]
        year = int(record.first_trans[:4])
        rows.append(
            {
                "UniqueAwardNumber": record.unique_award_number,
                "Address": f"{int(rng.integers(1, 9999))} University Ave",
                "BldgName": None,
                "City": str(rng.choice(vocab.CITIES)),
                "Country": "USA",
                "DUNS": int(rng.integers(10**8, 10**9)),
                "DomesticZipCode": f"{int(rng.integers(10000, 99999))}",
                "EIN": int(rng.integers(10**8, 10**9)),
                "ForeignZipCode": None,
                "ObjectCode": int(rng.integers(1000, 1100)),
                "OrgName": str(rng.choice(vocab.VENDOR_NAMES)),
                "OrganizationID": int(rng.integers(10**5, 10**6)),
                "POBox": None,
                "PeriodEndDate": f"{year}-12-31",
                "PeriodStartDate": f"{year}-01-01",
                "RecipientAccountNumber": _account_number(rng),
                "SrtName": None,
                "SrtNumber": None,
                "State": str(rng.choice(vocab.STATES)),
                "StrName": "University Ave",
                "StrNumber": int(rng.integers(1, 9999)),
                "SubAwardPaymentAmount": float(np.round(rng.lognormal(9.5, 1.2), 2)),
                "DataFileYear": year,
            }
        )
    return Table.from_rows(rows, name="UMETRICSSubAwardMatching") if rows else Table.empty(
        ["UniqueAwardNumber"], name="UMETRICSSubAwardMatching"
    )


def build_vendors(
    records: list[UmetricsRecord], rng: np.random.Generator, aux_scale: float
) -> Table:
    """UMETRICSVendorMatching — 21 columns, scaled row count.

    Vendor OrgName/DUNS values are deliberately disjoint from USDA's
    "Recipient Organization"/"Recipient DUNS" — the paper's pre-processing
    checked for overlap, found none, and dropped the table.
    """
    target_rows = int(round(PAPER_ROWS_VENDORS * aux_scale))
    rows = []
    for i in range(target_rows):
        record = records[int(rng.integers(0, len(records)))]
        year = int(record.first_trans[:4])
        rows.append(
            {
                "UniqueAwardNumber": record.unique_award_number,
                "PeriodStartDate": f"{year}-01-01",
                "PeriodEndDate": f"{year}-12-31",
                "RecipientAccountNumber": _account_number(rng),
                "ObjectCode": int(rng.integers(1000, 1100)),
                "OrganizationID": int(rng.integers(10**5, 10**6)),
                "EIN": int(rng.integers(10**8, 10**9)),
                "DUNS": int(rng.integers(10**8, 10**9)),
                "VendorPaymentAmount": float(np.round(rng.lognormal(7.0, 1.5), 2)),
                "OrgName": str(rng.choice(vocab.VENDOR_NAMES)),
                "POBox": None,
                "BldgNum": None,
                "StrNumber": int(rng.integers(1, 9999)),
                "StrName": "Commerce Dr",
                "Address": f"{int(rng.integers(1, 9999))} Commerce Dr",
                "City": str(rng.choice(vocab.CITIES)),
                "State": str(rng.choice(vocab.STATES)),
                "DomesticZipCode": f"{int(rng.integers(10000, 99999))}",
                "ForeignZipCode": None,
                "Country": "USA",
                "DataFileYear": year,
            }
        )
    return Table.from_rows(rows, name="UMETRICSVendorMatching") if rows else Table.empty(
        ["UniqueAwardNumber"], name="UMETRICSVendorMatching"
    )
