"""Vocabulary pools for the synthetic UMETRICS/USDA scenario.

All pools are plain tuples so generation is deterministic given a seed.
The words are chosen to resemble the agricultural/science-policy domain of
the case study (crop science, food systems, rural economics) — the titles
they compose have the same token-overlap statistics the paper's blocking
thresholds were tuned against: a shared prepositional skeleton plus a few
content words, so a word-overlap threshold of 1 explodes while 3 is
selective.
"""

from __future__ import annotations

FIRST_NAMES: tuple[str, ...] = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
    "Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Daniel",
    "Nancy", "Matthew", "Lisa", "Anthony", "Betty", "Mark", "Margaret",
    "Paul", "Sandra", "Steven", "Ashley", "Andrew", "Kimberly", "Kenneth",
    "Emily", "Joshua", "Donna", "Kevin", "Michelle", "Brian", "Carol",
    "George", "Amanda", "Edward", "Dorothy", "Ronald", "Melissa", "Timothy",
    "Deborah", "Jason", "Stephanie", "Jeffrey", "Rebecca", "Ryan", "Sharon",
    "Jacob", "Laura", "Gary", "Cynthia", "Nicholas", "Kathleen", "Eric",
    "Amy", "Jonathan", "Angela", "Stephen", "Shirley", "Larry", "Anna",
    "Justin", "Brenda", "Scott", "Pamela", "Brandon", "Emma", "Benjamin",
    "Nicole", "Samuel", "Helen",
)

LAST_NAMES: tuple[str, ...] = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
    "Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
    "Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
    "Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
    "Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
    "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
    "Ross", "Foster", "Jimenez", "Kermicle", "Hammer", "Esker", "Colquhoun",
)

CROPS: tuple[str, ...] = (
    "Corn", "Soybean", "Wheat", "Alfalfa", "Potato", "Cranberry", "Carrot",
    "Oat", "Barley", "Maize", "Ginseng", "Apple", "Cherry", "Pea", "Bean",
    "Cabbage", "Onion", "Cucumber", "Pumpkin", "Hop", "Sorghum", "Clover",
    "Ryegrass", "Sunflower", "Tobacco", "Beet", "Pepper", "Tomato",
    "Strawberry", "Raspberry", "Dairy Cattle", "Swine", "Poultry", "Sheep",
    "Honey Bee", "Trout", "Turkey", "Goat",
)

METHODS: tuple[str, ...] = (
    "Genetic Organization", "Epigenetic Silencing", "Integrated Management",
    "Applied Ecology", "Breeding Strategies", "Molecular Characterization",
    "Nutrient Cycling", "Disease Resistance", "Yield Improvement",
    "Pest Suppression", "Soil Conservation", "Water Quality Monitoring",
    "Fungicide Guidelines", "Weed Control", "Irrigation Scheduling",
    "Genomic Selection", "Pathogen Surveillance", "Economic Analysis",
    "Remote Sensing", "Precision Agriculture", "Cover Cropping",
    "Tillage Practices", "Postharvest Handling", "Biological Control",
    "Grazing Management", "Nitrogen Management", "Carbon Sequestration",
    "Variety Development", "Seed Production", "Root Architecture",
)

ASPECTS: tuple[str, ...] = (
    "Production Systems", "Cropping Systems", "Field Trials",
    "Rural Communities", "Growers", "Organic Systems", "Seedling Vigor",
    "Grain Quality", "Forage Quality", "Market Development",
    "Farm Profitability", "Food Safety", "Consumer Acceptance",
    "Nutrient Uptake", "Stress Tolerance", "Winter Hardiness",
    "Storage Diseases", "Processing Quality", "Pollinator Health",
    "Landscape Diversity",
)

REGIONS: tuple[str, ...] = (
    "Wisconsin", "the North Central States", "the Upper Midwest",
    "the Great Lakes Region", "Southern Wisconsin", "Northern Wisconsin",
    "the Central Sands", "the Driftless Area", "Dane County",
    "the Midwest", "Temperate Climates", "Sandy Soils",
)

#: Extra single-word title vocabulary (joined with the pools above to form
#: the title word pool; see :data:`TITLE_WORDS`).
EXTRA_TITLE_WORDS: tuple[str, ...] = (
    "Agroecosystem", "Phenotyping", "Germplasm", "Rhizosphere", "Mycorrhizal",
    "Silage", "Forage", "Bioenergy", "Ethanol", "Biomass", "Compost",
    "Manure", "Phosphorus", "Potassium", "Drainage", "Runoff", "Erosion",
    "Watershed", "Wetland", "Prairie", "Woodland", "Savanna", "Orchard",
    "Vineyard", "Greenhouse", "Hydroponic", "Transplant", "Germination",
    "Dormancy", "Senescence", "Photosynthesis", "Transpiration", "Drought",
    "Frost", "Hail", "Flooding", "Salinity", "Acidity", "Alkalinity",
    "Micronutrient", "Mineralization", "Denitrification", "Legume",
    "Inoculant", "Cultivar", "Hybrid", "Transgenic", "Genotype", "Phenotype",
    "Heritability", "Linkage", "Marker", "Sequencing", "Transcriptome",
    "Proteomics", "Metabolomics", "Enzyme", "Pathway", "Regulation",
    "Expression", "Mutagenesis", "Selection", "Adaptation", "Resilience",
    "Sustainability", "Profitability", "Cooperative", "Policy", "Trade",
    "Export", "Tariff", "Subsidy", "Insurance", "Credit", "Finance",
    "Workforce", "Immigration", "Nutrition", "Obesity", "Diet", "Fiber",
    "Protein", "Starch", "Lipid", "Vitamin", "Fermentation", "Pasteurization",
    "Cheese", "Butter", "Yogurt", "Whey", "Brewing", "Malting", "Milling",
    "Canning", "Freezing", "Packaging", "Labeling", "Traceability",
    "Biosecurity", "Vaccination", "Parasite", "Mastitis", "Lameness",
    "Fertility", "Calving", "Weaning", "Housing", "Ventilation", "Welfare",
    "Behavior", "Genomics", "Epidemiology", "Diagnostics", "Serology",
)

#: Short generic titles that recur across unrelated awards — the paper's
#: "Lab Supplies" problem (exact title equality that still is not a match).
GENERIC_TITLES: tuple[str, ...] = (
    "Lab Supplies",
    "Equipment",
    "Field Equipment",
    "Research Support",
    "Graduate Student Support",
    "Extension Services",
    "Administrative Support",
    "Hatch Project Administration",
    "Travel Support",
    "Summer Research Program",
)

#: Multistate project codes: USDA titles sometimes carry an "NC/NRSP"
#: suffix marking multistate coordination (the D1 discrepancy class).
MULTISTATE_CODES: tuple[str, ...] = (
    "NC-213", "NC-1173", "NC-1029", "NRSP-8", "NRSP-10", "NC-140", "NC-1183",
)

FUNDING_SOURCES: tuple[str, ...] = (
    "USDA", "USDA-NIFA", "USDA-ARS", "USDA-FS", "State", "Hatch",
    "McIntire-Stennis", "Smith-Lever",
)

SPONSORING_AGENCIES: tuple[str, ...] = (
    "NIFA", "State Agricultural Experiment Station",
    "Cooperative State Research Education and Extension Service",
    "Agricultural Research Service", "Forest Service",
)

FUNDING_MECHANISMS: tuple[str, ...] = (
    "Grant", "State Funding", "Formula Funding", "Cooperative Agreement",
    "Special Grant", "Contract",
)

SUB_ORG_UNITS: tuple[str, ...] = (
    "Agronomy", "Plant Pathology", "Horticulture", "Entomology",
    "Soil Science", "Dairy Science", "Animal Sciences",
    "Agricultural and Applied Economics", "Biological Systems Engineering",
    "Food Science", "Forest and Wildlife Ecology", "Bacteriology",
    "Genetics", "Nutritional Sciences", "Community and Environmental Sociology",
)

JOB_TITLES: tuple[str, ...] = (
    "Professor", "Associate Professor", "Assistant Professor",
    "Research Associate", "Postdoctoral Fellow", "Graduate Research Assistant",
    "Research Specialist", "Scientist", "Lab Manager", "Undergraduate Assistant",
)

OCCUPATIONAL_CLASSES: tuple[str, ...] = (
    "Faculty", "Research Staff", "Postdoc", "Graduate Student",
    "Undergraduate", "Technician", "Administrative",
)

OBJECT_CODE_TEXTS: tuple[str, ...] = (
    "Salaries and Wages", "Fringe Benefits", "Capital Equipment",
    "Supplies and Materials", "Travel - Domestic", "Travel - Foreign",
    "Tuition Remission", "Subcontracts", "Consultant Services",
    "Publication Costs", "Facility Rental", "Animal Care",
    "Telecommunications", "Maintenance Contracts", "Software Licenses",
)

VENDOR_NAMES: tuple[str, ...] = (
    "Fisher Scientific", "Sigma-Aldrich", "VWR International", "Dell Inc",
    "Grainger", "Airgas", "Midwest Seed Services", "Badger Laboratory Supply",
    "Promega Corporation", "Thermo Electron", "Bio-Rad Laboratories",
    "Agilent Technologies", "New Horizon Farms", "Capital Propane",
    "University Book Store", "Madison Gas and Electric", "Quill Corporation",
    "Wisconsin Crop Improvement", "Greenhouse Megastore", "CDW Government",
)

CITIES: tuple[str, ...] = (
    "Madison", "Milwaukee", "Middleton", "Verona", "Fitchburg", "Waunakee",
    "Sun Prairie", "Stoughton", "Chicago", "Minneapolis", "St. Louis",
    "Pittsburgh", "Atlanta", "Boston",
)

STATES: tuple[str, ...] = ("WI", "IL", "MN", "MO", "PA", "GA", "MA")

CAMPUS_NAME = "University of Wisconsin-Madison"
RECIPIENT_ORGANIZATION = "SAES - UNIVERSITY OF WISCONSIN"


def _build_title_words() -> tuple[str, ...]:
    """The single-word title pool: crops/methods/aspects split into words
    plus the extra vocabulary, de-duplicated (order preserved)."""
    seen: set[str] = set()
    words: list[str] = []
    for source in (CROPS, METHODS, ASPECTS, EXTRA_TITLE_WORDS):
        for phrase in source:
            for word in phrase.split():
                if len(word) > 3 and word not in seen:
                    seen.add(word)
                    words.append(word)
    return tuple(words)


#: Single-word pool titles are composed from. Its size (~230) is the main
#: lever on incidental token overlap between unrelated titles — and hence
#: on the Section-7 candidate-set sizes.
TITLE_WORDS: tuple[str, ...] = _build_title_words()

#: Function words occasionally embedded in titles. Kept rare: real award
#: titles are mostly noun phrases, which is why the paper's overlap
#: threshold of 3 is so much more selective than 1.
TITLE_FUNCTION_WORDS: tuple[str, ...] = ("of", "in", "for", "and", "under", "across")
