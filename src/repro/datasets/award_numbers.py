"""Award/project number factories for the synthetic scenario.

Three real-world shapes (see :mod:`repro.text.patterns`):

* federal: ``2008-34103-19449``    (year - program - serial)
* state/Hatch project: ``WIS01040``
* forest-service contract: ``03-CS-11231300-031``

Factories guarantee uniqueness within a scenario. :func:`comparable_variant`
produces a *different* number with the *same* pattern — the raw material for
D2-style renewals and for the true matches the negative rule later flips.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatasetError


class NumberFactory:
    """Base class: draws unique identifiers from a seeded generator."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._issued: set[str] = set()

    def _claim(self, make) -> str:
        for _ in range(10_000):
            candidate = make()
            if candidate not in self._issued:
                self._issued.add(candidate)
                return candidate
        raise DatasetError(f"{type(self).__name__} exhausted its number space")

    def reserve(self, number: str) -> None:
        """Mark an externally-produced number as taken."""
        self._issued.add(number)


class FederalNumberFactory(NumberFactory):
    """``YYYY-#####-#####`` federal USDA award numbers."""

    def make(self, year: int) -> str:
        def build() -> str:
            program = int(self._rng.integers(10000, 99999))
            serial = int(self._rng.integers(10000, 99999))
            return f"{year}-{program}-{serial}"

        return self._claim(build)


class StateNumberFactory(NumberFactory):
    """``WIS#####`` Hatch/state project numbers."""

    def make(self) -> str:
        def build() -> str:
            return f"WIS{int(self._rng.integers(0, 100000)):05d}"

        return self._claim(build)


class ForestNumberFactory(NumberFactory):
    """``##-CS-########-###`` forest-service contract numbers."""

    def make(self, year: int) -> str:
        def build() -> str:
            middle = int(self._rng.integers(10_000_000, 99_999_999))
            serial = int(self._rng.integers(100, 999))
            return f"{year % 100:02d}-CS-{middle}-{serial:03d}"

        return self._claim(build)


def cfda_code(rng: np.random.Generator) -> str:
    """A CFDA program prefix like ``10.200`` (USDA programs are 10.xxx)."""
    return f"10.{int(rng.integers(100, 999)):03d}"


def unique_award_number(cfda: str, suffix: str) -> str:
    """Compose a UMETRICS ``UniqueAwardNumber`` from prefix and suffix."""
    return f"{cfda} {suffix}"


def comparable_variant(number: str, rng: np.random.Generator) -> str:
    """A different number with the same pattern (one digit perturbed).

    The perturbed digit is re-drawn until the pattern signature is
    preserved (changing the leading digit of a year, e.g. 2008 -> 7008,
    would alter the signature and defeat the "comparable" relation the
    negative rule relies on).
    """
    from ..text.patterns import pattern_signature

    digit_positions = [i for i, ch in enumerate(number) if ch.isdigit()]
    if not digit_positions:
        raise DatasetError(f"cannot perturb a number without digits: {number!r}")
    signature = pattern_signature(number)
    for _ in range(1000):
        position = int(rng.choice(digit_positions))
        old = number[position]
        choices = [d for d in "0123456789" if d != old]
        new = str(rng.choice(choices))
        candidate = number[:position] + new + number[position + 1 :]
        if pattern_signature(candidate) == signature:
            return candidate
    raise DatasetError(f"could not perturb {number!r} within its pattern")
