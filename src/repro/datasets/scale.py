"""Million-row synthetic blocking workload, streamed.

The Figure-2 scenario generator is faithful to the paper but tops out
around tens of thousands of rows: it materializes project objects, and
its title reuse produces a token-frequency profile too benign to stress
blocking. This module generates the *adversarial* profile blocking must
survive at the ROADMAP's million-row scale, with exactly the structure
the sharded/capped/LSH stack is built for:

* every row's title holds 8 tokens — a per-row unique core plus,
  for some rows, shared "family" tokens drawn from two pools:
  pool **A** (few families, many members) whose posting lists grow
  *linearly* with the row count, and pool **B** (many families, few
  members) whose lists grow slowly — together a two-knee approximation
  of a Zipf token distribution with precisely known block sizes;
* a fixed fraction of left rows *match* one right row (6 of 8 tokens
  shared → Jaccard 2/3, overlap 6): ground truth is returned alongside
  the tables, so benchmarks can measure LSH recall exactly;
* "collider" left rows share exactly 3 tokens with a whole family —
  enough to pass the overlap blocker's K=3 verification, far below any
  Jaccard threshold — so uncapped exact blocking produces
  family-size-quadratic candidates while verified-LSH output stays
  match-proportional (the ≤ 25 %-of-overlap acceptance band);
* with a size cap ~40, pool-A families are capped at every scale and
  pool-B families are capped only past ~400k rows, which is what makes
  capped candidate growth *sub-linear* (the 10×-rows < 10×-pairs band).

Rows are **pure functions of (seed, side, row index)** — per-row
splitmix64 streams, no sequential RNG — so :func:`iter_scale_rows` is a
true streaming generator: any slice of either table can be produced in
O(slice) memory, left rows can cite their right partner without the
right table in memory, and the result is independent of chunking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import DatasetError
from ..table import Table

_MASK64 = (1 << 64) - 1


def _mix(*parts: int) -> int:
    """splitmix64 folded over *parts* — the per-row random stream."""
    x = 0x9E3779B97F4A7C15
    for p in parts:
        x = (x ^ (p & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        x = (x + 0x9E3779B97F4A7C15) & _MASK64
        x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
        x ^= x >> 31
    return x


def _u01(*parts: int) -> float:
    return _mix(*parts) / 2**64


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs for the scaled workload; defaults match the benchmark bands.

    ``rows`` is the per-table row count. Family pool sizes are *counts of
    families*; the expected family block size is
    ``rows * fraction / families`` — with the defaults, pool A blocks at
    one member per 1 000 rows and pool B at one per 10 000.
    """

    rows: int
    seed: int = 0
    matched_fraction: float = 0.3
    families_a: int = 200
    family_fraction_a: float = 0.2
    collider_fraction_a: float = 0.05
    families_b: int = 2000
    family_fraction_b: float = 0.2
    collider_fraction_b: float = 0.03

    def __post_init__(self) -> None:
        if self.rows < 1:
            raise DatasetError(f"rows must be >= 1, got {self.rows}")
        total = (
            self.matched_fraction
            + self.collider_fraction_a
            + self.collider_fraction_b
        )
        if total > 1.0:
            raise DatasetError(
                "matched + collider fractions must not exceed 1, "
                f"got {total:.3f}"
            )


def _family_tokens(pool: str, family: int) -> list[str]:
    return [f"f{pool}{family}t{t}" for t in range(4)]


def _right_tokens(config: ScaleConfig, i: int) -> list[str]:
    """Right row *i*'s 8 title tokens (pure function of seed and i)."""
    draw = _u01(config.seed, 1, i)
    unique = [f"u{i}t{t}" for t in range(4)]
    if draw < config.family_fraction_a:
        fam = _mix(config.seed, 2, i) % config.families_a
        return _family_tokens("a", fam) + unique
    if draw < config.family_fraction_a + config.family_fraction_b:
        fam = _mix(config.seed, 3, i) % config.families_b
        return _family_tokens("b", fam) + unique
    return unique + [f"u{i}t{t}" for t in range(4, 8)]


def _left_partner(config: ScaleConfig, i: int) -> int | None:
    """The right row a matched left row *i* copies, else ``None``."""
    if _u01(config.seed, 4, i) < config.matched_fraction:
        return _mix(config.seed, 5, i) % config.rows
    return None


def _left_tokens(config: ScaleConfig, i: int) -> list[str]:
    """Left row *i*'s title tokens (pure function of seed and i)."""
    partner = _left_partner(config, i)
    if partner is not None:
        # 6 of the partner's 8 tokens + 1 fresh: overlap 6, Jaccard 2/3.
        return _right_tokens(config, partner)[:6] + [f"x{i}t0"]
    draw = _u01(config.seed, 4, i) - config.matched_fraction
    fresh = [f"x{i}t{t}" for t in range(8)]
    if draw < config.collider_fraction_a:
        fam = _mix(config.seed, 6, i) % config.families_a
        return _family_tokens("a", fam)[:3] + fresh
    if draw < config.collider_fraction_a + config.collider_fraction_b:
        fam = _mix(config.seed, 7, i) % config.families_b
        return _family_tokens("b", fam)[:3] + fresh
    return fresh


def iter_scale_rows(
    config: ScaleConfig, side: str, start: int = 0, stop: int | None = None
) -> Iterator[tuple[int, str]]:
    """Stream ``(row id, title)`` for ``side in {"left", "right"}``.

    Any ``[start, stop)`` slice streams in O(1) memory per row; slicing
    and chunking never change row content.
    """
    if side not in ("left", "right"):
        raise DatasetError(f"side must be 'left' or 'right', got {side!r}")
    stop = config.rows if stop is None else min(stop, config.rows)
    tokens_of = _left_tokens if side == "left" else _right_tokens
    for i in range(start, stop):
        yield i, " ".join(tokens_of(config, i))


def true_matches(config: ScaleConfig) -> list[tuple[int, int]]:
    """Ground-truth (left id, right id) matched pairs, left-row order."""
    out = []
    for i in range(config.rows):
        partner = _left_partner(config, i)
        if partner is not None:
            out.append((i, partner))
    return out


def scale_tables(config: ScaleConfig) -> tuple[Table, Table, list[tuple[int, int]]]:
    """Materialize ``(left, right, matches)`` tables for benchmarks.

    Row ids are ints (the key column); titles are single space-joined
    strings ready for the whitespace tokenizer.
    """
    l_ids, l_titles = [], []
    for rid, title in iter_scale_rows(config, "left"):
        l_ids.append(rid)
        l_titles.append(title)
    r_ids, r_titles = [], []
    for rid, title in iter_scale_rows(config, "right"):
        r_ids.append(rid)
        r_titles.append(title)
    left = Table({"id": l_ids, "title": l_titles}, name=f"scale_l_{config.rows}")
    right = Table({"id": r_ids, "title": r_titles}, name=f"scale_r_{config.rows}")
    return left, right, true_matches(config)
