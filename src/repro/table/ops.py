"""Relational operations across tables: joins, concatenation, group-concat.

The case study needs an inner/left hash join (to pull employee names into
the projected UMETRICS table), vertical concatenation (to append the 496
late-arriving records) and a group-concatenate (to merge multiple employee
names per award with a ``|`` separator).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from ..errors import SchemaError, TableError
from .column import is_missing
from .table import Table


def _output_columns(left: Table, right: Table, right_on: str, suffix: str) -> dict[str, str]:
    """Decide output names for right-side columns (join key is dropped)."""
    taken = set(left.columns)
    renames: dict[str, str] = {}
    for c in right.columns:
        if c == right_on:
            continue
        new = c if c not in taken else f"{c}{suffix}"
        if new in taken:
            raise SchemaError(f"join output column collision on {new!r}")
        taken.add(new)
        renames[c] = new
    return renames


def hash_join(
    left: Table,
    right: Table,
    left_on: str,
    right_on: str,
    how: str = "inner",
    suffix: str = "_right",
    name: str = "",
) -> Table:
    """Equi-join *left* and *right* on the given columns.

    ``how`` is ``"inner"`` or ``"left"``. Rows with a missing join key never
    match (SQL semantics). The right join column is dropped from the output;
    other right columns that collide with left names get *suffix* appended.
    """
    if how not in ("inner", "left"):
        raise TableError(f"unsupported join type {how!r}")
    renames = _output_columns(left, right, right_on, suffix)
    index = right.value_index(right_on)
    out_rows: list[dict[str, Any]] = []
    columns = left.columns + list(renames.values())
    for lrow in left.rows():
        key = lrow[left_on]
        matches = [] if is_missing(key) else index.get(key, [])
        if matches:
            for ri in matches:
                rrow = right.row(ri)
                merged = dict(lrow)
                merged.update({renames[c]: rrow[c] for c in renames})
                out_rows.append(merged)
        elif how == "left":
            merged = dict(lrow)
            merged.update({renames[c]: None for c in renames})
            out_rows.append(merged)
    return Table.from_rows(out_rows, columns=columns, name=name)


def concat(tables: Sequence[Table], name: str = "") -> Table:
    """Stack tables vertically; all must share the same column set/order."""
    if not tables:
        raise TableError("concat needs at least one table")
    columns = tables[0].columns
    for t in tables[1:]:
        if t.columns != columns:
            raise SchemaError(
                f"cannot concat tables with differing columns: {columns} vs {t.columns}"
            )
    data = {c: [] for c in columns}
    for t in tables:
        for c in columns:
            data[c].extend(t[c])
    return Table(data, name=name or tables[0].name)


def group_concat(
    table: Table,
    key: str,
    value: str,
    sep: str = "|",
    name: str = "",
) -> Table:
    """Group rows by *key* and join the non-missing *value* cells with *sep*.

    Returns a two-column table ``(key, value)`` with one row per distinct
    key, mirroring the paper's employee-name concatenation (Section 6,
    step 4.b). Duplicate values within a group are kept once, preserving
    first-seen order.
    """
    groups: dict[Any, list[str]] = {}
    order: list[Any] = []
    for row in table.rows():
        k, v = row[key], row[value]
        if is_missing(k):
            continue
        if k not in groups:
            groups[k] = []
            order.append(k)
        if not is_missing(v):
            text = str(v)
            if text not in groups[k]:
                groups[k].append(text)
    return Table(
        {
            key: order,
            value: [sep.join(groups[k]) if groups[k] else None for k in order],
        },
        name=name,
    )


def aggregate(
    table: Table,
    key: str,
    value: str,
    fn: Callable[[list[Any]], Any],
    out: str = "agg",
    name: str = "",
) -> Table:
    """Group by *key* and reduce the *value* cells of each group with *fn*."""
    groups: dict[Any, list[Any]] = {}
    order: list[Any] = []
    for row in table.rows():
        k = row[key]
        if is_missing(k):
            continue
        if k not in groups:
            groups[k] = []
            order.append(k)
        if not is_missing(row[value]):
            groups[k].append(row[value])
    return Table(
        {key: order, out: [fn(groups[k]) for k in order]},
        name=name,
    )


def values_overlap(left: Table, right: Table, left_col: str, right_col: str) -> float:
    """Jaccard overlap of the distinct non-missing values of two columns.

    Used in pre-processing step 3 of the case study to decide whether two
    similarly-named attributes actually share data (e.g. USDA "Recipient
    DUNS" vs UMETRICS vendor "DUNS" — the paper found zero overlap).
    """
    a = {v for v in left[left_col] if not is_missing(v)}
    b = {v for v in right[right_col] if not is_missing(v)}
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)
