"""Plain-text rendering of tables.

The EM team spends a lot of the case study *looking at rows* (sample rows
in Section 4, example matching pairs in Figures 5-7); this module renders
tables and record pairs as aligned text for exactly that kind of
eyeballing, in examples and the CLI.
"""

from __future__ import annotations

from typing import Any, Sequence

from .column import is_missing
from .table import Table


def _cell_text(value: Any, max_width: int) -> str:
    text = "" if is_missing(value) else str(value)
    if len(text) > max_width:
        return text[: max_width - 1] + "…"
    return text


def render_table(
    table: Table,
    max_rows: int = 10,
    max_width: int = 28,
    columns: Sequence[str] | None = None,
) -> str:
    """Render up to *max_rows* rows as an aligned text grid."""
    columns = list(columns) if columns is not None else table.columns
    shown = table.project(columns).head(max_rows)
    widths = {
        c: min(
            max(len(c), max((len(_cell_text(v, max_width)) for v in shown[c]), default=0)),
            max_width,
        )
        for c in columns
    }
    header = " | ".join(c[: widths[c]].ljust(widths[c]) for c in columns)
    bar = "-+-".join("-" * widths[c] for c in columns)
    lines = [header, bar]
    for row in shown.rows():
        lines.append(
            " | ".join(_cell_text(row[c], max_width).ljust(widths[c]) for c in columns)
        )
    if table.num_rows > max_rows:
        lines.append(f"... ({table.num_rows - max_rows} more rows)")
    return "\n".join(lines)


def render_record_pair(
    l_row: dict[str, Any],
    r_row: dict[str, Any],
    l_label: str = "left",
    r_label: str = "right",
    max_width: int = 44,
) -> str:
    """Render two records side by side, Figure-5 style (field | l | r)."""
    fields = list(dict.fromkeys(list(l_row) + list(r_row)))
    field_width = max((len(f) for f in fields), default=5)
    lines = [
        f"{'field'.ljust(field_width)} | {l_label.ljust(max_width)} | {r_label}",
        f"{'-' * field_width}-+-{'-' * max_width}-+-{'-' * max_width}",
    ]
    for field in fields:
        left = _cell_text(l_row.get(field), max_width)
        right = _cell_text(r_row.get(field), max_width)
        lines.append(f"{field.ljust(field_width)} | {left.ljust(max_width)} | {right}")
    return "\n".join(lines)
