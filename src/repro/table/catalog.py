"""Metadata catalog: key and foreign-key registration and validation.

PyMatcher keeps table metadata (which column is the key, how candidate-set
tables point back to their base tables) in a catalog next to the data.
Pre-processing step 2 of the case study validates that "UniqueAwardNumber"
and "Accession Number" really are keys, and that the employees table has a
valid foreign key into the award table — these checks live here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError, KeyConstraintError
from .column import is_missing
from .table import Table


def is_key(table: Table, column: str) -> bool:
    """True when *column* has no missing values and no duplicates."""
    values = table[column]
    if any(is_missing(v) for v in values):
        return False
    return len(set(values)) == len(values)


def validate_key(table: Table, column: str) -> None:
    """Raise :class:`KeyConstraintError` when *column* is not a key."""
    values = table[column]
    n_missing = sum(1 for v in values if is_missing(v))
    if n_missing:
        raise KeyConstraintError(
            f"{table.name}.{column} has {n_missing} missing values; not a key"
        )
    n_dupes = len(values) - len(set(values))
    if n_dupes:
        raise KeyConstraintError(
            f"{table.name}.{column} has {n_dupes} duplicate values; not a key"
        )


def foreign_key_violations(
    child: Table, child_column: str, parent: Table, parent_column: str
) -> list[int]:
    """Row indices of *child* whose non-missing FK value is absent from the parent."""
    parent_values = {v for v in parent[parent_column] if not is_missing(v)}
    return [
        i
        for i, v in enumerate(child[child_column])
        if not is_missing(v) and v not in parent_values
    ]


def validate_foreign_key(
    child: Table, child_column: str, parent: Table, parent_column: str
) -> None:
    """Raise when the FK has dangling references."""
    bad = foreign_key_violations(child, child_column, parent, parent_column)
    if bad:
        raise KeyConstraintError(
            f"{child.name}.{child_column} has {len(bad)} values missing from "
            f"{parent.name}.{parent_column} (first offending row: {bad[0]})"
        )


@dataclass
class Catalog:
    """Registry of table keys and candidate-set provenance.

    A candidate set produced by blocking is itself a table; the catalog
    records which base tables and key columns its ``ltable_id``/``rtable_id``
    columns refer to, so downstream stages (feature extraction, debugging)
    can recover the original rows.
    """

    _keys: dict[int, str] = field(default_factory=dict)
    _provenance: dict[int, dict[str, object]] = field(default_factory=dict)

    def set_key(self, table: Table, column: str) -> None:
        """Register (and validate) the key column of *table*."""
        validate_key(table, column)
        self._keys[id(table)] = column

    def get_key(self, table: Table) -> str:
        try:
            return self._keys[id(table)]
        except KeyError:
            raise CatalogError(f"no key registered for table {table.name!r}") from None

    def has_key(self, table: Table) -> bool:
        return id(table) in self._keys

    def set_candidate_provenance(
        self,
        candidates: Table,
        ltable: Table,
        rtable: Table,
        l_id_column: str = "ltable_id",
        r_id_column: str = "rtable_id",
    ) -> None:
        """Record which base tables a candidate-set table was built from."""
        for col in (l_id_column, r_id_column):
            if col not in candidates:
                raise CatalogError(f"candidate set lacks id column {col!r}")
        self._provenance[id(candidates)] = {
            "ltable": ltable,
            "rtable": rtable,
            "l_id_column": l_id_column,
            "r_id_column": r_id_column,
        }

    def get_candidate_provenance(self, candidates: Table) -> dict[str, object]:
        try:
            return dict(self._provenance[id(candidates)])
        except KeyError:
            raise CatalogError(
                f"no provenance registered for candidate table {candidates.name!r}"
            ) from None
