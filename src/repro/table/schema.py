"""Column type inference.

PyMatcher's automatic feature generation keys off a coarse attribute type:
numeric, boolean, or a string class bucketed by average token count. This
module infers those types from column values; :mod:`repro.features.types`
maps them onto feature recipes.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Sequence

from .column import is_missing
from .table import Table


class AttrType(Enum):
    """Coarse attribute types used to pick similarity features."""

    NUMERIC = "numeric"
    BOOLEAN = "boolean"
    STR_EQ_1W = "string (1 word)"
    STR_BT_1W_5W = "string (1-5 words)"
    STR_BT_5W_10W = "string (5-10 words)"
    STR_GT_10W = "string (>10 words)"
    UNKNOWN = "unknown"

    @property
    def is_string(self) -> bool:
        return self in (
            AttrType.STR_EQ_1W,
            AttrType.STR_BT_1W_5W,
            AttrType.STR_BT_5W_10W,
            AttrType.STR_GT_10W,
        )


def infer_type(values: Sequence[Any]) -> AttrType:
    """Infer the :class:`AttrType` of a column from its values.

    Mirrors py_entitymatching's buckets: all-boolean -> BOOLEAN; all-numeric
    -> NUMERIC; strings are classified by the average whitespace token count
    (==1, (1,5], (5,10], >10). Missing values are ignored; an all-missing
    column is UNKNOWN.
    """
    present = [v for v in values if not is_missing(v)]
    if not present:
        return AttrType.UNKNOWN
    if all(isinstance(v, bool) for v in present):
        return AttrType.BOOLEAN
    if all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in present):
        return AttrType.NUMERIC
    if not all(isinstance(v, str) for v in present):
        return AttrType.UNKNOWN
    avg_tokens = sum(len(v.split()) for v in present) / len(present)
    if avg_tokens <= 1:
        return AttrType.STR_EQ_1W
    if avg_tokens <= 5:
        return AttrType.STR_BT_1W_5W
    if avg_tokens <= 10:
        return AttrType.STR_BT_5W_10W
    return AttrType.STR_GT_10W


def infer_schema(table: Table) -> dict[str, AttrType]:
    """Infer the type of every column of *table*."""
    return {c: infer_type(table[c]) for c in table.columns}


def common_typed_columns(
    left: Table,
    right: Table,
    exclude: Sequence[str] = (),
) -> dict[str, tuple[AttrType, AttrType]]:
    """Columns present in both tables, with their inferred types.

    Feature generation pairs up same-named attributes of the two input
    tables; columns listed in *exclude* (keys, bookkeeping ids) are skipped.
    """
    skip = set(exclude)
    shared = [c for c in left.columns if c in right and c not in skip]
    return {c: (infer_type(left[c]), infer_type(right[c])) for c in shared}
