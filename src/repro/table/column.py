"""Column-level helpers: missing-value handling and per-column statistics.

A column is represented as a plain ``list`` of Python values; ``None`` marks
a missing value (CSV import maps empty strings to ``None``). These helpers
are shared by :mod:`repro.table.table`, :mod:`repro.table.profile` and
:mod:`repro.table.schema`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Sequence


def is_missing(value: Any) -> bool:
    """Return True when *value* should be treated as a missing cell.

    ``None`` and float NaN are missing; empty strings are *not* (CSV import
    decides whether to map them to ``None``).
    """
    if value is None:
        return True
    return isinstance(value, float) and math.isnan(value)


def non_missing(values: Iterable[Any]) -> list[Any]:
    """Return the non-missing values of a column, preserving order."""
    return [v for v in values if not is_missing(v)]


def missing_count(values: Iterable[Any]) -> int:
    """Number of missing cells in a column."""
    return sum(1 for v in values if is_missing(v))


def unique_count(values: Iterable[Any]) -> int:
    """Number of distinct non-missing values in a column."""
    return len({v for v in values if not is_missing(v)})


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column (the pandas-profiling subset the
    case study's *understanding the data* step relies on)."""

    name: str
    count: int
    missing: int
    unique: int
    dtype: str
    mean: float | None = None
    median: float | None = None
    minimum: Any = None
    maximum: Any = None
    avg_tokens: float | None = None
    sample_values: tuple[Any, ...] = ()

    @property
    def missing_fraction(self) -> float:
        """Fraction of cells that are missing (0.0 for an empty column)."""
        if self.count == 0:
            return 0.0
        return self.missing / self.count


def _numeric_values(values: Sequence[Any]) -> list[float]:
    out = []
    for v in values:
        if is_missing(v):
            continue
        if isinstance(v, bool):
            out.append(float(v))
        elif isinstance(v, (int, float)):
            out.append(float(v))
        else:
            return []
    return out


def _median(sorted_values: Sequence[float]) -> float:
    n = len(sorted_values)
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return (sorted_values[mid - 1] + sorted_values[mid]) / 2.0


def compute_stats(name: str, values: Sequence[Any], n_samples: int = 5) -> ColumnStats:
    """Compute :class:`ColumnStats` for a column.

    Numeric statistics (mean/median/min/max) are filled only when every
    non-missing value is numeric; string columns instead report average
    whitespace-token count, which drives attribute-type inference for
    automatic feature generation.
    """
    present = non_missing(values)
    numeric = _numeric_values(values)
    mean = median = None
    minimum = maximum = None
    avg_tokens = None
    if numeric:
        ordered = sorted(numeric)
        mean = sum(numeric) / len(numeric)
        median = _median(ordered)
        minimum, maximum = ordered[0], ordered[-1]
        dtype = "numeric"
    elif present and all(isinstance(v, str) for v in present):
        token_counts = [len(v.split()) for v in present]
        avg_tokens = sum(token_counts) / len(token_counts)
        minimum = min(present)
        maximum = max(present)
        dtype = "string"
    elif present:
        dtype = "mixed"
    else:
        dtype = "empty"
    return ColumnStats(
        name=name,
        count=len(values),
        missing=missing_count(values),
        unique=unique_count(values),
        dtype=dtype,
        mean=mean,
        median=median,
        minimum=minimum,
        maximum=maximum,
        avg_tokens=avg_tokens,
        sample_values=tuple(present[:n_samples]),
    )
