"""A small columnar table engine.

This is the relational substrate the rest of the toolkit builds on — a
stand-in for the pandas dataframes PyMatcher uses. A :class:`Table` is an
ordered collection of equal-length columns; cells hold plain Python values
and ``None`` marks missing data.

The engine supports exactly the operations the case study exercises:
projection, selection, renaming, row sampling, hash joins (see
:mod:`repro.table.ops`), CSV I/O (:mod:`repro.table.io`) and profiling
(:mod:`repro.table.profile`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..errors import SchemaError, TableError
from .column import is_missing

Row = dict[str, Any]


class Table:
    """An immutable-by-convention columnar table.

    Mutating methods return new tables; the only in-place operations are
    :meth:`add_column` and :meth:`drop_columns`, which are explicit about it
    in their docstrings.

    Parameters
    ----------
    columns:
        Mapping of column name to a sequence of cell values. All columns
        must have the same length.
    name:
        Optional human-readable table name (used in profiling output).
    """

    def __init__(self, columns: Mapping[str, Sequence[Any]], name: str = "") -> None:
        self._columns: dict[str, list[Any]] = {}
        length: int | None = None
        for col_name, values in columns.items():
            values = list(values)
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise TableError(
                    f"column {col_name!r} has {len(values)} rows, expected {length}"
                )
            self._columns[str(col_name)] = values
        self._length = length or 0
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        rows: Iterable[Mapping[str, Any]],
        columns: Sequence[str] | None = None,
        name: str = "",
    ) -> "Table":
        """Build a table from an iterable of row dicts.

        When *columns* is omitted the column order is taken from the first
        row (additional keys in later rows raise :class:`SchemaError`).
        Missing keys are filled with ``None``.
        """
        rows = list(rows)
        if columns is None:
            columns = list(rows[0].keys()) if rows else []
        known = set(columns)
        data: dict[str, list[Any]] = {c: [] for c in columns}
        for i, row in enumerate(rows):
            extra = set(row) - known
            if extra:
                raise SchemaError(f"row {i} has unknown columns {sorted(extra)}")
            for c in columns:
                data[c].append(row.get(c))
        return cls(data, name=name)

    @classmethod
    def empty(cls, columns: Sequence[str], name: str = "") -> "Table":
        """An empty table with the given column names."""
        return cls({c: [] for c in columns}, name=name)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Column names, in order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    @property
    def num_cols(self) -> int:
        return len(self._columns)

    def __len__(self) -> int:
        return self._length

    def __contains__(self, column: str) -> bool:
        return column in self._columns

    def __getitem__(self, column: str) -> list[Any]:
        """Return the values of *column* (a live list — do not mutate)."""
        try:
            return self._columns[column]
        except KeyError:
            raise SchemaError(f"no column {column!r} in table {self.name!r}") from None

    def column(self, name: str) -> list[Any]:
        """Alias of ``table[name]`` for readability at call sites."""
        return self[name]

    def row(self, index: int) -> Row:
        """Return row *index* as a dict (a fresh dict each call)."""
        if not -self._length <= index < self._length:
            raise TableError(f"row index {index} out of range for {self._length} rows")
        return {c: v[index] for c, v in self._columns.items()}

    def rows(self) -> Iterator[Row]:
        """Iterate over rows as dicts."""
        for i in range(self._length):
            yield self.row(i)

    def to_rows(self) -> list[Row]:
        """Materialise all rows as a list of dicts."""
        return list(self.rows())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = self.name or "table"
        return f"<Table {label!r}: {self.num_rows} rows x {self.num_cols} cols>"

    # ------------------------------------------------------------------
    # relational operations (all return new tables)
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[str], name: str = "") -> "Table":
        """Keep only *columns*, in the given order."""
        missing = [c for c in columns if c not in self._columns]
        if missing:
            raise SchemaError(f"cannot project unknown columns {missing}")
        return Table({c: self._columns[c] for c in columns}, name=name or self.name)

    def rename(self, mapping: Mapping[str, str], name: str = "") -> "Table":
        """Rename columns according to *mapping* (old name -> new name)."""
        unknown = [c for c in mapping if c not in self._columns]
        if unknown:
            raise SchemaError(f"cannot rename unknown columns {unknown}")
        new_names = [mapping.get(c, c) for c in self._columns]
        if len(set(new_names)) != len(new_names):
            raise SchemaError(f"rename would produce duplicate columns: {new_names}")
        return Table(
            {mapping.get(c, c): v for c, v in self._columns.items()},
            name=name or self.name,
        )

    def select(self, predicate: Callable[[Row], bool], name: str = "") -> "Table":
        """Keep rows for which ``predicate(row)`` is truthy."""
        keep = [i for i in range(self._length) if predicate(self.row(i))]
        return self.take(keep, name=name)

    def take(self, indices: Sequence[int], name: str = "") -> "Table":
        """Return the rows at *indices*, in the given order."""
        for i in indices:
            if not -self._length <= i < self._length:
                raise TableError(f"row index {i} out of range")
        return Table(
            {c: [v[i] for i in indices] for c, v in self._columns.items()},
            name=name or self.name,
        )

    def head(self, n: int = 5) -> "Table":
        """The first *n* rows."""
        return self.take(range(min(n, self._length)))

    def sample(self, n: int, rng: np.random.Generator, name: str = "") -> "Table":
        """A uniform random sample of *n* rows without replacement."""
        if n > self._length:
            raise TableError(f"cannot sample {n} rows from {self._length}")
        indices = rng.choice(self._length, size=n, replace=False)
        return self.take([int(i) for i in indices], name=name)

    def sort_by(self, column: str, reverse: bool = False, name: str = "") -> "Table":
        """Sort rows by *column*; missing values sort last."""
        values = self[column]
        order = sorted(
            range(self._length),
            key=lambda i: (is_missing(values[i]), values[i] if not is_missing(values[i]) else 0),
            reverse=reverse,
        )
        return self.take(order, name=name)

    def distinct(self, columns: Sequence[str] | None = None, name: str = "") -> "Table":
        """Drop duplicate rows (considering *columns*, default all)."""
        cols = list(columns) if columns is not None else self.columns
        seen: set[tuple] = set()
        keep = []
        for i in range(self._length):
            key = tuple(self._columns[c][i] for c in cols)
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return self.take(keep, name=name)

    # ------------------------------------------------------------------
    # in-place column edits
    # ------------------------------------------------------------------
    def add_column(self, name: str, values: Sequence[Any]) -> None:
        """Add a column **in place** (errors if the name already exists)."""
        if name in self._columns:
            raise SchemaError(f"column {name!r} already exists")
        values = list(values)
        if self._columns and len(values) != self._length:
            raise TableError(
                f"column {name!r} has {len(values)} rows, expected {self._length}"
            )
        if not self._columns:
            self._length = len(values)
        self._columns[name] = values

    def drop_columns(self, names: Sequence[str]) -> None:
        """Remove columns **in place**."""
        missing = [c for c in names if c not in self._columns]
        if missing:
            raise SchemaError(f"cannot drop unknown columns {missing}")
        for c in names:
            del self._columns[c]

    def with_column(self, name: str, values: Sequence[Any]) -> "Table":
        """Return a copy of the table with an added (or replaced) column."""
        data = {c: list(v) for c, v in self._columns.items()}
        data[name] = list(values)
        if len(data[name]) != self._length and self._columns:
            raise TableError(
                f"column {name!r} has {len(data[name])} rows, expected {self._length}"
            )
        return Table(data, name=self.name)

    def map_column(self, name: str, fn: Callable[[Any], Any]) -> "Table":
        """Return a copy with ``fn`` applied to every cell of *name*."""
        return self.with_column(name, [fn(v) for v in self[name]])

    # ------------------------------------------------------------------
    # comparisons / misc
    # ------------------------------------------------------------------
    def copy(self, name: str = "") -> "Table":
        """A deep-enough copy (column lists are copied; cells are shared)."""
        return Table({c: list(v) for c, v in self._columns.items()}, name=name or self.name)

    def equals(self, other: "Table") -> bool:
        """True when both tables have identical columns and cell values."""
        if self.columns != other.columns or self.num_rows != other.num_rows:
            return False
        return all(self._columns[c] == other._columns[c] for c in self._columns)

    def value_index(self, column: str) -> dict[Any, list[int]]:
        """Map each non-missing value of *column* to the row indices holding it."""
        index: dict[Any, list[int]] = {}
        for i, v in enumerate(self[column]):
            if not is_missing(v):
                index.setdefault(v, []).append(i)
        return index
