"""Table profiling — the pandas-profiling stand-in.

Section 4 of the case study ("Understanding the Data") browses random sample
rows and per-column statistics (unique counts, missing counts, mean, median)
for each raw table. :func:`profile_table` computes that summary and
:func:`format_profile` renders it as the kind of report the EM team read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .column import ColumnStats, compute_stats
from .table import Table


@dataclass(frozen=True)
class TableProfile:
    """Profiling result for one table."""

    name: str
    num_rows: int
    num_cols: int
    columns: tuple[ColumnStats, ...]

    def column_stats(self, name: str) -> ColumnStats:
        for stats in self.columns:
            if stats.name == name:
                return stats
        raise KeyError(name)


def profile_table(table: Table) -> TableProfile:
    """Compute per-column statistics for *table*."""
    return TableProfile(
        name=table.name,
        num_rows=table.num_rows,
        num_cols=table.num_cols,
        columns=tuple(compute_stats(c, table[c]) for c in table.columns),
    )


def sample_rows(table: Table, n: int, rng: np.random.Generator) -> list[dict]:
    """Random sample rows for eyeballing, as the EM team did first."""
    n = min(n, table.num_rows)
    return table.sample(n, rng).to_rows() if n else []


def format_profile(profile: TableProfile, max_width: int = 30) -> str:
    """Render a profile as an aligned text report."""
    lines = [
        f"Table {profile.name!r}: {profile.num_rows} rows x {profile.num_cols} cols",
        f"{'column':<{max_width}} {'type':<10} {'missing':>8} {'unique':>8}  detail",
    ]
    for stats in profile.columns:
        if stats.dtype == "numeric":
            detail = f"mean={stats.mean:.4g} median={stats.median:.4g}"
        elif stats.dtype == "string":
            detail = f"avg_tokens={stats.avg_tokens:.2f}"
        else:
            detail = "-"
        name = stats.name if len(stats.name) <= max_width else stats.name[: max_width - 1] + "…"
        lines.append(
            f"{name:<{max_width}} {stats.dtype:<10} {stats.missing:>8} {stats.unique:>8}  {detail}"
        )
    return "\n".join(lines)


def summarize_tables(tables: list[Table]) -> Table:
    """Build the Figure-2 style summary (table name, num rows, num cols)."""
    return Table(
        {
            "Table Name": [t.name for t in tables],
            "Num. Rows": [t.num_rows for t in tables],
            "Num. Cols": [t.num_cols for t in tables],
        },
        name="summary",
    )
