"""Columnar table substrate (pandas stand-in) used throughout the toolkit."""

from .catalog import (
    Catalog,
    foreign_key_violations,
    is_key,
    validate_foreign_key,
    validate_key,
)
from .column import ColumnStats, compute_stats, is_missing, missing_count, unique_count
from .io import read_csv, write_csv
from .ops import aggregate, concat, group_concat, hash_join, values_overlap
from .pretty import render_record_pair, render_table
from .profile import (
    TableProfile,
    format_profile,
    profile_table,
    sample_rows,
    summarize_tables,
)
from .schema import AttrType, common_typed_columns, infer_schema, infer_type
from .table import Row, Table

__all__ = [
    "AttrType",
    "Catalog",
    "ColumnStats",
    "Row",
    "Table",
    "TableProfile",
    "aggregate",
    "common_typed_columns",
    "compute_stats",
    "concat",
    "foreign_key_violations",
    "format_profile",
    "group_concat",
    "hash_join",
    "infer_schema",
    "infer_type",
    "is_key",
    "is_missing",
    "missing_count",
    "profile_table",
    "read_csv",
    "render_record_pair",
    "render_table",
    "sample_rows",
    "summarize_tables",
    "unique_count",
    "validate_foreign_key",
    "validate_key",
    "values_overlap",
    "write_csv",
]
