"""CSV import/export for :class:`repro.table.Table`.

The raw case-study tables arrive as CSV files (the UMETRICS team shared a
Google Drive folder of them); this module reads and writes that format with
optional light type coercion (int/float detection), mapping empty cells to
``None`` on the way in and ``None`` to empty cells on the way out.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any

from ..errors import TableError
from .column import is_missing
from .table import Table


def _coerce(text: str) -> Any:
    """Parse *text* into int or float when it cleanly is one, else keep str."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def read_csv(
    path: str | Path,
    name: str = "",
    coerce_types: bool = True,
    missing_values: tuple[str, ...] = ("", "NA", "NaN"),
) -> Table:
    """Load a CSV file (header row required) into a :class:`Table`.

    Cells whose text equals one of *missing_values* become ``None``. With
    ``coerce_types`` enabled, remaining cells that parse cleanly as int or
    float are converted.
    """
    path = Path(path)
    with path.open(newline="", encoding="utf-8") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise TableError(f"{path} is empty (no header row)") from None
        data: dict[str, list[Any]] = {c: [] for c in header}
        if len(data) != len(header):
            raise TableError(f"{path} has duplicate header columns: {header}")
        for line_no, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise TableError(
                    f"{path}:{line_no} has {len(record)} fields, expected {len(header)}"
                )
            for col, text in zip(header, record):
                if text in missing_values:
                    data[col].append(None)
                elif coerce_types:
                    data[col].append(_coerce(text))
                else:
                    data[col].append(text)
    return Table(data, name=name or path.stem)


def write_csv(table: Table, path: str | Path) -> None:
    """Write *table* to a CSV file; ``None`` cells become empty strings."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(table.columns)
        for row in table.rows():
            writer.writerow(
                ["" if is_missing(row[c]) else row[c] for c in table.columns]
            )
