"""Exact accuracy of a predicted match set against gold matches.

Used on the synthetic scenario (where full ground truth exists) to verify
that the Corleone *estimates* bracket the true values, and by the ablation
benches that compare workflow variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..blocking.candidate_set import Pair


@dataclass(frozen=True)
class MatchQuality:
    """Precision/recall/F1 of a predicted match set vs gold matches."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if p + r else 0.0

    def __str__(self) -> str:
        return (
            f"P={self.precision:.1%} R={self.recall:.1%} F1={self.f1:.1%} "
            f"(TP={self.true_positives}, FP={self.false_positives}, "
            f"FN={self.false_negatives})"
        )


def evaluate_matches(predicted: Iterable[Pair], gold: Iterable[Pair]) -> MatchQuality:
    """Compare a predicted match set to the gold match set."""
    predicted = {tuple(p) for p in predicted}
    gold = {tuple(p) for p in gold}
    return MatchQuality(
        true_positives=len(predicted & gold),
        false_positives=len(predicted - gold),
        false_negatives=len(gold - predicted),
    )
