"""Accuracy: exact evaluation, Corleone estimation, production monitoring."""

from .corleone import (
    AccuracyEstimate,
    Interval,
    compare_matchers,
    estimate_accuracy,
)
from .metrics import MatchQuality, evaluate_matches
from .monitor import AccuracyMonitor, MonitoringReport

__all__ = [
    "AccuracyEstimate",
    "AccuracyMonitor",
    "Interval",
    "MatchQuality",
    "MonitoringReport",
    "compare_matchers",
    "estimate_accuracy",
    "evaluate_matches",
]
