"""Production accuracy monitoring.

Section 12's "next steps": once the matcher moves into the UMETRICS
repository, new data may be dirty, so "we need to monitor the accuracy of
the match results ... by taking a random sample of the predicted matches at
regular intervals, manually labeling it, then using the labeled sample to
estimate the accuracy". :class:`AccuracyMonitor` implements that loop and
raises a flag when the estimated precision drifts below a floor, signalling
a return to the development stage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import EvaluationError
from ..labeling.labels import Label, LabeledPairs
from ..labeling.oracle import ExpertOracle
from .corleone import Interval, _proportion_interval


@dataclass(frozen=True)
class MonitoringReport:
    """One monitoring round: estimated precision of a production batch."""

    batch: str
    precision: Interval
    sample_size: int
    flagged: bool

    def __str__(self) -> str:
        status = "FLAGGED" if self.flagged else "ok"
        return f"[{status}] batch {self.batch!r}: precision {self.precision} (n={self.sample_size})"


class AccuracyMonitor:
    """Periodic precision estimation over production match batches.

    Parameters
    ----------
    precision_floor:
        Flag a batch when the *upper* end of its estimated precision falls
        below this (i.e. we are confident precision degraded).
    sample_size:
        Pairs sampled per batch for manual labeling.
    seed:
        Sampling seed.
    """

    def __init__(
        self,
        precision_floor: float = 0.9,
        sample_size: int = 50,
        seed: int = 0,
    ) -> None:
        if not 0.0 < precision_floor <= 1.0:
            raise EvaluationError(
                f"precision_floor must be in (0,1], got {precision_floor}"
            )
        self.precision_floor = precision_floor
        self.sample_size = sample_size
        self._rng = np.random.default_rng(seed)
        self._history: list[MonitoringReport] = []

    def check_batch(
        self,
        batch_name: str,
        candidates: CandidateSet,
        predicted_matches: Sequence[Pair],
        labeler: ExpertOracle,
    ) -> MonitoringReport:
        """Sample predicted matches, label them, estimate precision."""
        matches = [tuple(p) for p in predicted_matches]
        if not matches:
            raise EvaluationError(f"batch {batch_name!r} has no predicted matches")
        n = min(self.sample_size, len(matches))
        indices = self._rng.choice(len(matches), size=n, replace=False)
        sampled = [matches[int(i)] for i in indices]
        labels: LabeledPairs = labeler.label_pairs(candidates, sampled)
        usable = [(p, label) for p, label in labels.items() if label is not Label.UNSURE]
        if not usable:
            raise EvaluationError(f"batch {batch_name!r}: every sampled label was Unsure")
        positives = sum(1 for _, label in usable if label is Label.YES)
        interval = _proportion_interval(positives, len(usable), len(matches))
        report = MonitoringReport(
            batch=batch_name,
            precision=interval,
            sample_size=len(usable),
            flagged=interval.high < self.precision_floor,
        )
        self._history.append(report)
        return report

    @property
    def history(self) -> list[MonitoringReport]:
        return list(self._history)

    def export_history(self) -> list[dict]:
        """The report history as plain dicts, oldest first.

        This is the shape embedded in run manifests (the ``monitoring``
        section of :class:`~repro.obs.manifest.RunManifest`)."""
        return [
            {
                "batch": report.batch,
                "precision": {
                    "low": report.precision.low,
                    "high": report.precision.high,
                },
                "sample_size": report.sample_size,
                "flagged": report.flagged,
            }
            for report in self._history
        ]

    def history_json(self, indent: int = 2) -> str:
        """The report history serialized as a JSON array."""
        import json

        return json.dumps(self.export_history(), indent=indent)

    def needs_redevelopment(self) -> bool:
        """True when the most recent batch was flagged."""
        return bool(self._history) and self._history[-1].flagged
