"""Corleone-style sample-based accuracy estimation (Section 11).

Ground truth for the full candidate set does not exist (if it did, no EM
would be needed), so the case study estimates precision and recall from a
labeled random sample, following Formulas 2-3 in Section 6.1 of the
Corleone paper (Gokhale et al., SIGMOD 2014):

* draw a uniform sample S from the consolidated candidate set E;
* within S, count a = |predicted & gold|, b = |predicted & non-gold|,
  c = |not-predicted & gold|;
* the point estimates are P = a/(a+b) and R = a/(a+c);
* confidence intervals come from the normal approximation to the
  stratified binomial proportions with a finite-population correction
  (the candidate set is finite and the sample is without replacement).

Pairs the experts labeled Unsure are ignored (footnote 10). Estimates
tighten as more pairs are labeled — the case study went from 200 to 400
labels to shrink the intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from ..blocking.candidate_set import Pair
from ..errors import EvaluationError
from ..labeling.labels import Label, LabeledPairs

Z_95 = 1.96


@dataclass(frozen=True)
class Interval:
    """A [low, high] confidence interval, clipped to [0, 1]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise EvaluationError(f"interval low {self.low} > high {self.high}")

    @property
    def midpoint(self) -> float:
        return (self.low + self.high) / 2.0

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low - 1e-12 <= value <= self.high + 1e-12

    def __str__(self) -> str:
        return f"({self.low:.1%}, {self.high:.1%})"


@dataclass(frozen=True)
class AccuracyEstimate:
    """Estimated precision and recall of a matcher, with sample counts."""

    precision: Interval
    recall: Interval
    sample_size: int
    sample_positives: int
    sample_predicted: int

    def __str__(self) -> str:
        return f"precision {self.precision}, recall {self.recall}"


def _proportion_interval(successes: int, trials: int, population: int) -> Interval:
    """Normal-approximation binomial CI with finite-population correction."""
    if trials == 0:
        return Interval(0.0, 1.0)
    p = successes / trials
    if population > 1 and trials <= population:
        fpc = math.sqrt(max(population - trials, 0) / (population - 1))
    else:
        fpc = 1.0
    half = Z_95 * math.sqrt(p * (1.0 - p) / trials) * fpc
    return Interval(max(0.0, p - half), min(1.0, p + half))


def estimate_accuracy(
    candidate_pairs: Iterable[Pair],
    predicted_matches: Iterable[Pair],
    sample_labels: LabeledPairs,
) -> AccuracyEstimate:
    """Estimate a matcher's precision/recall from a labeled sample.

    Parameters
    ----------
    candidate_pairs:
        The consolidated candidate set E both matchers draw from (the
        finite population the sample was taken from).
    predicted_matches:
        The matcher's predicted matches; must be a subset of E.
    sample_labels:
        Labels for a uniform random sample of E (Unsure pairs ignored).
    """
    population = {tuple(p) for p in candidate_pairs}
    predicted = {tuple(p) for p in predicted_matches}
    stray = predicted - population
    if stray:
        raise EvaluationError(
            f"{len(stray)} predicted matches are outside the candidate set "
            f"(first: {next(iter(stray))})"
        )
    a = b = c = d = 0
    for pair, label in sample_labels.items():
        if label is Label.UNSURE:
            continue
        if pair not in population:
            raise EvaluationError(f"sampled pair {pair} is outside the candidate set")
        is_gold = label is Label.YES
        is_predicted = pair in predicted
        if is_predicted and is_gold:
            a += 1
        elif is_predicted:
            b += 1
        elif is_gold:
            c += 1
        else:
            d += 1
    n = a + b + c + d
    if n == 0:
        raise EvaluationError("no usable (non-Unsure) labels in the sample")
    # Scale the stratum populations for the finite-population correction:
    # the predicted stratum has |predicted| pairs; the actual-positive
    # stratum size is estimated from the sample's positive rate.
    est_positive_population = max(round((a + c) / n * len(population)), a + c)
    return AccuracyEstimate(
        precision=_proportion_interval(a, a + b, len(predicted)),
        recall=_proportion_interval(a, a + c, est_positive_population),
        sample_size=n,
        sample_positives=a + c,
        sample_predicted=a + b,
    )


def compare_matchers(
    candidate_pairs: Iterable[Pair],
    predictions: dict[str, Iterable[Pair]],
    sample_labels: LabeledPairs,
) -> dict[str, AccuracyEstimate]:
    """Estimate several matchers against the *same* sample.

    Corleone's protocol requires all matchers to predict over the same
    candidate set so one labeled sample serves them all — this is why the
    case study folded the stray IRIS pair into E first.
    """
    population = list(candidate_pairs)
    return {
        name: estimate_accuracy(population, matches, sample_labels)
        for name, matches in predictions.items()
    }
