"""Tokenizers for string similarity and blocking.

PyMatcher exposes delimiter-based and q-gram tokenizers, each in a
duplicate-keeping ("bag") and duplicate-dropping ("set") flavour. Blockers
use the set flavour; bag semantics matter for measures like TF cosine.
"""

from __future__ import annotations

import re
from typing import Callable

Tokenizer = Callable[[str], list[str]]

_ALNUM_RE = re.compile(r"[a-zA-Z0-9]+")


def whitespace(text: str) -> list[str]:
    """Split on runs of whitespace (bag semantics)."""
    return text.split()


def alphanumeric(text: str) -> list[str]:
    """Maximal runs of [a-zA-Z0-9] (bag semantics)."""
    return _ALNUM_RE.findall(text)


def delimiter(sep: str) -> Tokenizer:
    """A tokenizer splitting on a literal delimiter, e.g. ``delimiter('|')``
    for the concatenated employee-name field."""

    def tokenize(text: str) -> list[str]:
        return [t for t in text.split(sep) if t]

    tokenize.__name__ = f"delim_{sep!r}"
    return tokenize


def qgram(q: int) -> Tokenizer:
    """Character q-grams of the ``#``-padded string (bag semantics).

    Padding with ``q-1`` copies of ``#`` on both ends matches the common
    string-matching convention so that short strings still produce tokens.
    """
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")

    def tokenize(text: str) -> list[str]:
        if not text:
            return []
        padded = "#" * (q - 1) + text + "#" * (q - 1)
        if len(padded) < q:
            return [padded]
        return [padded[i : i + q] for i in range(len(padded) - q + 1)]

    tokenize.__name__ = f"qgm_{q}"
    return tokenize


def unique(tokenizer: Tokenizer) -> Tokenizer:
    """Wrap *tokenizer* with set semantics (first occurrence order kept)."""

    def tokenize(text: str) -> list[str]:
        seen: set[str] = set()
        out: list[str] = []
        for tok in tokenizer(text):
            if tok not in seen:
                seen.add(tok)
                out.append(tok)
        return out

    tokenize.__name__ = f"unique_{tokenizer.__name__}"
    return tokenize


#: Registry used by automatic feature generation; names follow PyMatcher's
#: convention and appear inside generated feature names.
TOKENIZERS: dict[str, Tokenizer] = {
    "ws": whitespace,
    "alnum": alphanumeric,
    "qgm_2": qgram(2),
    "qgm_3": qgram(3),
}
