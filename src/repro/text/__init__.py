"""Text substrate: tokenizers, normalization, identifier pattern grammar."""

from .normalize import (
    casefold_tokens,
    collapse_whitespace,
    normalize_title,
    strip_special_characters,
)
from .patterns import (
    KNOWN_AWARD_PATTERNS,
    award_number_suffix,
    comparable,
    pattern_signature,
)
from .tokenizers import (
    TOKENIZERS,
    Tokenizer,
    alphanumeric,
    delimiter,
    qgram,
    unique,
    whitespace,
)

__all__ = [
    "KNOWN_AWARD_PATTERNS",
    "TOKENIZERS",
    "Tokenizer",
    "alphanumeric",
    "award_number_suffix",
    "casefold_tokens",
    "collapse_whitespace",
    "comparable",
    "delimiter",
    "normalize_title",
    "pattern_signature",
    "qgram",
    "strip_special_characters",
    "unique",
    "whitespace",
]
