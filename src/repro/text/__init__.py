"""Text substrate: tokenizers, normalization, interning, pattern grammar."""

from .intern import ID_TYPECODE, Vocabulary, id_array
from .normalize import (
    casefold_tokens,
    collapse_whitespace,
    normalize_title,
    strip_special_characters,
)
from .patterns import (
    KNOWN_AWARD_PATTERNS,
    award_number_suffix,
    comparable,
    pattern_signature,
)
from .tokenizers import (
    TOKENIZERS,
    Tokenizer,
    alphanumeric,
    delimiter,
    qgram,
    unique,
    whitespace,
)

__all__ = [
    "ID_TYPECODE",
    "KNOWN_AWARD_PATTERNS",
    "TOKENIZERS",
    "Tokenizer",
    "Vocabulary",
    "alphanumeric",
    "award_number_suffix",
    "id_array",
    "casefold_tokens",
    "collapse_whitespace",
    "comparable",
    "delimiter",
    "normalize_title",
    "pattern_signature",
    "qgram",
    "strip_special_characters",
    "unique",
    "whitespace",
]
