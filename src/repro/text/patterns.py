"""Award-number pattern grammar.

Grant identifiers in the case study follow a handful of shapes:

* federal USDA/NIFA numbers: ``2008-34103-19449``  (``YYYY-#####-#####``)
* Hatch / state project numbers: ``WIS01040``      (``XXX#####``)
* forest-service contracts: ``03-CS-11231300-031`` (``##-XX-########-###``)
* UMETRICS ``UniqueAwardNumber``: a CFDA prefix plus one of the above,
  e.g. ``10.200 2008-34103-19449`` (``##.### <number>``)

Two operations on this grammar power the matching rules:

* :func:`award_number_suffix` extracts the part after the CFDA prefix —
  the M1 positive rule compares that suffix to USDA's "Award Number".
* :func:`pattern_signature` abstracts a number into a pattern string
  (digit runs -> ``#``, four-digit years -> ``YYYY``, letters -> ``X``);
  the Section-12 negative rule calls two numbers *comparable* when their
  signatures agree, and flips a predicted match whose comparable numbers
  differ.
"""

from __future__ import annotations

import re
from typing import Any

from ..table.column import is_missing

#: UniqueAwardNumber = CFDA program code ("10.200") + space + agency number.
_CFDA_PREFIX_RE = re.compile(r"^\s*\d{2}\.\d{3}\s+(?P<suffix>\S.*?)\s*$")

_TOKEN_RE = re.compile(r"\d+|[A-Za-z]+|[^A-Za-z\d]+")


def award_number_suffix(value: Any) -> str | None:
    """Extract the agency-number suffix of a UMETRICS ``UniqueAwardNumber``.

    Returns ``None`` for missing values or values that do not carry a CFDA
    prefix (such records cannot fire the M1 rule).
    """
    if is_missing(value):
        return None
    match = _CFDA_PREFIX_RE.match(str(value))
    if match is None:
        return None
    return match.group("suffix")


def _is_year(digits: str) -> bool:
    if len(digits) != 4:
        return False
    year = int(digits)
    return 1900 <= year <= 2099


def pattern_signature(value: Any) -> str | None:
    """Abstract an identifier into its pattern signature.

    Digit runs become ``#`` repeated; a four-digit run that parses as a
    plausible year becomes ``YYYY``; letter runs become ``X`` repeated;
    punctuation/whitespace is kept verbatim. ``None`` for missing values.

    >>> pattern_signature("2008-34103-19449")
    'YYYY-#####-#####'
    >>> pattern_signature("WIS01040")
    'XXX#####'
    >>> pattern_signature("03-CS-11231300-031")
    '##-XX-########-###'
    """
    if is_missing(value):
        return None
    text = str(value).strip()
    if not text:
        return None
    parts: list[str] = []
    for token in _TOKEN_RE.findall(text):
        if token.isdigit():
            parts.append("YYYY" if _is_year(token) else "#" * len(token))
        elif token.isalpha():
            parts.append("X" * len(token))
        else:
            parts.append(token)
    return "".join(parts)


def comparable(a: Any, b: Any, known_patterns: set[str] | None = None) -> bool:
    """True when two identifiers follow the same pattern.

    The UMETRICS team supplied the list of patterns their award and project
    numbers can take; when *known_patterns* is given, both signatures must
    additionally belong to that list (unrecognised shapes are never
    comparable, which keeps the negative rule conservative).
    """
    sig_a = pattern_signature(a)
    sig_b = pattern_signature(b)
    if sig_a is None or sig_b is None:
        return False
    if sig_a != sig_b:
        return False
    if known_patterns is not None and sig_a not in known_patterns:
        return False
    return True


#: The pattern list as supplied by the domain-expert team (Section 12; the
#: paper elides the full list for space — these are the shapes its examples
#: and the synthetic scenario use).
KNOWN_AWARD_PATTERNS: set[str] = {
    "YYYY-#####-#####",   # federal USDA/NIFA award numbers
    "XXX#####",           # Hatch/state project numbers, e.g. WIS01040
    "##-XX-########-###",  # forest-service style contracts
}
