"""Token interning: dense int32 ids for the similarity kernels.

String token sets are the currency of the blocking and feature-extraction
hot paths, and intersecting ``frozenset[str]`` objects pays string hashing
on every probe. A :class:`Vocabulary` maps each distinct token to a dense
``int32`` id exactly once; cells become sorted ``array('i')`` id arrays
that the merge kernels in :mod:`repro.similarity.kernels` intersect with
integer comparisons only, and that pickle as raw bytes when chunks ship to
worker processes.

Ids are assigned in first-intern order, so they depend on interning
history — kernel results must only ever depend on id *consistency*
(equal tokens get equal ids within one vocabulary), never on id values.
The parity tests assert exactly that by permuting interning order.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence

#: Typecode used for all id arrays (C int: 32 bits on every supported
#: platform; a vocabulary outgrowing it is not a realistic corpus).
ID_TYPECODE = "i"


def id_array(ids: Iterable[int]) -> "array[int]":
    """An ``array('i')`` over *ids* (the compact wire format for chunks)."""
    return array(ID_TYPECODE, ids)


class Vocabulary:
    """A bijective token <-> dense-id map shared across tables.

    One vocabulary must span every table participating in a comparison:
    ids are only comparable within the vocabulary that assigned them.
    The :class:`~repro.runtime.cache.TokenCache` owns one and interns both
    sides of every blocker/feature recipe through it.
    """

    __slots__ = ("_ids", "_tokens")

    def __init__(self) -> None:
        self._ids: dict[str, int] = {}
        self._tokens: list[str] = []

    def __len__(self) -> int:
        return len(self._tokens)

    def __contains__(self, token: str) -> bool:
        return token in self._ids

    def intern(self, token: str) -> int:
        """The id of *token*, assigning the next dense id on first sight."""
        tid = self._ids.get(token)
        if tid is None:
            tid = len(self._tokens)
            self._ids[token] = tid
            self._tokens.append(token)
        return tid

    def intern_all(self, tokens: Iterable[str]) -> "array[int]":
        """Ids of *tokens* in iteration order (duplicates preserved)."""
        intern = self.intern
        return array(ID_TYPECODE, (intern(t) for t in tokens))

    def sorted_ids(self, tokens: Iterable[str]) -> "array[int]":
        """Sorted unique ids of *tokens* — the kernel set representation."""
        intern = self.intern
        return array(ID_TYPECODE, sorted({intern(t) for t in tokens}))

    def id_of(self, token: str) -> int | None:
        """The id of *token*, or ``None`` when it was never interned."""
        return self._ids.get(token)

    def token_of(self, tid: int) -> str:
        """The token a dense id stands for."""
        return self._tokens[tid]

    def decode(self, ids: Sequence[int]) -> list[str]:
        """Tokens for an id sequence (inverse of :meth:`intern_all`)."""
        tokens = self._tokens
        return [tokens[tid] for tid in ids]

    def tokens(self) -> list[str]:
        """All interned tokens, indexed by id (a fresh list)."""
        return list(self._tokens)
