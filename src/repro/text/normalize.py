"""String normalization used before blocking.

Section 7 of the case study normalizes award titles before applying the
overlap and overlap-coefficient blockers: lower-case everything and strip
special characters (quotes, hashes, exclamation marks, braces, ...).
Notably, the paper does *not* lower-case in pre-processing (footnote 8) —
case information is preserved for matching and handled via features — so
normalization is applied only where a specific step asks for it.
"""

from __future__ import annotations

import re
from typing import Any

from ..table.column import is_missing

_SPECIAL_CHARS_RE = re.compile(r"""["'#!(){}\[\]*&^%$@~`;:?<>,\\/+=_-]""")
_MULTI_SPACE_RE = re.compile(r"\s+")


def strip_special_characters(text: str) -> str:
    """Replace the paper's list of special characters with spaces."""
    return _SPECIAL_CHARS_RE.sub(" ", text)


def normalize_title(value: Any) -> Any:
    """Blocking-time title normalization: lower-case + strip specials.

    ``None`` (missing) passes through; non-strings are stringified first so
    the normalizer can be mapped over any column.
    """
    if is_missing(value):
        return value
    text = str(value).lower()
    text = strip_special_characters(text)
    return _MULTI_SPACE_RE.sub(" ", text).strip()


def casefold_tokens(tokens: list[str]) -> list[str]:
    """Lower-case a token list (used by case-insensitive features)."""
    return [t.lower() for t in tokens]


def collapse_whitespace(text: str) -> str:
    """Squeeze runs of whitespace to single spaces and trim."""
    return _MULTI_SPACE_RE.sub(" ", text).strip()
