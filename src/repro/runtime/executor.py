"""Chunked process-pool execution with a bit-identical serial fallback.

The hot paths of the pipeline — blocking probes and feature-vector
extraction — are embarrassingly parallel over *contiguous chunks* of an
ordered work list (left-table rows, candidate-pair indices). The executor
here runs those chunks through :class:`concurrent.futures.ProcessPoolExecutor`
and concatenates the results in submission order, so the output is exactly
what the serial loop would produce.

Guarantees:

* ``workers <= 1`` (the default everywhere) never touches multiprocessing —
  the chunk functions run inline, preserving pre-existing behaviour.
* Any pool failure — unpicklable payloads (e.g. a lambda blocking
  predicate), a broken pool, a missing ``fork`` start method — falls back
  to inline execution of the same chunk functions. Results are therefore
  identical whether or not the pool engaged.
* The ``fork`` start method is used when available so children share the
  parent's interpreter state (including its hash seed, keeping any
  hash-order-dependent iteration identical across workers).

Chunk functions must be module-level (picklable by qualified name) and must
receive all state via their payload; they are executed as ``fn(*payload)``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence

from .instrument import Instrumentation

#: Chunks per worker: >1 so a skewed chunk doesn't idle the other workers.
CHUNKS_PER_WORKER = 4


def chunk_ranges(n: int, workers: int, chunks_per_worker: int = CHUNKS_PER_WORKER) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous ``[start, stop)`` ranges.

    Produces up to ``workers * chunks_per_worker`` near-equal ranges (never
    empty ones), in order, covering ``range(n)`` exactly. ``n == 0`` yields
    no ranges; ``workers <= 1`` yields a single range.
    """
    if n <= 0:
        return []
    if workers <= 1:
        return [(0, n)]
    target = min(n, max(1, workers) * max(1, chunks_per_worker))
    base, extra = divmod(n, target)
    ranges = []
    start = 0
    for i in range(target):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _timed_call(fn: Callable, payload: tuple) -> tuple[Any, float, int]:
    """Run one chunk, returning (result, seconds, worker pid)."""
    started = time.perf_counter()
    result = fn(*payload)
    return result, time.perf_counter() - started, os.getpid()


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


class ChunkedExecutor:
    """Maps a chunk function over payloads, in parallel when asked to.

    Parameters
    ----------
    workers:
        Target process count; ``<= 1`` means strictly serial (no pool, no
        fallback machinery — the chunk functions run inline).
    instrumentation:
        Optional :class:`~repro.runtime.instrument.Instrumentation`; when
        given, per-chunk durations and worker ids are recorded into the
        currently open stage, plus ``parallel_fallbacks`` counts when the
        pool could not be used.
    """

    def __init__(
        self,
        workers: int = 1,
        instrumentation: Instrumentation | None = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.instrumentation = instrumentation

    @property
    def parallel(self) -> bool:
        return self.workers > 1

    def map(
        self,
        fn: Callable,
        payloads: Sequence[tuple],
        sizes: Sequence[int] | None = None,
    ) -> list[Any]:
        """``[fn(*p) for p in payloads]``, chunk-parallel when possible.

        *sizes* optionally gives the item count of each payload for
        instrumentation (defaults to 1 per chunk).
        """
        payloads = list(payloads)
        if sizes is None:
            sizes = [1] * len(payloads)
        if not self.parallel or len(payloads) <= 1:
            return self._run_serial(fn, payloads, sizes)
        outcomes = self._run_pool(fn, payloads)
        if outcomes is None:
            if self.instrumentation is not None:
                self.instrumentation.count("parallel_fallbacks")
            return self._run_serial(fn, payloads, sizes)
        results = []
        for size, (result, seconds, pid) in zip(sizes, outcomes):
            if self.instrumentation is not None:
                self.instrumentation.record_chunk(pid, size, seconds)
            results.append(result)
        return results

    def _run_serial(self, fn: Callable, payloads: list[tuple], sizes: Sequence[int]) -> list[Any]:
        results = []
        for payload, size in zip(payloads, sizes):
            result, seconds, pid = _timed_call(fn, payload)
            if self.instrumentation is not None:
                self.instrumentation.record_chunk(pid, size, seconds)
            results.append(result)
        return results

    def _run_pool(self, fn: Callable, payloads: list[tuple]):
        """All chunk outcomes in submission order, or ``None`` on failure."""
        context = _fork_context()
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.workers, len(payloads)),
                mp_context=context,
            ) as pool:
                futures = [pool.submit(_timed_call, fn, p) for p in payloads]
                return [f.result() for f in futures]
        except Exception:
            # Unpicklable payloads, broken pools, sandboxed environments
            # without process spawning: all degrade to the serial path.
            return None
