"""Chunked process-pool execution with a bit-identical serial fallback.

The hot paths of the pipeline — blocking probes and feature-vector
extraction — are embarrassingly parallel over *contiguous chunks* of an
ordered work list (left-table rows, candidate-pair indices). The executor
here runs those chunks through a worker pool and concatenates the results
in submission order, so the output is exactly what the serial loop would
produce.

Two layers:

* :class:`WorkerPool` — a reusable, lazily started
  :class:`~concurrent.futures.ProcessPoolExecutor` wrapper. A run opens
  one pool and shares it across every stage (blocking probes, feature
  extraction), so process startup is paid once per run instead of once
  per ``map`` call. Payloads are pickled *in the parent* so the exact
  shipped byte counts are known and surfaced as ``pickled_bytes`` /
  ``pickled_chunks`` counters.
* :class:`ChunkedExecutor` — the stage-facing mapper. It uses an injected
  shared pool when given one, spins up a transient pool per call
  otherwise (the historical behaviour), and always degrades to inline
  serial execution when the pool cannot be used.

Guarantees:

* ``workers <= 1`` (the default everywhere) never touches multiprocessing —
  the chunk functions run inline, preserving pre-existing behaviour.
* Any pool failure — unpicklable payloads (e.g. a lambda blocking
  predicate), a broken pool, a missing ``fork`` start method — falls back
  to inline execution of the same chunk functions. Results are therefore
  identical whether or not the pool engaged.
* The ``fork`` start method is used when available so children share the
  parent's interpreter state (including its hash seed, keeping any
  hash-order-dependent iteration identical across workers).

Chunk functions must be module-level (picklable by qualified name) and must
receive all state via their payload; they are executed as ``fn(*payload)``.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from .instrument import Instrumentation

#: Chunks per worker: >1 so a skewed chunk doesn't idle the other workers.
CHUNKS_PER_WORKER = 4


def chunk_ranges(n: int, workers: int, chunks_per_worker: int = CHUNKS_PER_WORKER) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous ``[start, stop)`` ranges.

    Produces up to ``workers * chunks_per_worker`` near-equal ranges (never
    empty ones), in order, covering ``range(n)`` exactly. ``n == 0`` yields
    no ranges; ``workers <= 1`` yields a single range.
    """
    if n <= 0:
        return []
    if workers <= 1:
        return [(0, n)]
    target = min(n, max(1, workers) * max(1, chunks_per_worker))
    base, extra = divmod(n, target)
    ranges = []
    start = 0
    for i in range(target):
        stop = start + base + (1 if i < extra else 0)
        ranges.append((start, stop))
        start = stop
    return ranges


def _peak_rss_bytes() -> int:
    """This process's lifetime peak RSS in bytes (0 where unreadable)."""
    try:
        import resource as _resource
    except ImportError:  # pragma: no cover - Windows
        return 0
    maxrss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is bytes on macOS, kilobytes everywhere else.
    return int(maxrss) * (1 if sys.platform == "darwin" else 1024)


def _cache_counts() -> tuple[int, int]:
    """The process-default token cache's (hits, misses), (0, 0) if unbuilt."""
    from .cache import get_default_cache

    stats = get_default_cache().stats()
    return stats.hits, stats.misses


def _measured_call(fn: Callable, payload: tuple) -> tuple[Any, float, int, dict]:
    """Run one chunk with worker-side telemetry.

    Returns ``(result, seconds, pid, extras)`` where *extras* carries
    the readings only the executing process can take: CPU seconds burned
    by the chunk, the process's peak RSS at chunk end (a lifetime
    high-water mark, so across a worker's chunks it is non-decreasing),
    and the worker-local token-cache hit/miss deltas over the chunk.
    """
    hits0, misses0 = _cache_counts()
    cpu0 = time.process_time()
    started = time.perf_counter()
    result = fn(*payload)
    seconds = time.perf_counter() - started
    cpu = time.process_time() - cpu0
    hits1, misses1 = _cache_counts()
    extras = {
        "cpu_seconds": cpu,
        "peak_rss_bytes": _peak_rss_bytes(),
        "cache_hits": hits1 - hits0,
        "cache_misses": misses1 - misses0,
    }
    return result, seconds, os.getpid(), extras


def _run_pickled(blob: bytes) -> tuple[Any, float, int, dict]:
    """Worker entry point: unpickle ``(fn, payload)`` and run it, measured.

    The parent pickles the pair itself (see :meth:`WorkerPool.run_chunks`),
    so the blob's length *is* the number of bytes shipped for the chunk —
    no second serialization happens beyond the blob itself.
    """
    fn, payload = pickle.loads(blob)
    return _measured_call(fn, payload)


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return None


class WorkerPool:
    """A reusable process pool shared across pipeline stages.

    The underlying :class:`~concurrent.futures.ProcessPoolExecutor` is
    created lazily on the first :meth:`run_chunks` call and reused until
    :meth:`shutdown`; a run pays worker startup once, not once per stage.
    If the pool ever breaks (a worker dies, the platform cannot fork) the
    pool marks itself broken and every later call returns ``None``, which
    callers treat as "run the chunks inline instead".
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        self._executor: ProcessPoolExecutor | None = None
        self._broken = False
        #: Total payload bytes shipped to workers over the pool's lifetime.
        self.pickled_bytes = 0
        #: Total chunks shipped to workers over the pool's lifetime.
        self.pickled_chunks = 0

    @property
    def active(self) -> bool:
        """Whether the pool can (still) run chunks in parallel."""
        return self.workers > 1 and not self._broken

    def _ensure_executor(self) -> ProcessPoolExecutor | None:
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=_fork_context(),
                )
            except Exception:  # pragma: no cover - no process support
                self._broken = True
                return None
        return self._executor

    def submit_chunks(
        self, fn: Callable, payloads: Sequence[tuple]
    ) -> tuple[list, int] | None:
        """Ship ``fn(*p)`` for each payload to the pool without waiting.

        Returns ``(futures, shipped_bytes)`` — resolve with
        :meth:`gather` — or ``None`` when the pool could not be used
        (unpicklable payloads, broken pool). Byte/chunk counters are
        charged at submission: the payloads have been shipped whether or
        not the chunks later succeed. The caller may do other work (e.g.
        a memo-bound column the workers cannot split) between submitting
        and gathering.
        """
        if not self.active:
            return None
        try:
            blobs = [
                pickle.dumps((fn, p), protocol=pickle.HIGHEST_PROTOCOL)
                for p in payloads
            ]
        except Exception:
            # Unpicklable payload (e.g. a lambda predicate): the pool stays
            # healthy; only this call degrades to the serial path.
            return None
        executor = self._ensure_executor()
        if executor is None:
            return None
        try:
            futures = [executor.submit(_run_pickled, blob) for blob in blobs]
        except Exception:
            self._broken = True
            self.shutdown()
            return None
        shipped = sum(len(blob) for blob in blobs)
        self.pickled_bytes += shipped
        self.pickled_chunks += len(blobs)
        return futures, shipped

    def gather(self, futures: Sequence) -> list[tuple[Any, float, int, dict]] | None:
        """Outcomes of :meth:`submit_chunks` futures, in submission order.

        ``None`` marks a broken pool (a worker died mid-chunk); the caller
        then recomputes the chunks inline.
        """
        try:
            return [f.result() for f in futures]
        except Exception:
            self._broken = True
            self.shutdown()
            return None

    def run_chunks(
        self, fn: Callable, payloads: Sequence[tuple]
    ) -> tuple[list[tuple[Any, float, int, dict]], int] | None:
        """Run ``fn(*p)`` for each payload on the pool, in order.

        Returns ``(outcomes, shipped_bytes)`` where each outcome is the
        ``(result, seconds, pid, extras)`` tuple of one chunk — *extras*
        being the worker-side telemetry of :func:`_measured_call`
        (CPU seconds, peak RSS, token-cache deltas) — or ``None`` when
        the pool could not be used (unpicklable payloads, broken pool) —
        the caller then runs the same chunks inline, which produces
        identical results by construction.
        """
        submitted = self.submit_chunks(fn, payloads)
        if submitted is None:
            return None
        futures, shipped = submitted
        outcomes = self.gather(futures)
        if outcomes is None:
            return None
        return outcomes, shipped

    def shutdown(self) -> None:
        """Stop the worker processes (idempotent)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


@contextmanager
def ensure_pool(workers: int, pool: WorkerPool | None = None) -> Iterator[WorkerPool | None]:
    """Yield a shared pool for a run, owning its lifetime only if created here.

    * *pool* given: yield it untouched (the caller who created it shuts it
      down);
    * ``workers > 1``: create a :class:`WorkerPool`, yield it, and shut it
      down when the block exits;
    * otherwise: yield ``None`` (strictly serial runs never build a pool).
    """
    if pool is not None:
        yield pool
        return
    if workers > 1:
        created = WorkerPool(workers)
        try:
            yield created
        finally:
            created.shutdown()
        return
    yield None


class ChunkedExecutor:
    """Maps a chunk function over payloads, in parallel when asked to.

    Parameters
    ----------
    workers:
        Target process count; ``<= 1`` means strictly serial (no pool, no
        fallback machinery — the chunk functions run inline).
    instrumentation:
        Optional :class:`~repro.runtime.instrument.Instrumentation`; when
        given, per-chunk durations and worker ids are recorded into the
        currently open stage, plus ``pickled_bytes``/``pickled_chunks``
        for shipped payloads and ``parallel_fallbacks`` counts when the
        pool could not be used.
    pool:
        Optional shared :class:`WorkerPool`. When given it overrides
        *workers* and is reused across calls (and across executors);
        without one, each parallel ``map`` spins up a transient pool —
        the historical per-call behaviour.
    """

    def __init__(
        self,
        workers: int = 1,
        instrumentation: Instrumentation | None = None,
        pool: WorkerPool | None = None,
    ) -> None:
        self.pool = pool
        self.workers = pool.workers if pool is not None else max(1, int(workers))
        self.instrumentation = instrumentation

    @property
    def parallel(self) -> bool:
        if self.pool is not None:
            return self.pool.active
        return self.workers > 1

    def map(
        self,
        fn: Callable,
        payloads: Sequence[tuple],
        sizes: Sequence[int] | None = None,
    ) -> list[Any]:
        """``[fn(*p) for p in payloads]``, chunk-parallel when possible.

        *sizes* optionally gives the item count of each payload for
        instrumentation (defaults to 1 per chunk).
        """
        payloads = list(payloads)
        if sizes is None:
            sizes = [1] * len(payloads)
        if not self.parallel or len(payloads) <= 1:
            return self._run_serial(fn, payloads, sizes)
        outcome = self._run_pool(fn, payloads)
        if outcome is None:
            if self.instrumentation is not None:
                self.instrumentation.count("parallel_fallbacks")
            return self._run_serial(fn, payloads, sizes)
        outcomes, shipped = outcome
        if self.instrumentation is not None:
            self.instrumentation.count("pickled_bytes", shipped)
            self.instrumentation.count("pickled_chunks", len(payloads))
        results = []
        for size, (result, seconds, pid, extras) in zip(sizes, outcomes):
            if self.instrumentation is not None:
                self.instrumentation.record_chunk(pid, size, seconds, **extras)
            results.append(result)
        return results

    def _run_serial(self, fn: Callable, payloads: list[tuple], sizes: Sequence[int]) -> list[Any]:
        results = []
        for payload, size in zip(payloads, sizes):
            result, seconds, pid, extras = _measured_call(fn, payload)
            if self.instrumentation is not None:
                self.instrumentation.record_chunk(pid, size, seconds, **extras)
            results.append(result)
        return results

    def _run_pool(self, fn: Callable, payloads: list[tuple]):
        """Chunk outcomes + shipped bytes in submission order, or ``None``."""
        if self.pool is not None:
            return self.pool.run_chunks(fn, payloads)
        with WorkerPool(min(self.workers, len(payloads))) as transient:
            return transient.run_chunks(fn, payloads)
