"""Parallel, instrumented runtime for the pipeline's hot paths.

The unifying entry point is :mod:`~repro.runtime.context` — an
:class:`~repro.runtime.context.EngineSession` owns the pool, token
cache, artifact store, instrumentation, metrics, provenance policy,
kernels switch and seed, and `session.run_stage` is the single
store/trace/provenance glue path every stage operator runs through.

Underneath it, three small pieces, all opt-in:

* :mod:`~repro.runtime.executor` — a chunked process-pool executor whose
  results are bit-identical to the serial loops it replaces;
* :mod:`~repro.runtime.cache` — a shared tokenization memo-cache so the
  Section-7 blockers and down-sampling tokenize each column once;
* :mod:`~repro.runtime.instrument` — nestable stage timers/counters with a
  text :class:`~repro.runtime.instrument.StageReport` renderer.

Every public entry point that grew a ``workers=`` / ``instrumentation=``
argument defaults to ``workers=1, instrumentation=None``, which is the
pre-runtime behaviour exactly.
"""

from .cache import CacheStats, InternedTokens, TokenCache, get_default_cache
from .context import (
    DEFAULT_SEED,
    EngineSession,
    StageOperator,
    current_session,
    resolve_session,
)
from .executor import (
    CHUNKS_PER_WORKER,
    ChunkedExecutor,
    WorkerPool,
    chunk_ranges,
    ensure_pool,
)
from .instrument import (
    ChunkRecord,
    Instrumentation,
    StageReport,
    StageStats,
    count,
    merge_siblings,
    stage,
)

__all__ = [
    "CHUNKS_PER_WORKER",
    "CacheStats",
    "ChunkRecord",
    "ChunkedExecutor",
    "DEFAULT_SEED",
    "EngineSession",
    "Instrumentation",
    "InternedTokens",
    "StageOperator",
    "StageReport",
    "StageStats",
    "TokenCache",
    "WorkerPool",
    "chunk_ranges",
    "count",
    "current_session",
    "ensure_pool",
    "get_default_cache",
    "merge_siblings",
    "resolve_session",
    "stage",
]
