"""Shared tokenization/normalization memo-cache.

Section 7 runs three blockers over the *same* title columns, and
down-sampling tokenizes them again: four full passes of
``tokenizer(normalizer(value))`` over identical inputs. :class:`TokenCache`
memoizes the per-column token sets keyed on
``(attr, tokenizer, normalizer)``, so a column is tokenized once per
distinct recipe no matter how many blockers ask.

Tables are held through a :class:`weakref.WeakKeyDictionary`, so cached
columns die with their table. Caching assumes the idiom the
:class:`~repro.table.table.Table` engine documents — columns are not
mutated in place (mutating methods return new tables) — a table whose
cell lists are edited behind the cache's back must be :meth:`clear`-ed.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Callable

from ..table import Table
from ..table.column import is_missing
from ..text.tokenizers import Tokenizer

Normalizer = Callable[[Any], Any]
#: One cached column: per-row token sets, ``None`` where the cell (or its
#: normalized form) is missing.
ColumnTokens = tuple["frozenset[str] | None", ...]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counts of a :class:`TokenCache` (column-level)."""

    hits: int
    misses: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses


class TokenCache:
    """Memo-cache of tokenized columns, shared across blockers."""

    def __init__(self) -> None:
        self._tables: "weakref.WeakKeyDictionary[Table, dict]" = (
            weakref.WeakKeyDictionary()
        )
        self.hits = 0
        self.misses = 0

    def column_tokens(
        self,
        table: Table,
        attr: str,
        tokenizer: Tokenizer,
        normalizer: Normalizer | None = None,
    ) -> ColumnTokens:
        """Token sets for every row of ``table[attr]`` (cached).

        The returned tuple is aligned with row indices; missing cells (and
        cells a normalizer maps to missing) are ``None``.
        """
        per_table = self._tables.setdefault(table, {})
        key = (attr, tokenizer, normalizer)
        cached = per_table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        out: list[frozenset[str] | None] = []
        for value in table[attr]:
            if is_missing(value):
                out.append(None)
                continue
            if normalizer is not None:
                value = normalizer(value)
                if is_missing(value):
                    out.append(None)
                    continue
            out.append(frozenset(tokenizer(str(value))))
        column = tuple(out)
        per_table[key] = column
        return column

    def tokens_by_id(
        self,
        table: Table,
        attr: str,
        key_col: str,
        tokenizer: Tokenizer,
        normalizer: Normalizer | None = None,
    ) -> dict[Any, frozenset[str]]:
        """``{record id: token set}`` for non-missing, non-empty cells.

        This is exactly the ``_tokens_by_id`` contract the overlap blockers
        had before caching: rows whose value is missing or tokenizes to
        nothing are absent. A fresh dict is built per call (callers may
        mutate it); only the underlying column tokens are shared.
        """
        tokens = self.column_tokens(table, attr, tokenizer, normalizer)
        return {
            rid: toks
            for rid, toks in zip(table[key_col], tokens)
            if toks  # drops None and empty token sets alike
        }

    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses)

    def clear(self) -> None:
        self._tables = weakref.WeakKeyDictionary()
        self.hits = 0
        self.misses = 0


#: Process-wide default cache; blockers fall back to this when no explicit
#: cache is passed, which is what lets independent blocker calls share work.
_DEFAULT_CACHE = TokenCache()


def get_default_cache() -> TokenCache:
    """The shared process-wide :class:`TokenCache`."""
    return _DEFAULT_CACHE
