"""Shared tokenization/normalization memo-cache.

Section 7 runs three blockers over the *same* title columns, and
down-sampling tokenizes them again: four full passes of
``tokenizer(normalizer(value))`` over identical inputs. :class:`TokenCache`
memoizes the per-column token sets keyed on
``(attr, tokenizer, normalizer)``, so a column is tokenized once per
distinct recipe no matter how many blockers ask.

On top of the string token sets the cache also owns a
:class:`~repro.text.intern.Vocabulary` and memoizes *interned* columns —
per-row sorted ``array('i')`` id arrays (and bag-order variants for
hybrid measures) — which is what the integer kernels in
:mod:`repro.similarity.kernels` consume. A column is therefore tokenized
once per recipe and interned once per recipe, no matter how many
blockers and features ask.

Tables are held through a :class:`weakref.WeakKeyDictionary`, so cached
columns die with their table. Caching assumes the idiom the
:class:`~repro.table.table.Table` engine documents — columns are not
mutated in place (mutating methods return new tables) — a table whose
cell lists are edited behind the cache's back must be :meth:`clear`-ed.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Any, Callable

from ..table import Table
from ..table.column import is_missing
from ..text.intern import Vocabulary, id_array
from ..text.tokenizers import Tokenizer

Normalizer = Callable[[Any], Any]
#: One cached column: per-row token sets, ``None`` where the cell (or its
#: normalized form) is missing.
ColumnTokens = tuple["frozenset[str] | None", ...]


def lowercase(value: Any) -> str:
    """``str(value).lower()`` as a stable, cache-keyable normalizer.

    Case-insensitive (``_ci``) features lower-case the stringified cell
    before tokenizing; routing that through a module-level function keeps
    the ``(attr, tokenizer, normalizer)`` cache key identical across
    calls (a fresh lambda per call would never hit).
    """
    return str(value).lower()


@dataclass(frozen=True)
class InternedTokens:
    """One cell's interned token set.

    ``sorted`` is the merge-kernel representation (sorted unique ids);
    ``probe`` preserves the *iteration order of the underlying frozenset*,
    which is what the legacy overlap-coefficient probe loop iterates —
    replaying the same order keeps candidate emission bit-identical
    between the kernel and string paths. ``ids`` holds the same ids as a
    ``frozenset[int]`` for the blockers' verification step: CPython's
    C-level set intersection over small ints beats any Python-level merge
    loop, and the counts it yields are the same integers.
    """

    sorted: "Any"  # array('i'), sorted unique
    probe: "Any"  # array('i'), frozenset iteration order
    ids: "frozenset[int]"  # same ids, for C-speed intersection counts

    def __len__(self) -> int:
        return len(self.sorted)


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counts of a :class:`TokenCache` (column-level)."""

    hits: int
    misses: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses


class TokenCache:
    """Memo-cache of tokenized columns, shared across blockers."""

    def __init__(self) -> None:
        self._tables: "weakref.WeakKeyDictionary[Table, dict]" = (
            weakref.WeakKeyDictionary()
        )
        self.vocabulary = Vocabulary()
        self.hits = 0
        self.misses = 0

    def column_tokens(
        self,
        table: Table,
        attr: str,
        tokenizer: Tokenizer,
        normalizer: Normalizer | None = None,
    ) -> ColumnTokens:
        """Token sets for every row of ``table[attr]`` (cached).

        The returned tuple is aligned with row indices; missing cells (and
        cells a normalizer maps to missing) are ``None``.
        """
        per_table = self._tables.setdefault(table, {})
        key = (attr, tokenizer, normalizer)
        cached = per_table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        out: list[frozenset[str] | None] = []
        for value in table[attr]:
            if is_missing(value):
                out.append(None)
                continue
            if normalizer is not None:
                value = normalizer(value)
                if is_missing(value):
                    out.append(None)
                    continue
            out.append(frozenset(tokenizer(str(value))))
        column = tuple(out)
        per_table[key] = column
        return column

    # ------------------------------------------------------------------
    # interned columns (the kernel substrate)
    # ------------------------------------------------------------------
    def column_token_ids(
        self,
        table: Table,
        attr: str,
        tokenizer: Tokenizer,
        normalizer: Normalizer | None = None,
    ) -> tuple["InternedTokens | None", ...]:
        """Interned token sets for every row of ``table[attr]`` (cached).

        Derived from (and aligned with) :meth:`column_tokens`: ``None``
        where that column is ``None``, an :class:`InternedTokens` entry
        otherwise. Rows whose cells hold *equal* token sets share one
        entry object, so chunk pickling ships each distinct cell once and
        identity-keyed memo tables collapse repeated cells.
        """
        per_table = self._tables.setdefault(table, {})
        key = ("ids", attr, tokenizer, normalizer)
        cached = per_table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        intern = self.vocabulary.intern
        distinct: dict[frozenset, InternedTokens] = {}
        out: list[InternedTokens | None] = []
        for tokens in self.column_tokens(table, attr, tokenizer, normalizer):
            if tokens is None:
                out.append(None)
                continue
            entry = distinct.get(tokens)
            if entry is None:
                probe = id_array(intern(t) for t in tokens)
                entry = InternedTokens(id_array(sorted(probe)), probe, frozenset(probe))
                distinct[tokens] = entry
            out.append(entry)
        column = tuple(out)
        per_table[key] = column
        return column

    def column_token_bag_ids(
        self,
        table: Table,
        attr: str,
        tokenizer: Tokenizer,
        normalizer: Normalizer | None = None,
    ) -> tuple["Any | None", ...]:
        """Interned token *bags* (duplicates kept, tokenizer order) per row.

        Hybrid measures like Monge-Elkan average over the token bag in
        emission order, so they need the raw tokenizer output, not the
        set. Equal cells share one id array object (see
        :meth:`column_token_ids` for why that matters).
        """
        per_table = self._tables.setdefault(table, {})
        key = ("bag_ids", attr, tokenizer, normalizer)
        cached = per_table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        intern_all = self.vocabulary.intern_all
        distinct: dict[str, Any] = {}
        out: list[Any | None] = []
        for value in table[attr]:
            if is_missing(value):
                out.append(None)
                continue
            if normalizer is not None:
                value = normalizer(value)
                if is_missing(value):
                    out.append(None)
                    continue
            text = str(value)
            ids = distinct.get(text)
            if ids is None:
                ids = distinct[text] = intern_all(tokenizer(text))
            out.append(ids)
        column = tuple(out)
        per_table[key] = column
        return column

    def tokens_by_id(
        self,
        table: Table,
        attr: str,
        key_col: str,
        tokenizer: Tokenizer,
        normalizer: Normalizer | None = None,
    ) -> dict[Any, frozenset[str]]:
        """``{record id: token set}`` for non-missing, non-empty cells.

        This is exactly the ``_tokens_by_id`` contract the overlap blockers
        had before caching: rows whose value is missing or tokenizes to
        nothing are absent. A fresh dict is built per call (callers may
        mutate it); only the underlying column tokens are shared.
        """
        tokens = self.column_tokens(table, attr, tokenizer, normalizer)
        return {
            rid: toks
            for rid, toks in zip(table[key_col], tokens)
            if toks  # drops None and empty token sets alike
        }

    def token_ids_by_id(
        self,
        table: Table,
        attr: str,
        key_col: str,
        tokenizer: Tokenizer,
        normalizer: Normalizer | None = None,
    ) -> dict[Any, InternedTokens]:
        """``{record id: interned tokens}`` — the id twin of
        :meth:`tokens_by_id` (same rows dropped, same dict order)."""
        entries = self.column_token_ids(table, attr, tokenizer, normalizer)
        return {
            rid: entry
            for rid, entry in zip(table[key_col], entries)
            if entry is not None and len(entry)
        }

    def stats(self) -> CacheStats:
        return CacheStats(hits=self.hits, misses=self.misses)

    def clear(self) -> None:
        self._tables = weakref.WeakKeyDictionary()
        self.vocabulary = Vocabulary()
        self.hits = 0
        self.misses = 0


#: Process-wide default cache; blockers fall back to this when no explicit
#: cache is passed, which is what lets independent blocker calls share work.
_DEFAULT_CACHE = TokenCache()


def get_default_cache() -> TokenCache:
    """The shared process-wide :class:`TokenCache`."""
    return _DEFAULT_CACHE
