"""One execution context for the whole pipeline: :class:`EngineSession`.

The runtime capabilities grew one PR at a time — worker pools, the
artifact store, tracing/metrics/provenance, the kernel switch — and each
arrived as another optional keyword argument threaded through blockers,
``extract_feature_vectors``, :class:`~repro.core.workflow.EMWorkflow` and
the case-study entry points. Real EM is iterative (the paper's Section-10
lesson): workflows are patched and re-run many times, and every re-run
should compose *all* of those capabilities without per-call plumbing.

An :class:`EngineSession` is the one object that owns them:

* the shared :class:`~repro.runtime.executor.WorkerPool` (created lazily,
  shut down on exit — including on exceptions);
* the :class:`~repro.runtime.cache.TokenCache`;
* the artifact store, instrumentation handle, metrics registry,
  provenance switch, kernels switch and seed.

Sessions install themselves as the ambient default via a
:mod:`contextvars` variable, so callers write::

    with EngineSession(workers=4, store=store):
        run_combined_workflow(...)

and every stage resolves the same pool/store/trace context with zero
keyword threading. The legacy ``workers=`` / ``instrumentation=`` /
``store=`` / ``pool=`` arguments survive as thin shims: each public entry
point passes them to :func:`resolve_session`, which returns the ambient
session, a derived override of it, or a transient stand-in that behaves
exactly like the pre-session code path.

The second half of this module is the **stage-operator protocol**
(:class:`StageOperator` + :meth:`EngineSession.run_stage`): the one
implementation of the store-fingerprint/lookup, tracing, counter and
provenance glue that blocking, down-sampling, feature extraction and
matcher prediction previously each re-implemented.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from contextvars import ContextVar
from typing import Any, Callable, Sequence

from ..errors import UncacheableError
from .cache import TokenCache, get_default_cache
from .executor import ChunkedExecutor, WorkerPool
from .instrument import Instrumentation, count, stage

_CURRENT: ContextVar["EngineSession | None"] = ContextVar(
    "repro_engine_session", default=None
)

DEFAULT_SEED = 45


def current_session() -> "EngineSession | None":
    """The innermost active ``with EngineSession(...)`` block, if any.

    Context variables are per-thread (and per-async-task): a session
    entered in one thread is invisible to others, so concurrent runs
    cannot leak pools or stores into each other.
    """
    return _CURRENT.get()


class StageOperator:
    """One cacheable/traceable unit of pipeline work.

    Implementations describe a stage declaratively — its trace name, its
    artifact kind/codec/fingerprints for the store, its provenance
    recording — and :meth:`EngineSession.run_stage` supplies the single
    shared execution path. Default implementations make every aspect
    optional: an operator with ``cache_kind = None`` never touches the
    store, one with ``trace_name = None`` adds no stage node, and the
    ``counters``/``record`` hooks default to no-ops.
    """

    #: Stage-tree node name; ``None`` adds no node (the operator's
    #: ``compute`` may still open its own internal stages).
    trace_name: str | None = None
    #: Artifact kind for the store (``"candidates"``, ``"feature_matrix"``,
    #: ``"pairs"``); ``None`` marks the stage uncacheable by design.
    cache_kind: str | None = None
    #: Codec used to encode/decode the stage's artifact.
    codec: Any = None

    def label(self) -> str:
        """Human-readable stage label for the store's explain ledger."""
        raise NotImplementedError

    def fingerprint(self) -> dict[str, str]:
        """Input-name -> content-fingerprint parts for the cache key.

        Raise :class:`~repro.errors.UncacheableError` when an input has no
        stable fingerprint; the session records a store *bypass* and
        computes unconditionally.
        """
        raise UncacheableError(f"{type(self).__name__} declares no fingerprint")

    def store_context(self) -> dict[str, Any]:
        """Extra kwargs for ``codec.decode`` (live objects a payload
        cannot embed, e.g. the base tables of a candidate set)."""
        return {}

    def compute(self, session: "EngineSession") -> Any:
        """Do the actual work, using the session for dispatch/telemetry."""
        raise NotImplementedError

    def counters(self, result: Any) -> dict[str, float]:
        """Counters to record on the stage node once *result* exists."""
        return {}

    def record(self, provenance: Any, result: Any) -> None:
        """Record *result* into a provenance collector (no-op default)."""


class EngineSession:
    """The execution context every pipeline layer resolves uniformly.

    Parameters
    ----------
    workers:
        Process-pool width shared by all stages. ``None``/``1`` is
        strictly serial (bit-identical to parallel runs by construction).
    store:
        Optional :class:`~repro.store.store.ArtifactStore`; stages run
        through :meth:`run_stage` are memoized by content fingerprints.
    instrumentation:
        Optional :class:`~repro.runtime.instrument.Instrumentation` (or
        :class:`~repro.obs.trace.TracingInstrumentation`). Mutually
        exclusive with *trace_path*.
    trace_path:
        Convenience: build a session-owned
        :class:`~repro.obs.trace.TracingInstrumentation` streaming to a
        JSONL file at this path; the writer is flushed per event and
        closed by :meth:`close` — also when a stage raises.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`, fed live
        when the session builds its own tracing instrumentation.
    provenance:
        Default provenance policy for workflow runs: ``False`` (off),
        ``True`` (each workflow run builds its own collector), or a
        :class:`~repro.obs.provenance.MatchProvenance` collector shared
        by every run in the session.
    kernels:
        Interned-kernel switch override for the session's scope: ``None``
        defers to the process default (``REPRO_KERNELS``), ``True`` /
        ``False`` force it.
    seed:
        The session's random seed (CLI and case-study default).
    resources:
        When ``True``, attach a
        :class:`~repro.obs.resources.ResourceSampler` to the session's
        instrumentation (building a plain
        :class:`~repro.runtime.instrument.Instrumentation` if the session
        has none), so every stage records CPU/RSS/GC deltas — and traced
        sessions stream them as ``resource`` events. Off by default:
        resource probing never engages unless asked for.
    pool:
        An externally owned :class:`~repro.runtime.executor.WorkerPool`;
        the session uses it but never shuts it down.
    token_cache:
        Tokenization memo-cache; defaults to the process-wide cache so
        independent sessions still share tokenization work.
    """

    def __init__(
        self,
        *,
        workers: int | None = None,
        store: Any = None,
        instrumentation: Instrumentation | None = None,
        trace_path: Any = None,
        metrics: Any = None,
        provenance: Any = False,
        kernels: bool | None = None,
        seed: int = DEFAULT_SEED,
        resources: bool = False,
        pool: WorkerPool | None = None,
        token_cache: TokenCache | None = None,
    ) -> None:
        self.workers = max(1, int(workers)) if workers else 1
        self.store = store
        self.metrics = metrics
        self.provenance = provenance
        self.kernels = kernels
        self.seed = seed
        self.token_cache = token_cache if token_cache is not None else get_default_cache()
        self._injected_pool = pool
        self._owned_pool: WorkerPool | None = None
        self._owned_writer: Any = None
        self._pid = os.getpid()
        self._tokens: list[Any] = []
        self._closed = False
        #: Transient sessions (built by :func:`resolve_session` to stand in
        #: for legacy kwargs) never own a persistent pool: parallel maps
        #: fall back to the executor's historical per-call pools, so
        #: nothing outlives the call that asked for it.
        self._transient = False
        if trace_path is not None:
            if instrumentation is not None:
                raise ValueError(
                    "pass either instrumentation= or trace_path=, not both"
                )
            from ..obs.trace import TraceWriter, TracingInstrumentation

            self._owned_writer = TraceWriter(trace_path)
            instrumentation = TracingInstrumentation(
                writer=self._owned_writer, metrics=metrics
            )
        if resources:
            from ..obs.resources import ResourceSampler

            if instrumentation is None:
                instrumentation = Instrumentation()
            if instrumentation.resources is None:
                instrumentation.attach_resources(ResourceSampler())
        self.instrumentation = instrumentation

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def worker_pool(self) -> WorkerPool | None:
        """The pool every stage shares.

        The injected pool when one was given; otherwise a lazily created
        session-owned pool (persistent sessions with ``workers > 1``
        only). Fork-started worker processes inherit the session object
        but must never touch the parent's pool handle, so a PID check
        returns ``None`` in children.
        """
        if os.getpid() != self._pid:
            return None
        if self._injected_pool is not None:
            return self._injected_pool
        if self.workers > 1 and not self._transient and not self._closed:
            if self._owned_pool is None:
                self._owned_pool = WorkerPool(self.workers)
            return self._owned_pool
        return None

    def kernels_enabled(self) -> bool:
        """The session's interned-kernel switch.

        ``kernels=True/False`` forces it for every stage in the session;
        ``None`` defers to the process default (``REPRO_KERNELS`` /
        :func:`~repro.similarity.kernels.use_kernels`).
        """
        if self.kernels is not None:
            return bool(self.kernels)
        from ..similarity.kernels import process_kernels_default

        return process_kernels_default()

    def executor(self) -> ChunkedExecutor:
        """A chunk mapper wired to this session's pool and telemetry."""
        return ChunkedExecutor(
            workers=self.workers,
            instrumentation=self.instrumentation,
            pool=self.worker_pool,
        )

    def close(self) -> None:
        """Release everything the session owns (idempotent).

        Shuts down the session-created worker pool and closes the
        session-created trace writer; injected pools and externally built
        instrumentation are the caller's to manage.
        """
        self._closed = True
        owned, self._owned_pool = self._owned_pool, None
        if owned is not None and os.getpid() == self._pid:
            owned.shutdown()
        writer, self._owned_writer = self._owned_writer, None
        if writer is not None:
            writer.close()

    def __enter__(self) -> "EngineSession":
        self._tokens.append(_CURRENT.set(self))
        return self

    def __exit__(self, *exc_info) -> None:
        # Teardown runs on exceptions too: a raising stage must not leak
        # worker processes or an unflushed trace file.
        if self._tokens:
            _CURRENT.reset(self._tokens.pop())
        if not self._tokens:
            self.close()

    # ------------------------------------------------------------------
    # derivation (the legacy-kwarg shim)
    # ------------------------------------------------------------------
    def derive(self, **overrides: Any) -> "EngineSession":
        """A transient view of this session with some fields overridden.

        Shares the base session's pool, store, cache and telemetry unless
        overridden; owns nothing (closing a derived session never touches
        the base session's resources), so it is safe to build one per
        legacy-kwarg call.
        """
        derived = EngineSession(
            workers=overrides.get("workers", self.workers),
            store=overrides.get("store", self.store),
            instrumentation=overrides.get("instrumentation", self.instrumentation),
            metrics=overrides.get("metrics", self.metrics),
            provenance=overrides.get("provenance", self.provenance),
            kernels=overrides.get("kernels", self.kernels),
            seed=overrides.get("seed", self.seed),
            pool=overrides.get("pool", self.worker_pool),
            token_cache=overrides.get("token_cache", self.token_cache),
        )
        derived._transient = True
        return derived

    # ------------------------------------------------------------------
    # the one stage-execution path
    # ------------------------------------------------------------------
    def run_stage(self, op: StageOperator, provenance: Any = None) -> Any:
        """Execute *op* with the session's store/trace/provenance glue.

        One implementation of what blocking, feature extraction,
        down-sampling and prediction previously each re-implemented:

        * open the operator's stage node (when it declares one);
        * fingerprint the inputs and memoize through the artifact store
          (bypassing — never failing — on unfingerprintable inputs);
        * record the operator's counters on the stage node;
        * record provenance when a collector is passed.
        """
        cm = (
            self.instrumentation.stage(op.trace_name)
            if self.instrumentation is not None and op.trace_name is not None
            else nullcontext()
        )
        with cm:
            result = self._stage_result(op)
            for key, value in op.counters(result).items():
                count(self.instrumentation, key, value)
            if provenance is not None:
                op.record(provenance, result)
        return result

    def _stage_result(self, op: StageOperator) -> Any:
        store = self.store
        if store is None or op.cache_kind is None or op.codec is None:
            return op.compute(self)
        try:
            parts = op.fingerprint()
        except UncacheableError as exc:
            store.bypass(op.label(), str(exc), self.instrumentation)
            return op.compute(self)
        return store.memoize(
            op.cache_kind,
            op.label(),
            parts,
            lambda: op.compute(self),
            op.codec,
            instrumentation=self.instrumentation,
            context=op.store_context(),
        )

    def map_chunks(
        self,
        fn: Callable,
        payloads: Sequence[tuple],
        sizes: Sequence[int] | None = None,
    ) -> list[Any]:
        """``[fn(*p) for p in payloads]`` through the session's executor."""
        return self.executor().map(fn, payloads, sizes=sizes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"workers={self.workers}"]
        if self.store is not None:
            bits.append("store")
        if self.instrumentation is not None:
            bits.append("traced")
        if self.kernels is not None:
            bits.append(f"kernels={self.kernels}")
        return f"EngineSession({', '.join(bits)})"


def resolve_session(
    session: EngineSession | None = None,
    *,
    workers: int | None = None,
    instrumentation: Instrumentation | None = None,
    store: Any = None,
    pool: WorkerPool | None = None,
    provenance: Any = None,
    seed: int | None = None,
) -> EngineSession:
    """The session a legacy-kwarg call site should execute under.

    Resolution order:

    1. an explicitly passed *session* (with any legacy kwargs layered on
       top as overrides);
    2. the ambient :func:`current_session`, derived when legacy kwargs
       override any of its fields;
    3. a fresh transient session built purely from the legacy kwargs —
       behaviourally identical to the pre-session code path.

    ``None`` always means *inherit*: the legacy defaults (``workers=1``,
    no store, no instrumentation) are exactly what an empty session
    resolves to, so existing calls are unchanged bit for bit.
    """
    overrides: dict[str, Any] = {}
    if workers is not None:
        overrides["workers"] = workers
    if instrumentation is not None:
        overrides["instrumentation"] = instrumentation
    if store is not None:
        overrides["store"] = store
    if pool is not None:
        overrides["pool"] = pool
    if provenance is not None:
        overrides["provenance"] = provenance
    if seed is not None:
        overrides["seed"] = seed
    base = session if session is not None else current_session()
    if base is None:
        resolved = EngineSession(**overrides)
        resolved._transient = True
        return resolved
    if not overrides:
        return base
    return base.derive(**overrides)
