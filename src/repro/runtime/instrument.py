"""Stage instrumentation: nestable timers, counters and chunk records.

The paper's engagement spent "a few days" waiting on blocking and
feature-extraction runs without ever measuring *where* the time went.
:class:`Instrumentation` gives every pipeline stage a cheap, optional
handle to record wall-clock time, domain counters (pairs in/out, cells
computed, cache hits) and per-worker chunk durations, and
:class:`StageReport` renders the resulting tree as text so benchmarks can
print serial-vs-parallel breakdowns instead of asserting speedups.

Everything is opt-in: every function in the toolkit that accepts an
``instrumentation=`` argument defaults it to ``None`` and behaves exactly
as before when it stays ``None``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class ChunkRecord:
    """Timing of one executor chunk (serial chunks record worker ``0``)."""

    worker: int
    items: int
    seconds: float


@dataclass
class StageStats:
    """One node of the stage tree: a named timer with counters/children."""

    name: str
    seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    chunks: list[ChunkRecord] = field(default_factory=list)
    children: list["StageStats"] = field(default_factory=list)

    def child(self, name: str) -> "StageStats":
        stats = StageStats(name)
        self.children.append(stats)
        return stats

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def find(self, name: str) -> "StageStats | None":
        """First descendant (depth-first) with the given name."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None


class Instrumentation:
    """A tree of timed stages, built up via the :meth:`stage` context.

    Usage::

        instr = Instrumentation()
        with instr.stage("blocking"):
            with instr.stage("tokenize"):
                ...
            instr.count("pairs_out", len(pairs))
        print(instr.report())

    Counters and chunk records attach to the innermost open stage (or to
    the implicit root when no stage is open), so library code can call
    :meth:`count` without knowing how its caller nested it.
    """

    def __init__(self, name: str = "total") -> None:
        self.root = StageStats(name)
        self._stack: list[StageStats] = [self.root]

    @property
    def current(self) -> StageStats:
        return self._stack[-1]

    @contextmanager
    def stage(self, name: str) -> Iterator[StageStats]:
        stats = self.current.child(name)
        self._stack.append(stats)
        started = time.perf_counter()
        try:
            yield stats
        finally:
            stats.seconds += time.perf_counter() - started
            self._stack.pop()

    def count(self, name: str, value: float = 1) -> None:
        self.current.count(name, value)

    def record_chunk(self, worker: int, items: int, seconds: float) -> None:
        self.current.chunks.append(ChunkRecord(worker, items, seconds))

    def find(self, name: str) -> StageStats | None:
        return self.root.find(name)

    def report(self, title: str = "") -> "StageReport":
        return StageReport(self.root, title=title)

    def __str__(self) -> str:
        return str(self.report())


def stage(instrumentation: Instrumentation | None, name: str):
    """A stage context that no-ops when *instrumentation* is ``None``."""
    if instrumentation is None:
        return nullcontext()
    return instrumentation.stage(name)


def count(instrumentation: Instrumentation | None, name: str, value: float = 1) -> None:
    """Counter helper that no-ops when *instrumentation* is ``None``."""
    if instrumentation is not None:
        instrumentation.count(name, value)


@dataclass(frozen=True)
class StageReport:
    """Text renderer for a stage tree."""

    root: StageStats
    title: str = ""

    def __str__(self) -> str:
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("-" * len(self.title))
        total = sum(c.seconds for c in self.root.children)
        header = self.root.name
        if self.root.children:
            header += f"  {total:.3f}s"
        lines.append(self._line(header, self.root))
        for child in self.root.children:
            self._render(child, lines, depth=1)
        return "\n".join(lines)

    @staticmethod
    def _line(label: str, stats: StageStats) -> str:
        extras = [f"{k}={v:g}" for k, v in stats.counters.items()]
        if stats.chunks:
            slowest = max(c.seconds for c in stats.chunks)
            workers = len({c.worker for c in stats.chunks})
            extras.append(
                f"chunks={len(stats.chunks)} workers={workers} slowest={slowest:.3f}s"
            )
        return label + ("  [" + ", ".join(extras) + "]" if extras else "")

    def _render(self, stats: StageStats, lines: list[str], depth: int) -> None:
        label = f"{'  ' * depth}{stats.name}  {stats.seconds:.3f}s"
        lines.append(self._line(label, stats))
        for child in stats.children:
            self._render(child, lines, depth + 1)
