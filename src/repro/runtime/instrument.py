"""Stage instrumentation: nestable timers, counters and chunk records.

The paper's engagement spent "a few days" waiting on blocking and
feature-extraction runs without ever measuring *where* the time went.
:class:`Instrumentation` gives every pipeline stage a cheap, optional
handle to record wall-clock time, domain counters (pairs in/out, cells
computed, cache hits) and per-worker chunk durations, and
:class:`StageReport` renders the resulting tree as text so benchmarks can
print serial-vs-parallel breakdowns instead of asserting speedups.

Everything is opt-in: every function in the toolkit that accepts an
``instrumentation=`` argument defaults it to ``None`` and behaves exactly
as before when it stays ``None``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class ChunkRecord:
    """Timing of one executor chunk (serial chunks record the parent pid).

    Beyond the parent-observed wall time, each chunk carries the
    worker-side readings the executor measured around the chunk function:
    CPU seconds actually burned, the worker process's peak RSS at chunk
    end (a lifetime high-water mark), and the worker-local token-cache
    hit/miss deltas. All default to zero so hand-built records and
    pre-extension traces keep working.
    """

    worker: int
    items: int
    seconds: float
    cpu_seconds: float = 0.0
    peak_rss_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass
class StageStats:
    """One node of the stage tree: a named timer with counters/children."""

    name: str
    seconds: float = 0.0
    counters: dict[str, float] = field(default_factory=dict)
    chunks: list[ChunkRecord] = field(default_factory=list)
    children: list["StageStats"] = field(default_factory=list)
    #: Per-stage resource deltas (CPU user/sys, RSS delta, peak RSS, GC
    #: collections) — ``None`` unless a resource probe was attached.
    resources: dict[str, float] | None = None

    def child(self, name: str) -> "StageStats":
        stats = StageStats(name)
        self.children.append(stats)
        return stats

    def count(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def add_resources(self, delta: dict[str, float]) -> None:
        """Fold a resource-delta record into this node.

        Additive readings (CPU seconds, GC collections, RSS deltas) sum
        across repeated recordings; high-water marks (``peak_rss_bytes``)
        take the max — the same aggregation reports and manifests apply
        to repeated same-name siblings.
        """
        if self.resources is None:
            self.resources = dict(delta)
            return
        for key, value in delta.items():
            if key == "peak_rss_bytes":
                self.resources[key] = max(self.resources.get(key, value), value)
            else:
                self.resources[key] = self.resources.get(key, 0) + value

    def find(self, name: str) -> "StageStats | None":
        """This node if its name matches, else the first matching
        descendant (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None


class Instrumentation:
    """A tree of timed stages, built up via the :meth:`stage` context.

    Usage::

        instr = Instrumentation()
        with instr.stage("blocking"):
            with instr.stage("tokenize"):
                ...
            instr.count("pairs_out", len(pairs))
        print(instr.report())

    Counters and chunk records attach to the innermost open stage (or to
    the implicit root when no stage is open), so library code can call
    :meth:`count` without knowing how its caller nested it.

    Sub-classes may override the ``_stage_started`` / ``_stage_finished`` /
    ``_counted`` / ``_chunk_recorded`` / ``_resource_recorded`` hooks to
    stream the same events elsewhere (see
    :class:`repro.obs.trace.TracingInstrumentation`); the base
    implementations are no-ops.

    A resource probe (:class:`repro.obs.resources.ResourceSampler`, or
    anything with the same ``snapshot``/``stage_delta`` contract) can be
    attached via :meth:`attach_resources`; every stage then records its
    CPU/RSS/GC delta into ``StageStats.resources`` and fires the
    ``_resource_recorded`` hook. With no probe attached (the default)
    nothing changes.
    """

    def __init__(self, name: str = "total") -> None:
        self.root = StageStats(name)
        self._stack: list[StageStats] = [self.root]
        self.resources: Any = None

    @property
    def current(self) -> StageStats:
        return self._stack[-1]

    def attach_resources(self, probe: Any) -> Any:
        """Attach a resource probe sampled around every stage; returns it."""
        self.resources = probe
        return probe

    @contextmanager
    def stage(self, name: str) -> Iterator[StageStats]:
        stats = self.current.child(name)
        self._stack.append(stats)
        self._stage_started(stats)
        probe = self.resources
        before = probe.snapshot() if probe is not None else None
        started = time.perf_counter()
        try:
            yield stats
        finally:
            elapsed = time.perf_counter() - started
            stats.seconds += elapsed
            self._stack.pop()
            self._stage_finished(stats, elapsed)
            if before is not None:
                delta = probe.stage_delta(before, probe.snapshot())
                stats.add_resources(delta)
                self._resource_recorded(stats, delta)

    def count(self, name: str, value: float = 1) -> None:
        self.current.count(name, value)
        self._counted(self.current, name, value)

    def record_chunk(
        self,
        worker: int,
        items: int,
        seconds: float,
        cpu_seconds: float = 0.0,
        peak_rss_bytes: int = 0,
        cache_hits: int = 0,
        cache_misses: int = 0,
    ) -> None:
        record = ChunkRecord(
            worker, items, seconds, cpu_seconds, peak_rss_bytes,
            cache_hits, cache_misses,
        )
        self.current.chunks.append(record)
        self._chunk_recorded(self.current, record)

    # -- subclass hooks (no-ops here) ----------------------------------
    def _stage_started(self, stats: StageStats) -> None:
        pass

    def _stage_finished(self, stats: StageStats, elapsed: float) -> None:
        pass

    def _counted(self, stats: StageStats, name: str, value: float) -> None:
        pass

    def _chunk_recorded(self, stats: StageStats, record: ChunkRecord) -> None:
        pass

    def _resource_recorded(self, stats: StageStats, delta: dict[str, float]) -> None:
        pass

    def find(self, name: str) -> StageStats | None:
        return self.root.find(name)

    def report(self, title: str = "") -> "StageReport":
        return StageReport(self.root, title=title)

    def __str__(self) -> str:
        return str(self.report())


def stage(instrumentation: Instrumentation | None, name: str):
    """A stage context that no-ops when *instrumentation* is ``None``."""
    if instrumentation is None:
        return nullcontext()
    return instrumentation.stage(name)


def count(instrumentation: Instrumentation | None, name: str, value: float = 1) -> None:
    """Counter helper that no-ops when *instrumentation* is ``None``."""
    if instrumentation is not None:
        instrumentation.count(name, value)


def merge_siblings(children: list[StageStats]) -> list[tuple[StageStats, int]]:
    """Aggregate same-name siblings into ``(merged stats, occurrences)``.

    A stage run in a loop (say, one blocker per iteration) produces one
    sibling node per iteration; reports want a single line with an ``xN``
    count, summed time, summed counters and pooled chunk records. The
    merged node's children are the concatenation of all occurrences'
    children (merged again, recursively, at render time). First-seen
    order is preserved; a name that occurs once passes through unchanged.
    """
    merged: dict[str, StageStats] = {}
    counts: dict[str, int] = {}
    order: list[str] = []
    for child in children:
        if child.name not in merged:
            merged[child.name] = StageStats(child.name)
            counts[child.name] = 0
            order.append(child.name)
        counts[child.name] += 1
        target = merged[child.name]
        target.seconds += child.seconds
        for key, value in child.counters.items():
            target.count(key, value)
        target.chunks.extend(child.chunks)
        target.children.extend(child.children)
        if child.resources is not None:
            target.add_resources(child.resources)
    return [(merged[name], counts[name]) for name in order]


@dataclass(frozen=True)
class StageReport:
    """Text renderer for a stage tree.

    Repeated same-name siblings (a stage inside a loop) are aggregated
    into one ``name xN`` line with summed time via :func:`merge_siblings`.
    """

    root: StageStats
    title: str = ""

    def __str__(self) -> str:
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
            lines.append("-" * len(self.title))
        total = sum(c.seconds for c in self.root.children)
        header = self.root.name
        if self.root.children:
            header += f"  {total:.3f}s"
        lines.append(self._line(header, self.root))
        for child, occurrences in merge_siblings(self.root.children):
            self._render(child, occurrences, lines, depth=1)
        return "\n".join(lines)

    @staticmethod
    def _line(label: str, stats: StageStats) -> str:
        extras = [f"{k}={v:g}" for k, v in stats.counters.items()]
        if stats.chunks:
            slowest = max(c.seconds for c in stats.chunks)
            workers = len({c.worker for c in stats.chunks})
            extras.append(
                f"chunks={len(stats.chunks)} workers={workers} slowest={slowest:.3f}s"
            )
        return label + ("  [" + ", ".join(extras) + "]" if extras else "")

    def _render(
        self, stats: StageStats, occurrences: int, lines: list[str], depth: int
    ) -> None:
        name = stats.name if occurrences == 1 else f"{stats.name} x{occurrences}"
        label = f"{'  ' * depth}{name}  {stats.seconds:.3f}s"
        lines.append(self._line(label, stats))
        for child, n in merge_siblings(stats.children):
            self._render(child, n, lines, depth + 1)
