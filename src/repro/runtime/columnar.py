"""Columnar chunk plumbing: token-set columns with a CSR wire format.

The batch scoring kernels in :mod:`repro.similarity.batch` consume whole
*columns* of token sets — one entry per candidate pair — instead of one
pair at a time. :class:`TokenColumn` is that column. It has two lives:

* **in the parent process** it wraps the
  :class:`~repro.runtime.cache.InternedTokens` entries the
  :class:`~repro.runtime.cache.TokenCache` already holds, so building and
  slicing a column never copies token data (rows with equal cells keep
  sharing one ``frozenset[int]`` object);
* **on the wire** it pickles to CSR form — one flat ``array('i')`` of
  sorted ids plus an ``array('i')`` of row offsets and the indices of
  missing rows — so a :class:`~repro.runtime.executor.WorkerPool` chunk
  ships as three compact buffers instead of thousands of small frozenset
  pickles. Workers materialize the per-row ``frozenset[int]`` views once
  per chunk, lazily.

Missing cells (``None`` in the cache column) are distinct from *empty*
token sets: an empty set occupies a zero-length CSR segment, a missing
row is listed in ``missing`` and comes back as ``None`` from
:meth:`TokenColumn.sets`. Batch kernels map missing rows to NaN and score
empty sets by the reference expressions, exactly like the per-pair path.

Set views are only ever used for size/intersection arithmetic, which is
iteration-order independent, so rebuilding frozensets from sorted CSR
data in a worker cannot perturb any bit-identity contract. Order-
sensitive consumers (the overlap-coefficient probe) keep shipping their
explicit ``probe`` arrays.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Sequence

from ..text.intern import ID_TYPECODE

#: One row of a column: a frozenset of interned ids, or None when missing.
RowSet = "frozenset[int] | None"


class TokenColumn:
    """A chunk-sized column of interned token sets (see module docstring).

    Construct with :meth:`from_entries` (parent side, zero-copy over
    cached :class:`~repro.runtime.cache.InternedTokens`),
    :meth:`from_sets` (tests and ad-hoc columns), or :meth:`from_csr`
    (the unpickled wire form).
    """

    __slots__ = ("_entries", "_sets", "_offsets", "_data", "_missing")

    def __init__(self) -> None:
        self._entries: tuple | None = None
        self._sets: tuple | None = None
        self._offsets: "array[int] | None" = None
        self._data: "array[int] | None" = None
        self._missing: tuple[int, ...] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_entries(cls, entries: Iterable[Any]) -> "TokenColumn":
        """Wrap cached ``InternedTokens | None`` entries (no copying)."""
        column = cls()
        column._entries = tuple(entries)
        return column

    @classmethod
    def from_sets(cls, sets: Iterable[Any]) -> "TokenColumn":
        """Wrap ``frozenset[int] | None`` rows directly."""
        column = cls()
        column._sets = tuple(
            s if (s is None or isinstance(s, frozenset)) else frozenset(s)
            for s in sets
        )
        return column

    @classmethod
    def from_csr(
        cls,
        offsets: "array[int]",
        data: "array[int]",
        missing: tuple[int, ...] = (),
    ) -> "TokenColumn":
        """Rebuild a column from its wire form (``offsets`` has n+1 ends)."""
        column = cls()
        column._offsets = offsets
        column._data = data
        column._missing = tuple(missing)
        return column

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._entries is not None:
            return len(self._entries)
        if self._sets is not None:
            return len(self._sets)
        return len(self._offsets) - 1

    def sets(self) -> tuple:
        """Per-row ``frozenset[int] | None`` views (cached after first call)."""
        if self._sets is None:
            if self._entries is not None:
                self._sets = tuple(
                    entry.ids if entry is not None else None
                    for entry in self._entries
                )
            else:
                offsets, data = self._offsets, self._data
                rows = [
                    frozenset(data[offsets[i] : offsets[i + 1]])
                    for i in range(len(offsets) - 1)
                ]
                for i in self._missing:
                    rows[i] = None
                self._sets = tuple(rows)
        return self._sets

    def csr(self) -> tuple["array[int]", "array[int]", tuple[int, ...]]:
        """The CSR wire form ``(offsets, data, missing)`` (cached)."""
        if self._offsets is None:
            offsets = array(ID_TYPECODE, [0])
            data = array(ID_TYPECODE)
            missing: list[int] = []
            if self._entries is not None:
                for i, entry in enumerate(self._entries):
                    if entry is None:
                        missing.append(i)
                    else:
                        data.extend(entry.sorted)
                    offsets.append(len(data))
            else:
                for i, row in enumerate(self._sets):
                    if row is None:
                        missing.append(i)
                    else:
                        data.extend(sorted(row))
                    offsets.append(len(data))
            self._offsets, self._data = offsets, data
            self._missing = tuple(missing)
        return self._offsets, self._data, self._missing

    def slice(self, start: int, stop: int) -> "TokenColumn":
        """Rows ``[start, stop)`` as a new column (chunk boundaries)."""
        if self._entries is not None:
            return TokenColumn.from_entries(self._entries[start:stop])
        if self._sets is not None:
            return TokenColumn.from_sets(self._sets[start:stop])
        offsets, data, missing = self._offsets, self._data, self._missing
        base = offsets[start]
        sub_offsets = array(
            ID_TYPECODE, (offsets[i] - base for i in range(start, stop + 1))
        )
        sub_data = data[offsets[start] : offsets[stop]]
        sub_missing = tuple(i - start for i in missing if start <= i < stop)
        return TokenColumn.from_csr(sub_offsets, sub_data, sub_missing)

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def __reduce__(self):
        # Always ship CSR: three buffers instead of per-row set pickles.
        return (TokenColumn.from_csr, self.csr())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        backing = (
            "entries"
            if self._entries is not None
            else "sets" if self._sets is not None and self._offsets is None else "csr"
        )
        return f"TokenColumn(n={len(self)}, backing={backing})"


def gather_column(column: Sequence[Any], indices: Sequence[int]) -> TokenColumn:
    """A :class:`TokenColumn` over ``column[i] for i in indices``.

    *column* is a cached :meth:`~repro.runtime.cache.TokenCache.column_token_ids`
    tuple; *indices* are the row positions of one side of a candidate
    chunk (feature extraction gathers by pair order, blockers by record
    order).
    """
    return TokenColumn.from_entries(column[i] for i in indices)
