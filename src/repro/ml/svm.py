"""Linear support-vector machine trained with the Pegasos SGD algorithm.

Probabilities are derived from the margin with a logistic link (a light
Platt-style calibration with fixed slope), which is enough for the 0.5
threshold the matching layer applies.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_X, check_X_y


class LinearSVM(Classifier):
    """Hinge-loss linear classifier (Pegasos).

    Parameters
    ----------
    l2:
        Regularisation strength (the Pegasos lambda).
    n_epochs:
        Passes over the shuffled training data.
    seed:
        Seed for shuffling.
    """

    def __init__(self, l2: float = 1e-2, n_epochs: int = 50, seed: int = 0) -> None:
        super().__init__()
        self.l2 = l2
        self.n_epochs = n_epochs
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def _reset(self) -> None:
        super()._reset()
        self._weights = None
        self._bias = 0.0
        self._mean = None
        self._scale = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._scale

    def fit(self, X, y) -> "LinearSVM":
        X, y = check_X_y(X, y)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._scale = np.where(scale < 1e-12, 1.0, scale)
        Z = self._standardize(X)
        signs = np.where(y == 1, 1.0, -1.0)
        n, d = Z.shape
        rng = np.random.default_rng(self.seed)
        w = np.zeros(d)
        b = 0.0
        t = 0
        for _ in range(self.n_epochs):
            for i in rng.permutation(n):
                t += 1
                eta = 1.0 / (self.l2 * t)
                margin = signs[i] * (Z[i] @ w + b)
                w *= 1.0 - eta * self.l2
                if margin < 1.0:
                    w += eta * signs[i] * Z[i]
                    b += eta * signs[i]
        self._weights = w
        self._bias = b
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed margins; positive means predicted match."""
        self._require_fitted()
        X = check_X(X)
        return self._standardize(X) @ self._weights + self._bias

    def predict_proba(self, X) -> np.ndarray:
        margins = self.decision_function(X)
        return 1.0 / (1.0 + np.exp(-2.0 * margins))
