"""L2-regularised logistic regression trained by full-batch gradient descent.

Features are standardised internally (zero mean, unit variance) so a single
learning rate works across the mixed similarity/absolute-difference feature
scales the EM pipeline produces.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_X, check_X_y


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(Classifier):
    """Binary logistic regression.

    Parameters
    ----------
    learning_rate:
        Gradient-descent step size (on standardised features).
    n_iterations:
        Number of full-batch updates.
    l2:
        L2 penalty strength (not applied to the intercept).
    tol:
        Early-stop when the max absolute gradient falls below this.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 500,
        l2: float = 1e-3,
        tol: float = 1e-7,
    ) -> None:
        super().__init__()
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.tol = tol
        self._weights: np.ndarray | None = None
        self._bias = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def _reset(self) -> None:
        super()._reset()
        self._weights = None
        self._bias = 0.0
        self._mean = None
        self._scale = None

    def _standardize(self, X: np.ndarray) -> np.ndarray:
        return (X - self._mean) / self._scale

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._scale = np.where(scale < 1e-12, 1.0, scale)
        Z = self._standardize(X)
        n, d = Z.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iterations):
            p = _sigmoid(Z @ w + b)
            error = p - y
            grad_w = Z.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
            if max(np.abs(grad_w).max(initial=0.0), abs(grad_b)) < self.tol:
                break
        self._weights = w
        self._bias = b
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        Z = self._standardize(X)
        return _sigmoid(Z @ self._weights + self._bias)

    @property
    def coefficients(self) -> np.ndarray:
        """Learned weights in standardised feature space."""
        self._require_fitted()
        return self._weights.copy()
