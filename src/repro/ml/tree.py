"""CART decision-tree classifier (gini impurity, binary splits).

The decision tree is the learner the case study ultimately ships (it won
model selection after case-handling features were added), and its structure
is what the matcher debugger explains — so the tree exposes its internals:
:meth:`DecisionTreeClassifier.decision_path` returns the tests a record
passes through, and :func:`export_rules` renders the tree as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Classifier, check_X, check_X_y


@dataclass
class _Node:
    """One tree node; leaves have ``feature is None``."""

    n_samples: int
    positive_fraction: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(n_pos: float, n_total: float) -> float:
    if n_total == 0:
        return 0.0
    p = n_pos / n_total
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier(Classifier):
    """Binary CART tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (``None`` = unlimited).
    min_samples_split:
        A node with fewer samples becomes a leaf.
    min_samples_leaf:
        Splits producing a child smaller than this are rejected.
    max_features:
        Number of features examined per split: an int, ``"sqrt"``, or
        ``None`` for all features. Random forests pass ``"sqrt"``.
    seed:
        Seed for the feature sub-sampling (only used when *max_features*
        restricts the candidate set).
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._root: _Node | None = None
        self._n_features = 0
        self._importances: np.ndarray | None = None

    def _reset(self) -> None:
        super()._reset()
        self._root = None
        self._n_features = 0
        self._importances = None

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        n = int(self.max_features)
        if n < 1:
            raise ValueError(f"max_features must be >= 1, got {n}")
        return min(n, n_features)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, features: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Best (feature, threshold, impurity_decrease) or None if no split.

        Vectorised over split positions: for each feature the values are
        sorted once and every distinct threshold is scored with cumulative
        positive counts.
        """
        n = len(y)
        parent_impurity = _gini(float(y.sum()), float(n))
        best: tuple[int, float, float] | None = None
        min_leaf = self.min_samples_leaf
        for f in features:
            order = np.argsort(X[:, f], kind="mergesort")
            xs = X[order, f]
            pos_cum = np.cumsum(y[order])
            total_pos = float(pos_cum[-1])
            n_left = np.arange(1, n, dtype=float)  # split after position i
            valid = xs[1:] > xs[:-1]
            valid &= (n_left >= min_leaf) & (n - n_left >= min_leaf)
            if not valid.any():
                continue
            pos_left = pos_cum[:-1].astype(float)
            pos_right = total_pos - pos_left
            n_right = n - n_left
            with np.errstate(divide="ignore", invalid="ignore"):
                p_left = pos_left / n_left
                p_right = pos_right / n_right
                impurity = (
                    n_left * 2.0 * p_left * (1.0 - p_left)
                    + n_right * 2.0 * p_right * (1.0 - p_right)
                ) / n
            decrease = np.where(valid, parent_impurity - impurity, -np.inf)
            i = int(np.argmax(decrease))
            if decrease[i] > 1e-12 and (best is None or decrease[i] > best[2]):
                threshold = (xs[i] + xs[i + 1]) / 2.0
                if threshold >= xs[i + 1]:  # midpoint rounded up to the
                    threshold = xs[i]  # upper value; fall back to "<= xs[i]"
                best = (int(f), float(threshold), float(decrease[i]))
        return best

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator
    ) -> _Node:
        n = len(y)
        n_pos = float(y.sum())
        node = _Node(
            n_samples=n,
            positive_fraction=n_pos / n,
            impurity=_gini(n_pos, n),
        )
        if (
            n < self.min_samples_split
            or n_pos in (0.0, float(n))
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        k = self._n_candidate_features(X.shape[1])
        if k < X.shape[1]:
            features = rng.choice(X.shape[1], size=k, replace=False)
        else:
            features = np.arange(X.shape[1])
        split = self._best_split(X, y, features)
        if split is None:
            return node
        feature, threshold, decrease = split
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        self._importances[feature] += decrease * n
        return node

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        self._n_features = X.shape[1]
        self._importances = np.zeros(self._n_features)
        rng = np.random.default_rng(self.seed)
        self._root = self._build(X, y, depth=0, rng=rng)
        total = self._importances.sum()
        if total > 0:
            self._importances /= total
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    # prediction & introspection
    # ------------------------------------------------------------------
    def _leaf_for(self, x: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        return np.array([self._leaf_for(x).positive_fraction for x in X])

    @property
    def feature_importances_(self) -> np.ndarray:
        self._require_fitted()
        return self._importances.copy()

    def decision_path(self, x) -> list[tuple[int, float, bool]]:
        """The tests record *x* passes: (feature, threshold, went_left)."""
        self._require_fitted()
        x = np.asarray(x, dtype=float)
        path = []
        node = self._root
        while not node.is_leaf:
            went_left = bool(x[node.feature] <= node.threshold)
            path.append((node.feature, node.threshold, went_left))
            node = node.left if went_left else node.right
        return path

    def depth(self) -> int:
        """Depth of the fitted tree (a lone leaf has depth 0)."""
        self._require_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def leaves(self) -> Iterator[_Node]:
        """Iterate over the fitted tree's leaves (internal nodes excluded)."""
        self._require_fitted()

        def walk(node: _Node):
            if node.is_leaf:
                yield node
            else:
                yield from walk(node.left)
                yield from walk(node.right)

        yield from walk(self._root)


def export_rules(
    tree: DecisionTreeClassifier, feature_names: list[str] | None = None
) -> str:
    """Render a fitted tree as indented if/else text (debugger output)."""
    tree._require_fitted()

    def name(f: int) -> str:
        if feature_names is not None:
            return feature_names[f]
        return f"feature[{f}]"

    lines: list[str] = []

    def walk(node: _Node, indent: int) -> None:
        pad = "  " * indent
        if node.is_leaf:
            verdict = "MATCH" if node.positive_fraction >= 0.5 else "NON-MATCH"
            lines.append(
                f"{pad}-> {verdict} (p={node.positive_fraction:.2f}, n={node.n_samples})"
            )
            return
        lines.append(f"{pad}if {name(node.feature)} <= {node.threshold:.4f}:")
        walk(node.left, indent + 1)
        lines.append(f"{pad}else:  # {name(node.feature)} > {node.threshold:.4f}")
        walk(node.right, indent + 1)

    walk(tree._root, 0)
    return "\n".join(lines)
