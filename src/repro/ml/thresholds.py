"""Decision-threshold analysis for probabilistic matchers.

The matching layer thresholds ``predict_proba`` at 0.5 (as PyMatcher
does), but a precision-oriented deployment may prefer a different
operating point. :func:`precision_recall_curve` sweeps every achievable
threshold; :func:`select_threshold` picks the one meeting a precision
floor with maximal recall — a learning-based analogue of the paper's
negative-rule move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import EvaluationError


@dataclass(frozen=True)
class CurvePoint:
    """One operating point of a probabilistic classifier."""

    threshold: float
    precision: float
    recall: float
    predicted_positive: int


def precision_recall_curve(
    y_true: Sequence[int], probabilities: Sequence[float]
) -> list[CurvePoint]:
    """Operating points at every distinct predicted probability.

    Points are ordered by increasing threshold; each point classifies
    ``probability >= threshold`` as a match.
    """
    y_true = np.asarray(y_true, dtype=int)
    probabilities = np.asarray(probabilities, dtype=float)
    if y_true.shape != probabilities.shape:
        raise EvaluationError(
            f"length mismatch: {y_true.shape} labels vs {probabilities.shape} scores"
        )
    if len(y_true) == 0:
        raise EvaluationError("empty inputs")
    total_positive = int(y_true.sum())
    points = []
    for threshold in sorted(set(probabilities.tolist())):
        predicted = probabilities >= threshold
        tp = int((predicted & (y_true == 1)).sum())
        n_predicted = int(predicted.sum())
        points.append(
            CurvePoint(
                threshold=float(threshold),
                precision=tp / n_predicted if n_predicted else 0.0,
                recall=tp / total_positive if total_positive else 0.0,
                predicted_positive=n_predicted,
            )
        )
    return points


def select_threshold(
    y_true: Sequence[int],
    probabilities: Sequence[float],
    precision_floor: float,
) -> CurvePoint | None:
    """The lowest threshold whose precision meets the floor.

    Among operating points with ``precision >= precision_floor``, returns
    the one with the highest recall (ties broken toward the lower
    threshold); ``None`` when no point reaches the floor.
    """
    if not 0.0 < precision_floor <= 1.0:
        raise EvaluationError(
            f"precision_floor must be in (0,1], got {precision_floor}"
        )
    candidates = [
        p for p in precision_recall_curve(y_true, probabilities)
        if p.precision >= precision_floor
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: (p.recall, -p.threshold))
