"""Missing-value imputation for feature matrices.

The case study fills missing feature-vector values with the mean of the
respective column before training/applying learners (Section 9).
:class:`MeanImputer` learns those means on one matrix and applies them to
any other, so training and candidate-set matrices are imputed consistently.
"""

from __future__ import annotations

import numpy as np

from ..errors import MatcherError, NotFittedError


class MeanImputer:
    """Replace NaN cells with per-column means learned from training data.

    Columns that are entirely NaN at fit time fall back to *fallback*
    (default 0.0), since a mean cannot be computed for them.
    """

    def __init__(self, fallback: float = 0.0) -> None:
        self.fallback = fallback
        self._means: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self._means is not None

    def fit(self, X: np.ndarray) -> "MeanImputer":
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise MatcherError(f"expected 2-D matrix, got shape {X.shape}")
        if X.shape[0] == 0:
            raise MatcherError("cannot fit imputer on an empty matrix")
        import warnings

        with warnings.catch_warnings():
            # an all-NaN column triggers "Mean of empty slice"; the fallback
            # below handles that case explicitly
            warnings.simplefilter("ignore", category=RuntimeWarning)
            means = np.nanmean(X, axis=0)
        means = np.where(np.isnan(means), self.fallback, means)
        self._means = means
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Return a copy of *X* with NaN cells filled."""
        if self._means is None:
            raise NotFittedError("MeanImputer is not fitted yet")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise MatcherError(f"expected 2-D matrix, got shape {X.shape}")
        if X.shape[1] != len(self._means):
            raise MatcherError(
                f"matrix has {X.shape[1]} columns, imputer learned {len(self._means)}"
            )
        out = X.copy()
        rows, cols = np.nonzero(np.isnan(out))
        out[rows, cols] = self._means[cols]
        return out

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
