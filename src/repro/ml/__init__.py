"""From-scratch machine-learning substrate (scikit-learn stand-in).

Provides the six learners the case study compares (decision tree, random
forest, logistic regression, linear regression, naive Bayes, linear SVM),
mean imputation, binary metrics and cross-validation utilities.
"""

from .base import Classifier, check_X, check_X_y
from .forest import RandomForestClassifier
from .impute import MeanImputer
from .linreg import LinearRegressionClassifier
from .logistic import LogisticRegression
from .metrics import (
    PRF,
    ConfusionCounts,
    accuracy,
    confusion_counts,
    f1_score,
    precision,
    recall,
)
from .model_selection import (
    CVResult,
    cross_validate,
    kfold_indices,
    leave_one_out_predictions,
    stratified_kfold_indices,
    train_test_split,
)
from .naive_bayes import GaussianNaiveBayes
from .thresholds import CurvePoint, precision_recall_curve, select_threshold
from .svm import LinearSVM
from .tree import DecisionTreeClassifier, export_rules

__all__ = [
    "PRF",
    "CVResult",
    "Classifier",
    "ConfusionCounts",
    "CurvePoint",
    "DecisionTreeClassifier",
    "GaussianNaiveBayes",
    "LinearRegressionClassifier",
    "LinearSVM",
    "LogisticRegression",
    "MeanImputer",
    "RandomForestClassifier",
    "accuracy",
    "check_X",
    "check_X_y",
    "confusion_counts",
    "cross_validate",
    "export_rules",
    "f1_score",
    "kfold_indices",
    "leave_one_out_predictions",
    "precision",
    "precision_recall_curve",
    "select_threshold",
    "recall",
    "stratified_kfold_indices",
    "train_test_split",
]
