"""Binary classification metrics: precision, recall, F1, confusion counts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import EvaluationError


@dataclass(frozen=True)
class ConfusionCounts:
    """Raw outcome counts of a binary classifier."""

    true_positives: int
    false_positives: int
    true_negatives: int
    false_negatives: int

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )


def confusion_counts(y_true: Sequence[int], y_pred: Sequence[int]) -> ConfusionCounts:
    """Count TP/FP/TN/FN; inputs must be equal-length 0/1 sequences."""
    y_true = np.asarray(y_true, dtype=int)
    y_pred = np.asarray(y_pred, dtype=int)
    if y_true.shape != y_pred.shape:
        raise EvaluationError(
            f"length mismatch: {y_true.shape} labels vs {y_pred.shape} predictions"
        )
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    return ConfusionCounts(tp, fp, tn, fn)


def accuracy(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Fraction of correct predictions."""
    c = confusion_counts(y_true, y_pred)
    if c.total == 0:
        return 0.0
    return (c.true_positives + c.true_negatives) / c.total


def precision(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """TP / (TP + FP); 0.0 when nothing was predicted positive."""
    c = confusion_counts(y_true, y_pred)
    denom = c.true_positives + c.false_positives
    return c.true_positives / denom if denom else 0.0


def recall(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """TP / (TP + FN); 0.0 when there are no actual positives."""
    c = confusion_counts(y_true, y_pred)
    denom = c.true_positives + c.false_negatives
    return c.true_positives / denom if denom else 0.0


def f1_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Harmonic mean of precision and recall."""
    p = precision(y_true, y_pred)
    r = recall(y_true, y_pred)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


@dataclass(frozen=True)
class PRF:
    """A (precision, recall, F1) triple, the unit of matcher comparison."""

    precision: float
    recall: float
    f1: float

    @classmethod
    def from_labels(cls, y_true: Sequence[int], y_pred: Sequence[int]) -> "PRF":
        return cls(
            precision=precision(y_true, y_pred),
            recall=recall(y_true, y_pred),
            f1=f1_score(y_true, y_pred),
        )

    def __str__(self) -> str:
        return (
            f"P={self.precision:.1%} R={self.recall:.1%} F1={self.f1:.1%}"
        )
