"""Linear regression used as a classifier.

PyMatcher offers a "linear regression matcher": ordinary least squares on
0/1 targets, thresholded at 0.5 for prediction. We solve the (ridge-
stabilised) normal equations directly with numpy's least-squares routine.
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_X, check_X_y


class LinearRegressionClassifier(Classifier):
    """OLS on binary targets, thresholded at 0.5.

    ``ridge`` adds a small L2 term so near-collinear similarity features
    (common among generated features) do not blow up the solution.
    """

    def __init__(self, ridge: float = 1e-6) -> None:
        super().__init__()
        self.ridge = ridge
        self._weights: np.ndarray | None = None

    def _reset(self) -> None:
        super()._reset()
        self._weights = None

    def fit(self, X, y) -> "LinearRegressionClassifier":
        X, y = check_X_y(X, y)
        A = np.hstack([X, np.ones((len(X), 1))])
        gram = A.T @ A + self.ridge * np.eye(A.shape[1])
        self._weights = np.linalg.solve(gram, A.T @ y.astype(float))
        self._fitted = True
        return self

    def decision_function(self, X) -> np.ndarray:
        """Raw regression scores (clipped to [0,1] by ``predict_proba``)."""
        self._require_fitted()
        X = check_X(X)
        A = np.hstack([X, np.ones((len(X), 1))])
        return A @ self._weights

    def predict_proba(self, X) -> np.ndarray:
        return np.clip(self.decision_function(X), 0.0, 1.0)
