"""Cross-validation and data-splitting utilities.

The case study uses five-fold cross-validation to select a matcher
(Section 9), a random half/half split for matcher debugging, and
leave-one-out cross-validation for label debugging (Section 8). All
splitters take explicit seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import MatcherError
from .base import Classifier
from .metrics import PRF


def kfold_indices(
    n: int, n_folds: int, rng: np.random.Generator
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (train_indices, test_indices) for shuffled k-fold CV."""
    if n_folds < 2:
        raise MatcherError(f"need at least 2 folds, got {n_folds}")
    if n_folds > n:
        raise MatcherError(f"cannot make {n_folds} folds from {n} rows")
    order = rng.permutation(n)
    folds = np.array_split(order, n_folds)
    for i in range(n_folds):
        test = folds[i]
        train = np.concatenate([folds[j] for j in range(n_folds) if j != i])
        yield train, test


def stratified_kfold_indices(
    y: Sequence[int], n_folds: int, rng: np.random.Generator
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """K-fold with per-class round-robin assignment, so every fold sees
    positives even when matches are rare (as in EM labeled samples)."""
    y = np.asarray(y, dtype=int)
    n = len(y)
    if n_folds < 2:
        raise MatcherError(f"need at least 2 folds, got {n_folds}")
    assignment = np.empty(n, dtype=int)
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        members = members[rng.permutation(len(members))]
        assignment[members] = np.arange(len(members)) % n_folds
    for i in range(n_folds):
        test = np.flatnonzero(assignment == i)
        train = np.flatnonzero(assignment != i)
        if len(test) == 0 or len(train) == 0:
            raise MatcherError(
                f"fold {i} is empty: {n} rows cannot be stratified into {n_folds} folds"
            )
        yield train, test


@dataclass(frozen=True)
class CVResult:
    """Cross-validation outcome for one classifier."""

    fold_scores: tuple[PRF, ...]

    @property
    def mean_precision(self) -> float:
        return float(np.mean([s.precision for s in self.fold_scores]))

    @property
    def mean_recall(self) -> float:
        return float(np.mean([s.recall for s in self.fold_scores]))

    @property
    def mean_f1(self) -> float:
        return float(np.mean([s.f1 for s in self.fold_scores]))

    def summary(self) -> PRF:
        return PRF(self.mean_precision, self.mean_recall, self.mean_f1)


def cross_validate(
    model: Classifier,
    X: np.ndarray,
    y: Sequence[int],
    n_folds: int = 5,
    seed: int = 0,
    stratified: bool = True,
) -> CVResult:
    """K-fold cross-validate *model*, returning per-fold precision/recall/F1.

    The model is cloned per fold, so the passed instance is left untouched.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    rng = np.random.default_rng(seed)
    splitter = (
        stratified_kfold_indices(y, n_folds, rng)
        if stratified
        else kfold_indices(len(y), n_folds, rng)
    )
    scores = []
    for train, test in splitter:
        fold_model = model.clone()
        fold_model.fit(X[train], y[train])
        predictions = fold_model.predict(X[test])
        scores.append(PRF.from_labels(y[test], predictions))
    return CVResult(tuple(scores))


def train_test_split(
    n: int, test_fraction: float, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Shuffled index split; returns (train_indices, test_indices)."""
    if not 0.0 < test_fraction < 1.0:
        raise MatcherError(f"test_fraction must be in (0,1), got {test_fraction}")
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    if n_test >= n:
        raise MatcherError(f"test split of {n_test} leaves no training rows (n={n})")
    return order[n_test:], order[:n_test]


def leave_one_out_predictions(
    model: Classifier, X: np.ndarray, y: Sequence[int]
) -> np.ndarray:
    """Predict each row from a model trained on all the *other* rows.

    This is the Section-8 label-debugging procedure: rows whose prediction
    disagrees with their label are candidate labeling errors.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    n = len(y)
    if n < 2:
        raise MatcherError("leave-one-out needs at least 2 rows")
    predictions = np.zeros(n, dtype=int)
    indices = np.arange(n)
    for i in range(n):
        rest = indices[indices != i]
        fold_model = model.clone()
        fold_model.fit(X[rest], y[rest])
        predictions[i] = int(fold_model.predict(X[i : i + 1])[0])
    return predictions
