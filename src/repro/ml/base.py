"""Base classes for the from-scratch learners.

The learners implement the minimal scikit-learn-style protocol PyMatcher
relies on: ``fit(X, y)``, ``predict(X)``, ``predict_proba(X)`` and
``clone()``. Inputs are dense ``numpy`` float arrays; labels are 0/1.
None of the learners accepts NaN — callers impute first (see
:mod:`repro.ml.impute`), exactly as the case study fills missing feature
values with column means before training.
"""

from __future__ import annotations

import copy
from typing import Any

import numpy as np

from ..errors import MatcherError, NotFittedError


def check_X(X: Any) -> np.ndarray:
    """Validate and convert a feature matrix to 2-D float64 without NaN."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise MatcherError(f"expected 2-D feature matrix, got shape {X.shape}")
    if np.isnan(X).any():
        raise MatcherError(
            "feature matrix contains NaN; impute missing values first "
            "(see repro.ml.impute.MeanImputer)"
        )
    return X


def check_X_y(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate a training pair: matching lengths, binary integer labels."""
    X = check_X(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise MatcherError(f"expected 1-D label vector, got shape {y.shape}")
    if len(y) != len(X):
        raise MatcherError(f"X has {len(X)} rows but y has {len(y)}")
    if len(y) == 0:
        raise MatcherError("cannot fit on an empty training set")
    y = y.astype(int)
    labels = set(np.unique(y).tolist())
    if not labels <= {0, 1}:
        raise MatcherError(f"labels must be 0/1, got {sorted(labels)}")
    return X, y


class Classifier:
    """Base class for binary classifiers.

    Sub-classes set ``self._fitted = True`` at the end of :meth:`fit` and
    may rely on :meth:`_require_fitted` in prediction methods.
    """

    def __init__(self) -> None:
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted yet")

    def fit(self, X: Any, y: Any) -> "Classifier":  # pragma: no cover - abstract
        raise NotImplementedError

    def predict_proba(self, X: Any) -> np.ndarray:  # pragma: no cover - abstract
        """Return P(match) for each row, shape (n,)."""
        raise NotImplementedError

    def predict(self, X: Any) -> np.ndarray:
        """Predict 0/1 labels by thresholding ``predict_proba`` at 0.5."""
        return (self.predict_proba(X) >= 0.5).astype(int)

    def clone(self) -> "Classifier":
        """An unfitted copy with the same hyper-parameters."""
        fresh = copy.deepcopy(self)
        fresh._reset()
        return fresh

    def _reset(self) -> None:
        """Drop fitted state; sub-classes extend this."""
        self._fitted = False
