"""Gaussian naive Bayes classifier."""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_X, check_X_y


class GaussianNaiveBayes(Classifier):
    """Per-class Gaussian likelihoods with variance smoothing.

    ``var_smoothing`` adds a fraction of the largest feature variance to all
    variances, which keeps constant features (e.g. an exact-match feature
    that is always 0 in training) from producing degenerate likelihoods.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        super().__init__()
        self.var_smoothing = var_smoothing
        self._theta: np.ndarray | None = None  # (2, d) means
        self._var: np.ndarray | None = None  # (2, d) variances
        self._log_prior: np.ndarray | None = None  # (2,)

    def _reset(self) -> None:
        super()._reset()
        self._theta = None
        self._var = None
        self._log_prior = None

    def fit(self, X, y) -> "GaussianNaiveBayes":
        X, y = check_X_y(X, y)
        d = X.shape[1]
        theta = np.zeros((2, d))
        var = np.ones((2, d))
        counts = np.zeros(2)
        for cls in (0, 1):
            mask = y == cls
            counts[cls] = mask.sum()
            if counts[cls]:
                theta[cls] = X[mask].mean(axis=0)
                var[cls] = X[mask].var(axis=0)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max(initial=0.0)), 1.0)
        self._theta = theta
        self._var = var + epsilon
        # Laplace-smoothed priors keep a single-class training set usable.
        prior = (counts + 1.0) / (counts.sum() + 2.0)
        self._log_prior = np.log(prior)
        self._fitted = True
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        jll = np.zeros((len(X), 2))
        for cls in (0, 1):
            log_det = np.sum(np.log(2.0 * np.pi * self._var[cls]))
            sq = ((X - self._theta[cls]) ** 2) / self._var[cls]
            jll[:, cls] = self._log_prior[cls] - 0.5 * (log_det + sq.sum(axis=1))
        return jll

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        jll = self._joint_log_likelihood(X)
        # normalise in log space for stability
        shift = jll.max(axis=1, keepdims=True)
        probs = np.exp(jll - shift)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]
