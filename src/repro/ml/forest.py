"""Random-forest classifier: bagged CART trees with feature sub-sampling.

The random forest is the case study's first model-selection winner and the
learner used for label debugging (leave-one-out cross-validation over the
labeled sample, Section 8).
"""

from __future__ import annotations

import numpy as np

from .base import Classifier, check_X, check_X_y
from .tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Average of bootstrap-trained CART trees.

    Parameters
    ----------
    n_trees:
        Ensemble size.
    max_depth, min_samples_split, min_samples_leaf:
        Passed to each tree.
    max_features:
        Features examined per split; default ``"sqrt"``.
    seed:
        Seeds both the bootstrap resampling and per-tree feature sampling.
    """

    def __init__(
        self,
        n_trees: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ) -> None:
        super().__init__()
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self._trees: list[DecisionTreeClassifier] = []

    def _reset(self) -> None:
        super()._reset()
        self._trees = []

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        rng = np.random.default_rng(self.seed)
        self._trees = []
        n = len(y)
        for t in range(self.n_trees):
            indices = rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(X[indices], y[indices])
            self._trees.append(tree)
        self._fitted = True
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._require_fitted()
        X = check_X(X)
        votes = np.zeros(len(X))
        for tree in self._trees:
            votes += tree.predict_proba(X)
        return votes / len(self._trees)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean of per-tree impurity-decrease importances."""
        self._require_fitted()
        total = np.zeros_like(self._trees[0].feature_importances_)
        for tree in self._trees:
            total += tree.feature_importances_
        return total / len(self._trees)
