"""Labels and labeled-pair stores.

The case study labels pairs "Yes", "No" or "Unsure" (footnote 5 explains
the Unsure option: even domain experts cannot label some dirty/cryptic
pairs, and such pairs are excluded from training and evaluation).
:class:`LabeledPairs` is the running store the two teams updated across
labeling iterations, meetings and debugging rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator, Mapping

from ..blocking.candidate_set import Pair
from ..errors import LabelingError


class Label(Enum):
    """A human label for a candidate pair."""

    YES = "Yes"
    NO = "No"
    UNSURE = "Unsure"

    @classmethod
    def from_text(cls, text: str) -> "Label":
        for label in cls:
            if label.value.lower() == str(text).strip().lower():
                return label
        raise LabelingError(f"unknown label {text!r} (expected Yes/No/Unsure)")

    def as_int(self) -> int:
        """0/1 for No/Yes; raises for Unsure (which must be filtered out)."""
        if self is Label.UNSURE:
            raise LabelingError("Unsure labels cannot be converted to 0/1")
        return 1 if self is Label.YES else 0


@dataclass(frozen=True)
class LabelCounts:
    """Yes/No/Unsure tally of a labeled set."""

    yes: int
    no: int
    unsure: int

    @property
    def total(self) -> int:
        return self.yes + self.no + self.unsure

    def __str__(self) -> str:
        return f"{self.yes} Yes / {self.no} No / {self.unsure} Unsure"


class LabeledPairs:
    """An ordered mapping of candidate pairs to labels.

    Pairs keep insertion order (labeling iteration order); re-labeling a
    pair (label updates after team meetings) overwrites in place.
    """

    def __init__(self, items: Mapping[Pair, Label] | Iterable[tuple[Pair, Label]] = ()) -> None:
        self._labels: dict[Pair, Label] = {}
        items = items.items() if isinstance(items, Mapping) else items
        for pair, label in items:
            self.set(pair, label)

    def set(self, pair: Pair, label: Label) -> None:
        if not isinstance(label, Label):
            raise LabelingError(f"expected a Label, got {label!r}")
        self._labels[tuple(pair)] = label

    def get(self, pair: Pair) -> Label:
        try:
            return self._labels[tuple(pair)]
        except KeyError:
            raise LabelingError(f"pair {pair} has not been labeled") from None

    def __contains__(self, pair: Pair) -> bool:
        return tuple(pair) in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Pair]:
        return iter(self._labels)

    def items(self) -> Iterator[tuple[Pair, Label]]:
        return iter(self._labels.items())

    def pairs(self) -> list[Pair]:
        return list(self._labels)

    def counts(self) -> LabelCounts:
        yes = sum(1 for v in self._labels.values() if v is Label.YES)
        no = sum(1 for v in self._labels.values() if v is Label.NO)
        return LabelCounts(yes=yes, no=no, unsure=len(self._labels) - yes - no)

    def merge(self, other: "LabeledPairs") -> "LabeledPairs":
        """A new store with *other*'s labels overriding this one's."""
        merged = LabeledPairs(list(self.items()))
        for pair, label in other.items():
            merged.set(pair, label)
        return merged

    def without_unsure(self) -> "LabeledPairs":
        """Drop Unsure pairs (training/evaluation exclude them)."""
        return LabeledPairs(
            [(p, v) for p, v in self._labels.items() if v is not Label.UNSURE]
        )

    def without_pairs(self, exclude: Iterable[Pair]) -> "LabeledPairs":
        """Drop the given pairs (e.g. sure matches before training)."""
        excluded = {tuple(p) for p in exclude}
        return LabeledPairs(
            [(p, v) for p, v in self._labels.items() if p not in excluded]
        )

    def to_training_data(self) -> tuple[list[Pair], list[int]]:
        """(pairs, 0/1 labels); raises if any Unsure label remains."""
        pairs, y = [], []
        for pair, label in self._labels.items():
            pairs.append(pair)
            y.append(label.as_int())
        return pairs, y
