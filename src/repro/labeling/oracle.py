"""Simulated domain-expert labelers.

The real case study had UMETRICS team members labeling pairs; this module
replaces them with oracles over the synthetic scenario's ground truth.

* :class:`ExpertOracle` — labels from ground truth, with configurable
  imperfections: borderline pairs (caller-defined predicate) may come back
  Unsure or mislabeled, modeling the 22-mismatch round and the D1-D3
  discrepancy classes of Section 8. Decisions are a deterministic function
  of (seed, pair), so labeling the same pair twice always agrees.
* :class:`StudentLabeler` — a noisier wrapper modeling the hourly student
  the UMETRICS team trained, with a higher error/unsure rate.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Iterable

from ..blocking.candidate_set import CandidateSet, Pair
from .labels import Label, LabeledPairs

Borderline = Callable[[dict[str, Any], dict[str, Any], bool], bool]


def _pair_fraction(seed: int, pair: Pair, salt: str) -> float:
    """A stable pseudo-random fraction in [0, 1) for a (seed, pair, salt)."""
    text = f"{seed}|{salt}|{pair[0]}|{pair[1]}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class ExpertOracle:
    """A deterministic simulated domain expert.

    Parameters
    ----------
    truth:
        The ground-truth set of matching pairs.
    borderline:
        Predicate ``(l_row, r_row, is_match) -> bool`` marking pairs the
        expert finds genuinely hard (dirty titles, missing numbers, ...).
        Only borderline pairs can come back Unsure or wrong.
    unsure_probability:
        Chance a borderline pair is labeled Unsure.
    error_probability:
        Chance a borderline pair (not already Unsure) is labeled wrongly.
    seed:
        Determinism seed; two oracles with the same seed agree everywhere.
    """

    def __init__(
        self,
        truth: Iterable[Pair],
        borderline: Borderline | None = None,
        unsure_probability: float = 0.0,
        error_probability: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.truth = {tuple(p) for p in truth}
        self.borderline = borderline
        self.unsure_probability = unsure_probability
        self.error_probability = error_probability
        self.seed = seed

    def is_match(self, pair: Pair) -> bool:
        return tuple(pair) in self.truth

    def label(self, pair: Pair, l_row: dict[str, Any], r_row: dict[str, Any]) -> Label:
        """Label one pair (deterministic per (seed, pair))."""
        pair = tuple(pair)
        is_match = pair in self.truth
        hard = self.borderline is not None and self.borderline(l_row, r_row, is_match)
        if hard:
            if _pair_fraction(self.seed, pair, "unsure") < self.unsure_probability:
                return Label.UNSURE
            if _pair_fraction(self.seed, pair, "error") < self.error_probability:
                return Label.NO if is_match else Label.YES
        return Label.YES if is_match else Label.NO

    def label_pairs(self, candidates: CandidateSet, pairs: Iterable[Pair]) -> LabeledPairs:
        """Label a batch of candidate pairs."""
        labeled = LabeledPairs()
        for pair in pairs:
            l_row, r_row = candidates.record_pair(tuple(pair))
            labeled.set(tuple(pair), self.label(pair, l_row, r_row))
        return labeled

    def resolve(self, pair: Pair) -> Label:
        """The expert's considered answer after a face-to-face discussion:
        ground truth wins (this models the meeting where labels got fixed)."""
        return Label.YES if self.is_match(pair) else Label.NO


class StudentLabeler(ExpertOracle):
    """The trained hourly student: same truth, more noise.

    The defaults make the student unsure/wrong noticeably more often than
    the expert, which is what produced the 22 cross-check mismatches in
    Section 8 before the two teams reconciled.
    """

    def __init__(
        self,
        truth: Iterable[Pair],
        borderline: Borderline | None = None,
        unsure_probability: float = 0.35,
        error_probability: float = 0.25,
        seed: int = 1,
    ) -> None:
        super().__init__(
            truth,
            borderline=borderline,
            unsure_probability=unsure_probability,
            error_probability=error_probability,
            seed=seed,
        )
