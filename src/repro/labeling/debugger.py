"""Label debugging via leave-one-out cross-validation.

Section 8, "Debugging the Labeled Sample": train an ML matcher on all
labeled pairs but one, predict the held-out pair, and flag disagreements
with the human label as potential labeling errors. The case study used a
random forest, removed Unsure pairs and sure matches (M1 pairs) first, and
grouped the surviving discrepancies into classes (D1-D3) for discussion
with the domain experts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..features.generate import FeatureSet
from ..features.vectors import extract_feature_vectors
from ..ml import MeanImputer, RandomForestClassifier, leave_one_out_predictions
from ..ml.base import Classifier
from .labels import LabeledPairs


@dataclass(frozen=True)
class LabelDiscrepancy:
    """A labeled pair whose leave-one-out prediction disagrees."""

    pair: Pair
    given_label: int
    predicted_label: int


def debug_labels(
    candidates: CandidateSet,
    labels: LabeledPairs,
    feature_set: FeatureSet,
    exclude_pairs: Sequence[Pair] = (),
    model: Classifier | None = None,
) -> list[LabelDiscrepancy]:
    """Run leave-one-out label debugging.

    *labels* should already contain only Yes/No pairs (call
    ``without_unsure()`` first); *exclude_pairs* removes sure matches, as
    the paper does — an exact-rule match needs no statistical check.
    """
    working = labels.without_unsure().without_pairs(exclude_pairs)
    pairs, y = working.to_training_data()
    if model is None:
        model = RandomForestClassifier(n_trees=30, min_samples_leaf=2, seed=0)
    matrix = extract_feature_vectors(candidates, feature_set, pairs=pairs)
    values = MeanImputer().fit_transform(matrix.values)
    predicted = leave_one_out_predictions(model, values, np.asarray(y))
    return [
        LabelDiscrepancy(pair=pairs[i], given_label=int(y[i]), predicted_label=int(p))
        for i, p in enumerate(predicted)
        if int(p) != int(y[i])
    ]


def group_discrepancies(
    candidates: CandidateSet,
    discrepancies: Sequence[LabelDiscrepancy],
    classifiers: dict[str, Callable[[dict, dict], bool]],
) -> dict[str, list[LabelDiscrepancy]]:
    """Bucket discrepancies by caller-supplied record-pair predicates.

    The case study's buckets were D1 (similar titles, USDA title carries an
    "NC/NRSP" suffix), D2 (different award numbers, same titles) and D3
    (missing USDA award number, similar titles). Discrepancies matching no
    predicate land in the ``"other"`` bucket.
    """
    buckets: dict[str, list[LabelDiscrepancy]] = {name: [] for name in classifiers}
    buckets["other"] = []
    for discrepancy in discrepancies:
        l_row, r_row = candidates.record_pair(discrepancy.pair)
        for name, predicate in classifiers.items():
            if predicate(l_row, r_row):
                buckets[name].append(discrepancy)
                break
        else:
            buckets["other"].append(discrepancy)
    return buckets
