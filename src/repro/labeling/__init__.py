"""Sampling/labeling protocol: labels, oracles, cloud tool, reconciliation."""

from .debugger import LabelDiscrepancy, debug_labels, group_discrepancies
from .labels import Label, LabelCounts, LabeledPairs
from .majority import agreement_rate, majority_label, vote_on_pairs
from .oracle import ExpertOracle, StudentLabeler
from .sampling_strategies import UncertaintySampler, stratified_sample
from .reconcile import LabelDisagreement, cross_check, resolve_with_authority
from .tool import AuditEntry, CloudLabelingTool

__all__ = [
    "AuditEntry",
    "CloudLabelingTool",
    "ExpertOracle",
    "Label",
    "LabelCounts",
    "LabelDisagreement",
    "LabelDiscrepancy",
    "LabeledPairs",
    "StudentLabeler",
    "UncertaintySampler",
    "agreement_rate",
    "cross_check",
    "debug_labels",
    "group_discrepancies",
    "majority_label",
    "resolve_with_authority",
    "stratified_sample",
    "vote_on_pairs",
]
