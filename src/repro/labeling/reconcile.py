"""Cross-checking two labelers and reconciling disagreements.

Section 8: the EM team labeled the same 100 pairs the UMETRICS student
labeled, cross-checked (22 mismatches), shared the mismatched pairs in a
spreadsheet and met; the UMETRICS team then updated 4 labels. This module
implements that protocol: :func:`cross_check` finds disagreements,
:func:`resolve_with_authority` applies the domain-expert's final say.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..blocking.candidate_set import Pair
from .labels import Label, LabeledPairs
from .oracle import ExpertOracle


@dataclass(frozen=True)
class LabelDisagreement:
    """One pair the two labelers disagree on."""

    pair: Pair
    label_a: Label
    label_b: Label


def cross_check(a: LabeledPairs, b: LabeledPairs) -> list[LabelDisagreement]:
    """Disagreements on pairs labeled by *both* a and b (in a's order)."""
    out = []
    for pair, label_a in a.items():
        if pair in b:
            label_b = b.get(pair)
            if label_a is not label_b:
                out.append(LabelDisagreement(pair=pair, label_a=label_a, label_b=label_b))
    return out


def resolve_with_authority(
    labels: LabeledPairs,
    disagreements: list[LabelDisagreement],
    authority: ExpertOracle,
    keep_unsure: bool = True,
) -> tuple[LabeledPairs, int]:
    """Resolve disagreements by asking the authoritative expert.

    Returns ``(updated labels, number of labels changed)`` — the "they
    updated 4 labels to Yes" moment. Pairs where the authority agrees with
    the existing label are left untouched. With *keep_unsure* (the paper's
    behaviour) an existing Unsure label stands: the meeting only overturns
    *definite* labels the authority contradicts — pairs even the experts
    could not call remain Unsure.
    """
    updated = LabeledPairs(list(labels.items()))
    changed = 0
    for disagreement in disagreements:
        current = updated.get(disagreement.pair)
        if keep_unsure and current is Label.UNSURE:
            continue
        final = authority.resolve(disagreement.pair)
        if current is not final:
            updated.set(disagreement.pair, final)
            changed += 1
    return updated, changed
