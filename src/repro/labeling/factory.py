"""Sampler registry: pick a down-sampling / pair-sampling strategy by name.

Completes the per-family registries consumed by the plan IR
(:mod:`repro.plan`): blockers, matchers, rules, features — and samplers.
A sampler config is a kind name or ``{"kind": name, ...params}``; the
built sampler exposes one of two call shapes, advertised by ``mode``:

* ``"pairs"`` — ``sample_pairs(candidates, n, rng) -> list[Pair]``
  (the Section-8 random pair draw);
* ``"tables"`` — ``sample_tables(table_a, table_b, *, session=None)``
  (the Corleone-style table down-sample of
  :func:`repro.blocking.down_sample.down_sample`).

ROADMAP item 4 (weak supervision) will register its labeling-function
samplers here instead of adding new plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..errors import LabelingError


@dataclass(frozen=True)
class RandomPairSampler:
    """Uniform pair sampling without replacement (Section 8's draw)."""

    mode = "pairs"

    def sample_pairs(self, candidates: Any, n: int, rng: np.random.Generator):
        return candidates.sample(n, rng)


@dataclass(frozen=True)
class CorleoneDownSampler:
    """Corleone-style evidence-directed table down-sampling."""

    attrs: tuple[str, ...]
    b_size: int
    a_size: int
    seed: int = 0
    mode = "tables"

    def sample_tables(self, table_a: Any, table_b: Any, *, session: Any = None):
        from ..blocking.down_sample import down_sample

        rng = np.random.default_rng(self.seed)
        return down_sample(
            table_a, table_b, list(self.attrs), self.b_size, self.a_size,
            rng, session=session,
        )


def _random_pairs(**params: Any) -> RandomPairSampler:
    if params:
        raise TypeError(f"unexpected parameters {sorted(params)}")
    return RandomPairSampler()


def _corleone(
    attrs: Sequence[str], b_size: int, a_size: int, seed: int = 0
) -> CorleoneDownSampler:
    return CorleoneDownSampler(
        attrs=tuple(attrs), b_size=int(b_size), a_size=int(a_size), seed=int(seed)
    )


#: kind name -> sampler builder. Extend via :func:`register_sampler`.
SAMPLER_REGISTRY: dict[str, Callable[..., Any]] = {
    "random_pairs": _random_pairs,
    "corleone": _corleone,
}


def register_sampler(kind: str, builder: Callable[..., Any]) -> None:
    """Register a sampler kind (overwriting an existing kind fails)."""
    if kind in SAMPLER_REGISTRY:
        raise LabelingError(f"sampler kind {kind!r} is already registered")
    SAMPLER_REGISTRY[kind] = builder


def create_sampler(config: "str | Mapping[str, Any]") -> Any:
    """Build one sampler from a kind name or config mapping."""
    if isinstance(config, str):
        kind, params = config, {}
    elif isinstance(config, Mapping):
        if "kind" not in config:
            raise LabelingError(f"sampler config is missing 'kind': {config!r}")
        kind = config["kind"]
        params = {k: v for k, v in config.items() if k != "kind"}
    else:
        raise LabelingError(
            f"sampler config must be a kind name or mapping, got {config!r}"
        )
    builder = SAMPLER_REGISTRY.get(kind)
    if builder is None:
        raise LabelingError(
            f"unknown sampler kind {kind!r}; available: {sorted(SAMPLER_REGISTRY)}"
        )
    try:
        return builder(**params)
    except TypeError as exc:
        raise LabelingError(
            f"bad parameters for sampler kind {kind!r}: {exc}"
        ) from exc
