"""Majority-vote labeling across several labelers.

Section 13's collaboration challenge: "most often they collaborate to
label a data set". When several team members label the same pairs, their
votes need combining; majority voting with an Unsure fallback is the
simplest sound rule (Corleone applies the same idea to crowd workers).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import LabelingError
from .labels import Label, LabeledPairs
from .oracle import ExpertOracle


def majority_label(votes: Sequence[Label]) -> Label:
    """Combine one pair's votes.

    Rules: the strict majority of *definite* (Yes/No) votes wins; a
    Yes/No tie — or no definite votes at all — yields Unsure. Unsure votes
    abstain rather than block (two Yes + one Unsure is still Yes).
    """
    if not votes:
        raise LabelingError("cannot combine an empty vote list")
    counts = Counter(votes)
    yes, no = counts[Label.YES], counts[Label.NO]
    if yes > no:
        return Label.YES
    if no > yes:
        return Label.NO
    return Label.UNSURE


def vote_on_pairs(
    labelers: Sequence[ExpertOracle],
    candidates: CandidateSet,
    pairs: Iterable[Pair],
) -> LabeledPairs:
    """Have every labeler label every pair, then majority-combine."""
    if not labelers:
        raise LabelingError("need at least one labeler")
    ballots = [labeler.label_pairs(candidates, list(pairs)) for labeler in labelers]
    combined = LabeledPairs()
    for pair in ballots[0].pairs():
        combined.set(pair, majority_label([b.get(pair) for b in ballots]))
    return combined


def agreement_rate(a: LabeledPairs, b: LabeledPairs) -> float:
    """Fraction of commonly-labeled pairs on which two labelers agree.

    A quick collaboration-health metric (the paper's teams discovered
    their disagreement only by manually cross-checking).
    """
    common = [p for p in a.pairs() if p in b]
    if not common:
        raise LabelingError("the two label sets share no pairs")
    agreed = sum(1 for p in common if a.get(p) is b.get(p))
    return agreed / len(common)
