"""The simulated cloud-based labeling tool.

Section 8: the EM team "developed a simple cloud-based labeling tool with a
good UI, but the tool was limited in that only one person could label at
any time". This module models that tool faithfully — batches of pairs are
uploaded, a single session may be active at a time, labels are submitted
one pair at a time, and the tool keeps an audit log of every action (which
is what makes the labeling logistics visible in reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..blocking.candidate_set import Pair
from ..errors import LabelingError, LabelingToolLockedError
from .labels import Label, LabeledPairs


@dataclass(frozen=True)
class AuditEntry:
    """One action in the tool's audit log."""

    action: str
    user: str
    detail: str


@dataclass
class _Session:
    user: str
    submitted: int = 0


class CloudLabelingTool:
    """Single-writer labeling tool with uploaded batches and an audit log."""

    def __init__(self) -> None:
        self._pending: list[Pair] = []
        self._pending_set: set[Pair] = set()
        self._labels = LabeledPairs()
        self._session: _Session | None = None
        self._log: list[AuditEntry] = []

    # ------------------------------------------------------------------
    # batch management
    # ------------------------------------------------------------------
    def upload_pairs(self, pairs: Iterable[Pair], user: str = "em-team") -> int:
        """Upload a batch; already-labeled and duplicate pairs are skipped.
        Returns the number of newly pending pairs."""
        added = 0
        for pair in pairs:
            pair = tuple(pair)
            if pair in self._labels or pair in self._pending_set:
                continue
            self._pending.append(pair)
            self._pending_set.add(pair)
            added += 1
        self._log.append(AuditEntry("upload", user, f"{added} pairs"))
        return added

    @property
    def pending(self) -> list[Pair]:
        return list(self._pending)

    # ------------------------------------------------------------------
    # sessions (only one labeler at a time)
    # ------------------------------------------------------------------
    def open_session(self, user: str) -> None:
        if self._session is not None:
            raise LabelingToolLockedError(
                f"user {self._session.user!r} is already labeling; "
                "the tool admits one session at a time"
            )
        self._session = _Session(user=user)
        self._log.append(AuditEntry("open", user, ""))

    def close_session(self) -> None:
        if self._session is None:
            raise LabelingError("no session is open")
        self._log.append(
            AuditEntry("close", self._session.user, f"{self._session.submitted} labeled")
        )
        self._session = None

    @property
    def active_user(self) -> str | None:
        return self._session.user if self._session else None

    # ------------------------------------------------------------------
    # labeling
    # ------------------------------------------------------------------
    def submit_label(self, pair: Pair, label: Label) -> None:
        """Label a pending pair within the open session."""
        if self._session is None:
            raise LabelingError("open a session before labeling")
        pair = tuple(pair)
        if pair not in self._pending_set:
            raise LabelingError(f"pair {pair} is not pending in the tool")
        self._labels.set(pair, label)
        self._pending.remove(pair)
        self._pending_set.discard(pair)
        self._session.submitted += 1

    def update_label(self, pair: Pair, label: Label, user: str = "umetrics-team") -> None:
        """Revise an already-submitted label (post-meeting fixes)."""
        pair = tuple(pair)
        if pair not in self._labels:
            raise LabelingError(f"pair {pair} has not been labeled yet")
        old = self._labels.get(pair)
        self._labels.set(pair, label)
        self._log.append(
            AuditEntry("update", user, f"{pair}: {old.value} -> {label.value}")
        )

    def labeled(self) -> LabeledPairs:
        """A copy of all submitted labels."""
        return LabeledPairs(list(self._labels.items()))

    def audit_log(self) -> list[AuditEntry]:
        return list(self._log)
