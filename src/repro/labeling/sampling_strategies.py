"""Sampling strategies for labeling.

Section 13 lists "how to label collaboratively [and efficiently]" among the
EM pain points current systems ignore. The case study used plain random
sampling; this module adds two refinements that address its stated problem
— "random sampling from this set will result in very few matches":

* :func:`stratified_sample` — sample per blocker-provenance stratum, so
  pairs that only one blocker caught (often the interesting ones) are
  represented;
* :class:`UncertaintySampler` — active labeling: pick the pairs the
  current matcher is least certain about, retrain, repeat.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..blocking.candidate_set import CandidateSet, Pair
from ..errors import LabelingError
from ..features.generate import FeatureSet
from ..features.vectors import extract_feature_vectors
from ..labeling.labels import LabeledPairs
from ..labeling.oracle import ExpertOracle
from ..matchers.ml_matcher import MLMatcher


def stratified_sample(
    strata: Sequence[CandidateSet],
    n_per_stratum: int,
    rng: np.random.Generator,
) -> list[Pair]:
    """Sample up to *n_per_stratum* pairs from each candidate set.

    Earlier strata take precedence: a pair sampled from stratum i is not
    re-sampled from stratum j > i. Strata smaller than the quota are taken
    whole.
    """
    if not strata:
        raise LabelingError("need at least one stratum")
    chosen: list[Pair] = []
    seen: set[Pair] = set()
    for stratum in strata:
        available = [p for p in stratum if p not in seen]
        if len(available) <= n_per_stratum:
            picked = available
        else:
            indices = rng.choice(len(available), size=n_per_stratum, replace=False)
            picked = [available[int(i)] for i in indices]
        for pair in picked:
            seen.add(pair)
            chosen.append(pair)
    return chosen


class UncertaintySampler:
    """Active labeling: query the pairs the matcher is least sure about.

    Each round trains (a clone of) the matcher on the labels so far and
    asks the oracle to label the *n_per_round* unlabeled pairs whose
    predicted match probability is closest to 0.5. A seed round of random
    pairs bootstraps the first model.
    """

    def __init__(
        self,
        candidates: CandidateSet,
        feature_set: FeatureSet,
        matcher: MLMatcher,
        oracle: ExpertOracle,
        seed: int = 0,
    ) -> None:
        self.candidates = candidates
        self.feature_set = feature_set
        self.matcher = matcher
        self.oracle = oracle
        self._rng = np.random.default_rng(seed)
        self._matrix = extract_feature_vectors(candidates, feature_set)
        self.labels = LabeledPairs()

    def _label(self, pairs: Sequence[Pair]) -> None:
        for pair, label in self.oracle.label_pairs(self.candidates, pairs).items():
            self.labels.set(pair, label)

    def seed_round(self, n: int) -> None:
        """Label *n* random pairs to bootstrap the first model."""
        self._label(self.candidates.sample(n, self._rng))

    def query_round(self, n_per_round: int) -> list[Pair]:
        """Label the *n_per_round* most uncertain unlabeled pairs.

        Returns the queried pairs. Requires at least one positive and one
        negative label so a model can be trained — raise otherwise (call
        :meth:`seed_round` first, or seed more).
        """
        usable = self.labels.without_unsure()
        pairs, y = usable.to_training_data()
        if len(set(y)) < 2:
            raise LabelingError(
                "need both a Yes and a No label before active querying; "
                "run a (larger) seed round first"
            )
        model = self.matcher.clone()
        train = extract_feature_vectors(self.candidates, self.feature_set, pairs=pairs)
        model.fit(train, y)
        probabilities = model.predict_proba(self._matrix)
        labeled = set(self.labels.pairs())
        ranked = sorted(
            (pair for pair in self.candidates if pair not in labeled),
            key=lambda pair: (abs(probabilities[pair] - 0.5), str(pair)),
        )
        queried = ranked[:n_per_round]
        self._label(queried)
        return queried

    def run(self, seed_size: int, rounds: int, n_per_round: int) -> LabeledPairs:
        """Seed + *rounds* active rounds; returns all labels gathered."""
        self.seed_round(seed_size)
        for _ in range(rounds):
            if len(self.labels) >= len(self.candidates):
                break
            try:
                self.query_round(n_per_round)
            except LabelingError:
                # all-one-class seed: fall back to more random labels
                remaining = [
                    p for p in self.candidates if p not in set(self.labels.pairs())
                ]
                self._label(remaining[:n_per_round])
        return self.labels
