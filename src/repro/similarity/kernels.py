"""Integer-id similarity kernels for interned token arrays.

The set-based measures in :mod:`repro.similarity.set_based` hash strings on
every call. These kernels compute the very same values over *interned*
token sets — sorted, duplicate-free ``array('i')``/sequence-of-int ids from
a :class:`~repro.text.intern.Vocabulary` — with merge-based intersection
(two pointers over sorted arrays, integer comparisons only).

Contracts, enforced by the parity tests in ``tests/test_kernels.py``:

* every ``*_ids`` kernel returns **bit-identical floats** to its string
  reference on the id arrays of the same token sets (the division and
  multiplication orders mirror ``set_based.py`` expression for
  expression);
* results depend only on id *consistency*, never on id values, so any
  vocabulary produces the same numbers;
* the bounded variants may stop early but only ever on branches whose
  outcome is already decided.

The module-level switch (:func:`kernels_enabled` / :func:`use_kernels`)
is how the pipeline selects between the kernel and legacy string paths;
both produce identical outputs, which is what lets the golden snapshot
and the bit-identity tests compare them pair-for-pair.

Deployment note: the per-pair merge-array measures (``jaccard_ids`` and
friends) are **not** routed anywhere. They regressed below the string
references on qgm_3 tokens (0.40-0.86x, ``benchmarks/out/kernels.json``)
because per-pair Python call overhead dominates the integer merges; the
deployed hot paths are the id-frozenset kernels below and the
chunk-level batch kernels in :mod:`repro.similarity.batch`. The merge
functions stay as parity/bench references — see ``docs/performance.md``
for the retirement decision and numbers.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import Iterator, Sequence

IntArray = Sequence[int]

# --------------------------------------------------------------------------
# kernel switch
# --------------------------------------------------------------------------

_env = os.environ.get("REPRO_KERNELS", "1").strip().lower()
_ENABLED = _env not in ("0", "false", "no", "off")


def process_kernels_default() -> bool:
    """The process-wide switch state, ignoring any ambient session.

    ``REPRO_KERNELS=0`` starts with the legacy string paths;
    :func:`use_kernels` toggles temporarily (the parity tests run both
    paths in one process this way).
    """
    return _ENABLED


def kernels_enabled() -> bool:
    """Whether the interned-id fast paths are active (default: yes).

    An ambient :class:`~repro.runtime.context.EngineSession` with
    ``kernels=True/False`` overrides the process default for its scope
    (e.g. ``python -m repro casestudy --no-kernels``); otherwise this is
    :func:`process_kernels_default`.
    """
    from ..runtime.context import current_session

    session = current_session()
    if session is not None and session.kernels is not None:
        return bool(session.kernels)
    return _ENABLED


@contextmanager
def use_kernels(enabled: bool) -> Iterator[None]:
    """Temporarily force the kernel paths on or off."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


# --------------------------------------------------------------------------
# merge-based intersection
# --------------------------------------------------------------------------


def intersect_size(a: IntArray, b: IntArray) -> int:
    """|A ∩ B| of two sorted unique id arrays (two-pointer merge)."""
    i = j = n = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            n += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return n


def intersect_size_bounded(a: IntArray, b: IntArray, need: int) -> int:
    """|A ∩ B|, or ``-1`` as soon as it provably cannot reach *need*.

    The exact size is returned whenever it is ``>= need`` (and also when
    the merge happens to finish before the bound trips); ``-1`` stands for
    "less than *need*, stopped early". Callers that only branch on
    ``size >= need`` get identical behaviour to :func:`intersect_size`.
    """
    i = j = n = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        # best case: every remaining element matches
        if n + min(la - i, lb - j) < need:
            return -1
        x, y = a[i], b[j]
        if x == y:
            n += 1
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return n if n >= need else -1


def has_overlap_at_least(a: IntArray, b: IntArray, k: int) -> bool:
    """``|A ∩ B| >= k`` with early success/failure exits."""
    if k <= 0:
        return True
    i = j = n = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        if n + min(la - i, lb - j) < k:
            return False
        x, y = a[i], b[j]
        if x == y:
            n += 1
            if n >= k:
                return True
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return False


# --------------------------------------------------------------------------
# C-speed counts over id frozensets (the blockers' verification step)
# --------------------------------------------------------------------------


def overlap_at_least(a: "frozenset[int]", b: "frozenset[int]", k: int) -> bool:
    """``|A ∩ B| >= k`` over id *frozensets*.

    The blockers verify hundreds of thousands of candidate pairs; at that
    volume CPython's C set intersection (with identity-hash small ints)
    beats a Python-level merge loop by a wide margin, and produces the
    same integer count. ``k == 1`` short-circuits through ``isdisjoint``,
    which exits on the first shared element.
    """
    if k <= 0:
        return True
    if k == 1:
        return not a.isdisjoint(b)
    return len(a & b) >= k


def intersect_count(a: "frozenset[int]", b: "frozenset[int]") -> int:
    """Exact ``|A ∩ B|`` over id frozensets (C set intersection)."""
    return len(a & b)


def jaccard_id_sets(a: "frozenset[int]", b: "frozenset[int]") -> float:
    """Jaccard over id frozensets, bit-identical to ``set_based.jaccard``.

    ``|A ∪ B| == |A| + |B| - |A ∩ B|`` for deduplicated sets, so the
    division is over the same two integers the string reference divides —
    without the two ``set()`` copies the reference makes per call.
    """
    la, lb = len(a), len(b)
    if not la and not lb:
        return 1.0
    inter = len(a & b)
    return inter / (la + lb - inter)


def dice_id_sets(a: "frozenset[int]", b: "frozenset[int]") -> float:
    """Dice over id frozensets, bit-identical to ``set_based.dice``."""
    la, lb = len(a), len(b)
    if not la and not lb:
        return 1.0
    if not la or not lb:
        return 0.0
    return 2.0 * len(a & b) / (la + lb)


def overlap_coefficient_id_sets(a: "frozenset[int]", b: "frozenset[int]") -> float:
    """Overlap coefficient over id frozensets (``set_based`` twin)."""
    la, lb = len(a), len(b)
    if not la and not lb:
        return 1.0
    if not la or not lb:
        return 0.0
    return len(a & b) / min(la, lb)


def cosine_id_sets(a: "frozenset[int]", b: "frozenset[int]") -> float:
    """Ochiai/set cosine over id frozensets (``set_based`` twin)."""
    la, lb = len(a), len(b)
    if not la and not lb:
        return 1.0
    if not la or not lb:
        return 0.0
    return len(a & b) / math.sqrt(la * lb)


overlap_size_id_sets = intersect_count

#: Id-frozenset kernels by feature-spec measure name — the deployed
#: *per-pair* shape: CPython's C set intersection over identity-hashed
#: small ints beats the string references ~2-5x at case-study token
#: counts. The chunk-level batch kernels in
#: :mod:`repro.similarity.batch` use the same arithmetic with the
#: per-pair call overhead amortized away, and are what the extraction
#: and blocker hot loops actually route through.
SET_MEASURE_SET_KERNELS = {
    "jac": jaccard_id_sets,
    "cos": cosine_id_sets,
    "dice": dice_id_sets,
    "overlap_coeff": overlap_coefficient_id_sets,
}


# --------------------------------------------------------------------------
# set measures over id arrays (expression-for-expression with set_based.py)
#
# RETIRED from routing: kept only as allocation-free parity/bench
# references. kernels.json showed this family 0.40-0.86x vs the string
# references on qgm_3 (the per-pair call + two-pointer loop overhead
# dominates), so nothing dispatches through it anymore.
# --------------------------------------------------------------------------

overlap_size_ids = intersect_size


def jaccard_ids(a: IntArray, b: IntArray) -> float:
    """|A ∩ B| / |A ∪ B|; 1.0 when both are empty."""
    la, lb = len(a), len(b)
    if not la and not lb:
        return 1.0
    inter = intersect_size(a, b)
    union = la + lb - inter
    return inter / union


def dice_ids(a: IntArray, b: IntArray) -> float:
    """2|A ∩ B| / (|A| + |B|); 1.0 when both empty, 0.0 when one is."""
    la, lb = len(a), len(b)
    if not la and not lb:
        return 1.0
    if not la or not lb:
        return 0.0
    return 2.0 * intersect_size(a, b) / (la + lb)


def overlap_coefficient_ids(a: IntArray, b: IntArray) -> float:
    """|A ∩ B| / min(|A|, |B|); 1.0 when both empty, 0.0 when one is."""
    la, lb = len(a), len(b)
    if not la and not lb:
        return 1.0
    if not la or not lb:
        return 0.0
    return intersect_size(a, b) / min(la, lb)


def cosine_ids(a: IntArray, b: IntArray) -> float:
    """Ochiai/set cosine: |A ∩ B| / sqrt(|A| * |B|)."""
    la, lb = len(a), len(b)
    if not la and not lb:
        return 1.0
    if not la or not lb:
        return 0.0
    return intersect_size(a, b) / math.sqrt(la * lb)




# --------------------------------------------------------------------------
# threshold-banded Levenshtein
# --------------------------------------------------------------------------


def levenshtein_bounded(a: str, b: str, max_dist: int) -> int:
    """Exact edit distance when ``<= max_dist``, else ``max_dist + 1``.

    The DP visits only the band ``|i - j| <= max_dist`` (any cheaper path
    stays inside it) and exits as soon as a whole row exceeds the bound,
    so rejecting distant strings costs O(``max_dist`` * len) instead of
    O(len^2). ``levenshtein_bounded(a, b, k) == min(dist(a, b), k + 1)``
    — the parity tests pin that identity against the reference DP.
    """
    if max_dist < 0:
        raise ValueError(f"max_dist must be >= 0, got {max_dist}")
    if a == b:
        return 0
    la, lb = len(a), len(b)
    cap = max_dist + 1
    if la == 0 or lb == 0:
        return min(la or lb, cap)
    if abs(la - lb) > max_dist:
        return cap
    if la < lb:
        a, b = b, a
        la, lb = lb, la
    previous = [min(j, cap) for j in range(lb + 1)]
    for i in range(1, la + 1):
        lo = max(1, i - max_dist)
        hi = min(lb, i + max_dist)
        current = [cap] * (lb + 1)
        current[0] = min(i, cap)
        ca = a[i - 1]
        for j in range(lo, hi + 1):
            cost = 0 if ca == b[j - 1] else 1
            best = previous[j - 1] + cost
            down = previous[j] + 1
            if down < best:
                best = down
            left = current[j - 1] + 1
            if left < best:
                best = left
            current[j] = best if best < cap else cap
        previous = current
        if min(previous) >= cap:
            return cap
    return min(previous[lb], cap)
