"""Character-sequence similarity measures.

Implements the edit-distance family PyMatcher generates features from:
Levenshtein distance and similarity, Jaro, Jaro-Winkler, and the
alignment scores Needleman-Wunsch (global) and Smith-Waterman (local).
All similarity variants return values in [0, 1] except the raw alignment
scores, which follow their textbook definitions.
"""

from __future__ import annotations


def levenshtein_distance(a: str, b: str) -> int:
    """Minimum number of single-character edits turning *a* into *b*."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalized edit distance; 1.0 for two empty strings."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return 0.0
    window = max(la, lb) // 2 - 1
    window = max(window, 0)
    a_matched = [False] * la
    b_matched = [False] * lb
    matches = 0
    for i, ca in enumerate(a):
        lo = max(0, i - window)
        hi = min(lb, i + window + 1)
        for j in range(lo, hi):
            if not b_matched[j] and b[j] == ca:
                a_matched[i] = b_matched[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(la):
        if a_matched[i]:
            while not b_matched[j]:
                j += 1
            if a[i] != b[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / la + matches / lb + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(a: str, b: str, prefix_weight: float = 0.1, max_prefix: int = 4) -> float:
    """Jaro-Winkler similarity: Jaro boosted by a shared prefix."""
    base = jaro(a, b)
    prefix = 0
    for ca, cb in zip(a, b):
        if ca != cb or prefix >= max_prefix:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def needleman_wunsch(
    a: str,
    b: str,
    match_score: float = 1.0,
    mismatch_score: float = -1.0,
    gap_cost: float = 1.0,
) -> float:
    """Global alignment score (Needleman-Wunsch)."""
    la, lb = len(a), len(b)
    previous = [-gap_cost * j for j in range(lb + 1)]
    for i in range(1, la + 1):
        current = [-gap_cost * i]
        for j in range(1, lb + 1):
            sub = match_score if a[i - 1] == b[j - 1] else mismatch_score
            current.append(
                max(
                    previous[j - 1] + sub,
                    previous[j] - gap_cost,
                    current[j - 1] - gap_cost,
                )
            )
        previous = current
    return previous[-1]


def smith_waterman(
    a: str,
    b: str,
    match_score: float = 1.0,
    mismatch_score: float = -1.0,
    gap_cost: float = 1.0,
) -> float:
    """Local alignment score (Smith-Waterman); >= 0 by definition."""
    la, lb = len(a), len(b)
    best = 0.0
    previous = [0.0] * (lb + 1)
    for i in range(1, la + 1):
        current = [0.0]
        for j in range(1, lb + 1):
            sub = match_score if a[i - 1] == b[j - 1] else mismatch_score
            score = max(
                0.0,
                previous[j - 1] + sub,
                previous[j] - gap_cost,
                current[j - 1] - gap_cost,
            )
            current.append(score)
            best = max(best, score)
        previous = current
    return best


def exact_match(a: str, b: str) -> float:
    """1.0 when the strings are identical, else 0.0."""
    return 1.0 if a == b else 0.0
