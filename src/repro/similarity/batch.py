"""Batch-columnar similarity kernels: score whole candidate chunks.

The per-pair merge-array kernels shipped with the interned-id substrate
turned out to be a measured performance bug: on qgm_3 tokens they are
*slower* than both the id-frozenset kernels and the plain string
references (0.40-0.86x, ``benchmarks/out/kernels.json``), because the
per-pair Python call and two-pointer loop overhead dominates the integer
merges. The fix is to change the hot-loop *shape*, not the arithmetic:
one kernel call scores an entire chunk.

Every ``*_batch`` kernel takes two parallel columns — a
:class:`~repro.runtime.columnar.TokenColumn` (CSR offsets + flat
``array('i')`` data on the wire, per-row ``frozenset[int]`` views in
memory) or any aligned sequence of id frozensets — and returns one
``array('d')`` of scores. Inside the chunk loop the measure body is
*inlined*: the per-pair cost is one C-level set intersection plus float
arithmetic, with no per-pair Python call, no per-pair allocation beyond
the intersection CPython builds natively, and the output written into a
single preallocated buffer. Benchmarked against the alternatives
(per-pair id-frozenset calls, per-pair merges, a vectorized
sort-by-key CSR intersection), this shape is the only one that beats the
id-frozenset family on qgm_3 while staying ahead on ws — see
``docs/performance.md`` for the numbers that drove the decision.

Contracts, enforced by the parity suites in ``tests/test_kernels.py``:

* every batch kernel is **bit-identical** to its string reference in
  :mod:`repro.similarity.set_based` (and hence to the per-pair id
  kernels) element for element: the division and multiplication orders
  mirror the reference expression for expression;
* a row whose either side is *missing* (``None``) scores ``nan``,
  matching the per-pair extraction loop's missing-cell handling; empty
  token sets score by the reference expressions (e.g. Jaccard of two
  empty sets is 1.0);
* results are independent of chunk order and chunk boundaries: scoring a
  permuted or re-sliced chunk permutes/re-slices the outputs and nothing
  else.

``levenshtein_bounded_batch`` applies the same shape to the banded
edit-distance DP, reusing two row buffers across the whole chunk instead
of allocating fresh rows per pair.

The blocker verification predicates (:func:`overlap_at_least_batch`,
:func:`overlap_coefficient_at_least_batch`) are the chunk twins of the
per-candidate checks in the overlap blockers; they return a
``bytearray`` keep-mask so the caller can filter an ordered candidate
list without perturbing emission order.
"""

from __future__ import annotations

import math
from array import array
from typing import Any, Sequence

from ..runtime.columnar import TokenColumn

NAN = float("nan")

#: Kernel families that are actually routed on the default path; the
#: bench and the CI guard (``tools/check_kernel_families.py``) assert
#: every family listed here beats the string references on both
#: case-study tokenizations. The per-pair merge-array family is *not*
#: deployed (see :mod:`repro.similarity.kernels`).
DEPLOYED_FAMILIES = ("set", "batch", "levenshtein")


def _sets_of(column: Any) -> Sequence:
    """Per-row set views of a column (TokenColumn or aligned sequence)."""
    if isinstance(column, TokenColumn):
        return column.sets()
    return column


def _paired(col_a: Any, col_b: Any) -> tuple[Sequence, Sequence]:
    sa, sb = _sets_of(col_a), _sets_of(col_b)
    if len(sa) != len(sb):
        raise ValueError(
            f"batch columns differ in length: {len(sa)} vs {len(sb)}"
        )
    return sa, sb


# --------------------------------------------------------------------------
# set measures, one chunk per call
# --------------------------------------------------------------------------


def jaccard_batch(col_a: Any, col_b: Any) -> "array[float]":
    """|A ∩ B| / |A ∪ B| per row; 1.0 when both empty, nan when missing."""
    sa, sb = _paired(col_a, col_b)
    out: list[float] = []
    append = out.append
    for a, b in zip(sa, sb):
        if a is None or b is None:
            append(NAN)
        else:
            la, lb = len(a), len(b)
            if la or lb:
                inter = len(a & b)
                append(inter / (la + lb - inter))
            else:
                append(1.0)
    return array("d", out)


def dice_batch(col_a: Any, col_b: Any) -> "array[float]":
    """2|A ∩ B| / (|A| + |B|) per row; 1.0 both-empty, 0.0 one-empty."""
    sa, sb = _paired(col_a, col_b)
    out: list[float] = []
    append = out.append
    for a, b in zip(sa, sb):
        if a is None or b is None:
            append(NAN)
        else:
            la, lb = len(a), len(b)
            if la and lb:
                append(2.0 * len(a & b) / (la + lb))
            else:
                append(0.0 if la or lb else 1.0)
    return array("d", out)


def cosine_batch(col_a: Any, col_b: Any) -> "array[float]":
    """Ochiai/set cosine |A ∩ B| / sqrt(|A| * |B|) per row."""
    sa, sb = _paired(col_a, col_b)
    sqrt = math.sqrt
    out: list[float] = []
    append = out.append
    for a, b in zip(sa, sb):
        if a is None or b is None:
            append(NAN)
        else:
            la, lb = len(a), len(b)
            if la and lb:
                append(len(a & b) / sqrt(la * lb))
            else:
                append(0.0 if la or lb else 1.0)
    return array("d", out)


def overlap_coefficient_batch(col_a: Any, col_b: Any) -> "array[float]":
    """|A ∩ B| / min(|A|, |B|) per row; 1.0 both-empty, 0.0 one-empty."""
    sa, sb = _paired(col_a, col_b)
    out: list[float] = []
    append = out.append
    for a, b in zip(sa, sb):
        if a is None or b is None:
            append(NAN)
        else:
            la, lb = len(a), len(b)
            if la and lb:
                append(len(a & b) / (la if la < lb else lb))
            else:
                append(0.0 if la or lb else 1.0)
    return array("d", out)


def overlap_size_batch(col_a: Any, col_b: Any) -> "array[float]":
    """|A ∩ B| per row (exact integer counts as float64; nan when missing)."""
    sa, sb = _paired(col_a, col_b)
    out: list[float] = []
    append = out.append
    for a, b in zip(sa, sb):
        if a is None or b is None:
            append(NAN)
        else:
            append(float(len(a & b)))
    return array("d", out)


#: Batch kernels by the short measure names used in feature specs —
#: the routing table :mod:`repro.features.vectors` dispatches through.
BATCH_KERNELS = {
    "jac": jaccard_batch,
    "cos": cosine_batch,
    "dice": dice_batch,
    "overlap_coeff": overlap_coefficient_batch,
}


def score_batch(measure: str, col_a: Any, col_b: Any) -> "array[float]":
    """Score one chunk with the named set measure (``float[]`` out)."""
    try:
        kernel = BATCH_KERNELS[measure]
    except KeyError:
        raise KeyError(
            f"no batch kernel for measure {measure!r}; "
            f"known: {sorted(BATCH_KERNELS)}"
        ) from None
    return kernel(col_a, col_b)


# --------------------------------------------------------------------------
# blocker verification predicates (keep-masks over ordered candidates)
# --------------------------------------------------------------------------


def overlap_at_least_batch(col_a: Any, col_b: Any, k: int) -> bytearray:
    """``|A ∩ B| >= k`` per row, as a 0/1 keep-mask.

    Chunk twin of :func:`repro.similarity.kernels.overlap_at_least`:
    same ``k <= 0`` short-circuit, same ``isdisjoint`` fast path at
    ``k == 1``, same exact count comparison otherwise — so every keep
    decision matches the per-pair predicate bit for bit.
    """
    sa, sb = _paired(col_a, col_b)
    n = len(sa)
    keep = bytearray(n)
    if k <= 0:
        for i in range(n):
            keep[i] = 1
        return keep
    if k == 1:
        for i, a in enumerate(sa):
            if not a.isdisjoint(sb[i]):
                keep[i] = 1
        return keep
    for i, a in enumerate(sa):
        b = sb[i]
        if len(a & b) >= k:
            keep[i] = 1
    return keep


def overlap_coefficient_at_least_batch(
    col_a: Any, col_b: Any, threshold: float
) -> bytearray:
    """Coefficient-threshold keep-mask for the overlap-coefficient blocker.

    Mirrors the per-candidate verification both blocker paths perform:
    the size-aware count bound ``ceil(threshold * min(|A|, |B|) - 1e-9)``
    first, then the surviving ``inter / min(|A|, |B|)`` coefficient
    against ``threshold - 1e-12`` — the same two comparisons over the
    same integers, so the kept candidates are identical.
    """
    sa, sb = _paired(col_a, col_b)
    ceil = math.ceil
    keep = bytearray(len(sa))
    eps = threshold - 1e-12
    for i, a in enumerate(sa):
        b = sb[i]
        la, lb = len(a), len(b)
        smaller = la if la < lb else lb
        if smaller == 0:
            # blockers drop empty token sets before probing, but mirror
            # the reference coefficient anyway: both-empty 1.0, one-empty 0.0
            if la == lb and 1.0 >= eps:
                keep[i] = 1
            continue
        inter = len(a & b)
        if inter < ceil(threshold * smaller - 1e-9):
            continue
        if inter / smaller >= eps:
            keep[i] = 1
    return keep


# --------------------------------------------------------------------------
# threshold-banded Levenshtein over string chunks
# --------------------------------------------------------------------------


def levenshtein_bounded_batch(
    col_a: Sequence[str], col_b: Sequence[str], max_dist: int
) -> "array[int]":
    """``min(dist(a, b), max_dist + 1)`` per row, buffers reused chunk-wide.

    Value-identical to mapping
    :func:`repro.similarity.kernels.levenshtein_bounded` over the rows
    (the parity tests pin that), but the two DP rows are allocated once
    per chunk instead of once per DP row per pair. Cells outside the
    ``|i - j| <= max_dist`` band are re-capped explicitly where the next
    row can read them, which is what makes buffer reuse safe.
    """
    if max_dist < 0:
        raise ValueError(f"max_dist must be >= 0, got {max_dist}")
    n = len(col_a)
    if len(col_b) != n:
        raise ValueError(f"batch columns differ in length: {n} vs {len(col_b)}")
    cap = max_dist + 1
    out = array("i", [0]) * n  # preallocated; array('i') matches the id typecode
    previous: list[int] = []
    current: list[int] = []
    for idx in range(n):
        a, b = col_a[idx], col_b[idx]
        if a == b:
            out[idx] = 0
            continue
        la, lb = len(a), len(b)
        if la == 0 or lb == 0:
            out[idx] = min(la or lb, cap)
            continue
        if abs(la - lb) > max_dist:
            out[idx] = cap
            continue
        if la < lb:
            a, b = b, a
            la, lb = lb, la
        if len(previous) <= lb:
            grow = lb + 1 - len(previous)
            previous.extend([0] * grow)
            current.extend([0] * grow)
        for j in range(lb + 1):
            previous[j] = j if j < cap else cap
        result = cap
        for i in range(1, la + 1):
            lo = i - max_dist
            if lo < 1:
                lo = 1
            hi = i + max_dist
            if hi > lb:
                hi = lb
            head = i if i < cap else cap
            current[0] = head
            if lo > 1:
                current[lo - 1] = cap
            row_min = head
            ca = a[i - 1]
            for j in range(lo, hi + 1):
                best = previous[j - 1] + (0 if ca == b[j - 1] else 1)
                down = previous[j] + 1
                if down < best:
                    best = down
                left = current[j - 1] + 1
                if left < best:
                    best = left
                if best > cap:
                    best = cap
                current[j] = best
                if best < row_min:
                    row_min = best
            if hi < lb:
                # the band widens by at most one next row; the fresh-row
                # semantics need that cell to read as "over the bound"
                current[hi + 1] = cap
            previous, current = current, previous
            if row_min >= cap:
                break
        else:
            tail = previous[lb]
            result = tail if tail < cap else cap
        out[idx] = result
    return out
