"""String, set, hybrid and numeric similarity measures.

:mod:`~repro.similarity.kernels` holds the interned-id twins of the
set-based measures plus a threshold-banded Levenshtein;
:mod:`~repro.similarity.batch` holds the chunk-level batch-columnar
kernels the hot loops route through. All of them return bit-identical
values to the string references here.
"""

from . import batch, kernels
from .extra import TfIdfCosine, affine_gap, bag_distance, bag_similarity
from .hybrid import SoftTfIdf, monge_elkan
from .numeric import (
    absolute_difference,
    exact_match,
    extract_year,
    relative_difference,
    year_gap,
    years_within,
)
from .sequence import (
    jaro,
    jaro_winkler,
    levenshtein_distance,
    levenshtein_similarity,
    needleman_wunsch,
    smith_waterman,
)
from .set_based import (
    cosine_bag,
    cosine_set,
    dice,
    jaccard,
    overlap_coefficient,
    overlap_size,
)

__all__ = [
    "SoftTfIdf",
    "TfIdfCosine",
    "affine_gap",
    "bag_distance",
    "bag_similarity",
    "absolute_difference",
    "batch",
    "cosine_bag",
    "cosine_set",
    "dice",
    "exact_match",
    "extract_year",
    "jaccard",
    "jaro",
    "jaro_winkler",
    "kernels",
    "levenshtein_distance",
    "levenshtein_similarity",
    "monge_elkan",
    "needleman_wunsch",
    "overlap_coefficient",
    "overlap_size",
    "relative_difference",
    "smith_waterman",
    "year_gap",
    "years_within",
]
