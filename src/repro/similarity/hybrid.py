"""Hybrid similarity measures combining token- and character-level signals.

Monge-Elkan and soft TF-IDF align tokens of one string against the best
matching tokens of the other using a secondary character-level similarity —
they tolerate both word reordering and per-word typos, which makes them
strong features for project titles.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Callable, Sequence

from .sequence import jaro_winkler

InnerSim = Callable[[str, str], float]


def monge_elkan(
    a: Sequence[str],
    b: Sequence[str],
    inner: InnerSim = jaro_winkler,
) -> float:
    """Average best-match score of each token of *a* against *b*.

    Asymmetric by definition (PyMatcher follows the same convention);
    1.0 when both token lists are empty, 0.0 when exactly one is.
    """
    if not a and not b:
        return 1.0
    if not a or not b:
        return 0.0
    total = 0.0
    for ta in a:
        total += max(inner(ta, tb) for tb in b)
    return total / len(a)


class SoftTfIdf:
    """Soft TF-IDF similarity with a corpus-trained IDF table.

    The corpus is a list of token lists (e.g. every award title in both
    input tables). Tokens of *a* and *b* are soft-matched with *inner*
    similarity above *threshold*, and matched pairs contribute their TF-IDF
    weights scaled by the similarity.
    """

    def __init__(
        self,
        corpus: Sequence[Sequence[str]],
        inner: InnerSim = jaro_winkler,
        threshold: float = 0.9,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0,1], got {threshold}")
        self._inner = inner
        self._threshold = threshold
        self._num_docs = max(len(corpus), 1)
        doc_freq: Counter[str] = Counter()
        for doc in corpus:
            doc_freq.update(set(doc))
        self._doc_freq = doc_freq

    def _idf(self, token: str) -> float:
        return math.log(self._num_docs / (1 + self._doc_freq.get(token, 0))) + 1.0

    def _weights(self, tokens: Sequence[str]) -> dict[str, float]:
        counts = Counter(tokens)
        raw = {t: counts[t] * self._idf(t) for t in counts}
        norm = math.sqrt(sum(w * w for w in raw.values()))
        if norm == 0:
            return {t: 0.0 for t in raw}
        return {t: w / norm for t, w in raw.items()}

    def score(self, a: Sequence[str], b: Sequence[str]) -> float:
        """Similarity in [0, 1]; 1.0 for two empty token lists."""
        if not a and not b:
            return 1.0
        if not a or not b:
            return 0.0
        wa = self._weights(a)
        wb = self._weights(b)
        total = 0.0
        for ta, weight_a in wa.items():
            best_token, best_sim = None, 0.0
            for tb in wb:
                sim = self._inner(ta, tb)
                if sim > best_sim:
                    best_token, best_sim = tb, sim
            if best_token is not None and best_sim >= self._threshold:
                total += weight_a * wb[best_token] * best_sim
        return min(total, 1.0)
