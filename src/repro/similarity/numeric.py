"""Numeric and date-valued similarity measures.

PyMatcher's generated numeric features are exact match, absolute difference
and relative difference; the case study additionally compares transaction
dates against project start/end dates ("within a difference of a few
years"), supported here by :func:`year_gap`.
"""

from __future__ import annotations

import re
from typing import Any

from ..table.column import is_missing

_YEAR_RE = re.compile(r"(?<!\d)((?:19|20)\d{2})(?!\d)")


def exact_match(a: Any, b: Any) -> float:
    """1.0 when both present and equal, 0.0 otherwise."""
    if is_missing(a) or is_missing(b):
        return 0.0
    return 1.0 if a == b else 0.0


def absolute_difference(a: float, b: float) -> float:
    """|a - b| (unnormalised)."""
    return abs(float(a) - float(b))


def relative_difference(a: float, b: float) -> float:
    """|a - b| / max(|a|, |b|); 0.0 when both are zero."""
    a, b = float(a), float(b)
    denom = max(abs(a), abs(b))
    if denom == 0:
        return 0.0
    return abs(a - b) / denom


def extract_year(value: Any) -> int | None:
    """Pull the first plausible 4-digit year out of a date-like value.

    Handles ISO dates (``2008-10-01``), US dates (``10/1/08`` has no 4-digit
    year and yields ``None``) and bare year integers.
    """
    if is_missing(value):
        return None
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        year = int(value)
        return year if 1900 <= year <= 2099 else None
    match = _YEAR_RE.search(str(value))
    return int(match.group(1)) if match else None


def year_gap(a: Any, b: Any) -> float | None:
    """Absolute gap in years between two date-like values; ``None`` when a
    year cannot be extracted from either side."""
    ya, yb = extract_year(a), extract_year(b)
    if ya is None or yb is None:
        return None
    return float(abs(ya - yb))


def years_within(a: Any, b: Any, max_gap: int = 2) -> bool:
    """The D3 label-fix predicate: transaction dates within a few years."""
    gap = year_gap(a, b)
    return gap is not None and gap <= max_gap
