"""Token-set similarity measures.

These operate on token lists produced by :mod:`repro.text.tokenizers`.
Jaccard, Dice and overlap-coefficient use set semantics; cosine is offered
both in set (Ochiai) and bag (term-frequency) flavours. The overlap
measures back the Section-7 blockers.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence


def jaccard(a: Sequence[str], b: Sequence[str]) -> float:
    """|A ∩ B| / |A ∪ B| over token *sets*; 1.0 when both are empty."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    union = len(sa | sb)
    return len(sa & sb) / union


def dice(a: Sequence[str], b: Sequence[str]) -> float:
    """2|A ∩ B| / (|A| + |B|) over token sets; 1.0 when both are empty."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return 2.0 * len(sa & sb) / (len(sa) + len(sb))


def overlap_size(a: Sequence[str], b: Sequence[str]) -> int:
    """|A ∩ B| over token sets — the overlap blocker's measure."""
    return len(set(a) & set(b))


def overlap_coefficient(a: Sequence[str], b: Sequence[str]) -> float:
    """|A ∩ B| / min(|A|, |B|); 1.0 when both empty, 0.0 when one is.

    This is the measure behind the Section-7 overlap-coefficient blocker,
    chosen because it scores short titles fairly (a 2-token title can still
    reach 1.0 where a raw-overlap threshold of 3 would drop it).
    """
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / min(len(sa), len(sb))


def cosine_set(a: Sequence[str], b: Sequence[str]) -> float:
    """Ochiai/set cosine: |A ∩ B| / sqrt(|A| * |B|)."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / math.sqrt(len(sa) * len(sb))


def cosine_bag(a: Sequence[str], b: Sequence[str]) -> float:
    """Term-frequency cosine over token *bags*."""
    ca, cb = Counter(a), Counter(b)
    if not ca and not cb:
        return 1.0
    if not ca or not cb:
        return 0.0
    dot = sum(ca[t] * cb[t] for t in ca.keys() & cb.keys())
    norm_a = math.sqrt(sum(v * v for v in ca.values()))
    norm_b = math.sqrt(sum(v * v for v in cb.values()))
    # clamp: float rounding can push identical bags a hair above 1.0
    return min(dot / (norm_a * norm_b), 1.0)
