"""Additional similarity measures rounding out the toolkit.

These are part of the standard EM-toolkit repertoire (py_stringmatching
ships all three) and are useful when tuning features beyond the generated
defaults:

* :func:`affine_gap` — alignment score where opening a gap costs more
  than extending it (long insertions, e.g. a parenthetical in one title,
  are punished sub-linearly);
* :func:`bag_distance` — a cheap upper bound on edit distance via
  multiset differences;
* :class:`TfIdfCosine` — exact-token TF-IDF cosine over a corpus (the
  non-soft counterpart of :class:`repro.similarity.hybrid.SoftTfIdf`).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Sequence


def affine_gap(
    a: str,
    b: str,
    match_score: float = 1.0,
    mismatch_score: float = -0.5,
    gap_open: float = 1.0,
    gap_extend: float = 0.25,
) -> float:
    """Affine-gap global alignment score (Gotoh's algorithm)."""
    la, lb = len(a), len(b)
    if la == 0 and lb == 0:
        return 0.0
    neg = float("-inf")
    # M: ends in a match/mismatch; X: gap in b (consume a); Y: gap in a
    m_prev = [0.0] + [neg] * lb
    x_prev = [neg] * (lb + 1)
    y_prev = [neg] + [-gap_open - gap_extend * j for j in range(lb)]
    for i in range(1, la + 1):
        m_cur = [neg] * (lb + 1)
        x_cur = [neg] * (lb + 1)
        y_cur = [neg] * (lb + 1)
        x_cur[0] = -gap_open - gap_extend * (i - 1)
        for j in range(1, lb + 1):
            sub = match_score if a[i - 1] == b[j - 1] else mismatch_score
            m_cur[j] = max(m_prev[j - 1], x_prev[j - 1], y_prev[j - 1]) + sub
            x_cur[j] = max(m_prev[j] - gap_open, x_prev[j] - gap_extend)
            y_cur[j] = max(m_cur[j - 1] - gap_open, y_cur[j - 1] - gap_extend)
        m_prev, x_prev, y_prev = m_cur, x_cur, y_cur
    return max(m_prev[lb], x_prev[lb], y_prev[lb])


def bag_distance(a: str, b: str) -> int:
    """Bag distance: max(|bag(a) − bag(b)|, |bag(b) − bag(a)|).

    A cheap lower bound on Levenshtein distance (Bartolini, Ciaccia &
    Patella 2002), computable in linear time — useful to prune expensive
    edit-distance computations: if the bag distance already exceeds a
    threshold, the edit distance must too.
    """
    ca, cb = Counter(a), Counter(b)
    only_a = sum((ca - cb).values())
    only_b = sum((cb - ca).values())
    return max(only_a, only_b)


def bag_similarity(a: str, b: str) -> float:
    """1 - normalized bag distance (same normalisation as lev_sim)."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return 1.0 - bag_distance(a, b) / longest


class TfIdfCosine:
    """TF-IDF cosine over exact tokens, with a corpus-trained IDF table."""

    def __init__(self, corpus: Sequence[Sequence[str]]) -> None:
        self._num_docs = max(len(corpus), 1)
        doc_freq: Counter[str] = Counter()
        for doc in corpus:
            doc_freq.update(set(doc))
        self._doc_freq = doc_freq

    def _weights(self, tokens: Sequence[str]) -> dict[str, float]:
        counts = Counter(tokens)
        return {
            t: counts[t] * (math.log(self._num_docs / (1 + self._doc_freq.get(t, 0))) + 1.0)
            for t in counts
        }

    def score(self, a: Sequence[str], b: Sequence[str]) -> float:
        """Cosine of the TF-IDF vectors; 1.0 for two empty token lists."""
        if not a and not b:
            return 1.0
        if not a or not b:
            return 0.0
        wa, wb = self._weights(a), self._weights(b)
        dot = sum(wa[t] * wb[t] for t in wa.keys() & wb.keys())
        norm_a = math.sqrt(sum(w * w for w in wa.values()))
        norm_b = math.sqrt(sum(w * w for w in wb.values()))
        if norm_a == 0 or norm_b == 0:
            return 0.0
        return min(dot / (norm_a * norm_b), 1.0)
