"""``python -m repro trace`` — summarize traces, diff manifests —
and ``python -m repro bench history`` — summarize the benchmark trend log.

Sub-commands:

``trace summary TRACE``
    print a top-N hotspot table (aggregated by stage name, self-time vs
    total-time) and a text flamegraph of the stage tree. Accepts either a
    JSONL trace or a :class:`RunManifest` JSON (e.g. one produced by a
    session-driven ``casestudy --manifest`` run) — the manifest's
    flattened stage paths are folded back into a tree;
``trace top TRACE``
    rank individual span *paths* by self-time (where ``summary``
    aggregates by name), then print the per-worker utilization table
    built from executor chunk records — busy wall seconds, worker-side
    CPU seconds, peak RSS and token-cache hit rates per worker process.
    ``--folded`` emits folded stacks (``a;b;c <self-time-µs>``) for
    standard flamegraph tools instead;
``trace diff OLD NEW``
    load two run manifests and print stage-by-stage count and timing
    deltas; with ``--strict-counts`` exit non-zero when any headline
    count field differs (timing deltas are always report-only);
``bench history``
    one line per recorded benchmark run in ``benchmarks/history.jsonl``
    (timestamp, git sha, headline metrics), filterable by benchmark and
    metric.

The trace commands read with ``strict=False``: a service killed
mid-write leaves a truncated trailing line, and inspection tooling
should show the intact prefix instead of refusing the file.
"""

from __future__ import annotations

import json
import sys
from datetime import datetime, timezone
from pathlib import Path

from ..runtime.instrument import StageStats, merge_siblings
from .manifest import RunManifest, diff_manifests, read_history
from .trace import iter_spans, load_trace


def hotspots(root: StageStats) -> list[dict[str, float]]:
    """Aggregate a stage tree by stage name, sorted by self-time.

    ``total`` is the summed wall time of all same-named stages, ``self``
    that total minus time attributed to their children (a stage calling
    only other stages has ~zero self-time), ``calls`` the occurrence count.
    """
    by_name: dict[str, dict[str, float]] = {}

    def walk(stats: StageStats, is_root: bool) -> None:
        if not is_root:
            entry = by_name.setdefault(
                stats.name, {"name": stats.name, "total": 0.0, "self": 0.0, "calls": 0}
            )
            entry["total"] += stats.seconds
            entry["self"] += stats.seconds - sum(c.seconds for c in stats.children)
            entry["calls"] += 1
        for child in stats.children:
            walk(child, False)

    walk(root, True)
    return sorted(by_name.values(), key=lambda e: (-e["self"], e["name"]))


def render_hotspots(root: StageStats, top: int = 15) -> str:
    """The hotspot table of a stage tree."""
    rows = hotspots(root)
    grand_total = sum(c.seconds for c in root.children) or 1.0
    lines = [
        f"hotspots for {root.name!r} "
        f"({sum(c.seconds for c in root.children):.3f}s total)",
        f"{'stage':<32} {'self':>9} {'total':>9} {'calls':>6} {'self%':>6}",
    ]
    for entry in rows[:top]:
        lines.append(
            f"{entry['name']:<32} {entry['self']:>8.3f}s {entry['total']:>8.3f}s "
            f"{entry['calls']:>6.0f} {100 * entry['self'] / grand_total:>5.1f}%"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more stage name(s)")
    return "\n".join(lines)


def render_flamegraph(root: StageStats, width: int = 40) -> str:
    """An indented text flamegraph: one bar per (merged) stage node.

    Bars are proportional to each stage's share of the root's total;
    repeated same-name siblings merge into one ``xN`` bar, exactly like
    :class:`~repro.runtime.instrument.StageReport` lines.
    """
    total = sum(c.seconds for c in root.children)
    lines = [f"{root.name}  {total:.3f}s"]
    if total <= 0:
        total = 1.0

    def walk(stats: StageStats, occurrences: int, depth: int) -> None:
        bar = "#" * max(1, round(width * stats.seconds / total))
        name = stats.name if occurrences == 1 else f"{stats.name} x{occurrences}"
        lines.append(f"{'  ' * depth}{bar} {name} {stats.seconds:.3f}s")
        for child, n in merge_siblings(stats.children):
            walk(child, n, depth + 1)

    for child, n in merge_siblings(root.children):
        walk(child, n, 1)
    return "\n".join(lines)


def manifest_stage_tree(manifest: RunManifest) -> StageStats:
    """Rebuild a stage tree from a manifest's flattened ``a/b/c`` paths.

    Repeated paths were aggregated at manifest time (summed seconds,
    ``xN`` occurrences), so each path becomes one node; missing
    intermediate paths (possible in hand-edited manifests) materialize
    as zero-second nodes.
    """
    root = StageStats(manifest.name)
    nodes: dict[str, StageStats] = {}

    def node_for(path: str) -> StageStats:
        if path in nodes:
            return nodes[path]
        head, _, leaf = path.rpartition("/")
        parent = node_for(head) if head else root
        nodes[path] = parent.child(leaf)
        return nodes[path]

    for path, record in sorted(manifest.stages.items()):
        stats = node_for(path)
        stats.seconds += float(record.get("seconds", 0.0))
        for key, value in record.get("counters", {}).items():
            stats.count(key, value)
    return root


def _load_stage_tree(path: str) -> StageStats:
    """A stage tree from *path*: a RunManifest JSON or a JSONL trace.

    A manifest is one JSON object spanning the file; a trace is one JSON
    event per line — so whole-file parsing disambiguates them.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        data = None
    if isinstance(data, dict) and "name" in data and "stages" in data:
        return manifest_stage_tree(RunManifest.from_dict(data))
    # Non-strict: inspection tooling reads the intact prefix of a trace
    # whose writer was killed mid-line, warning instead of refusing.
    return load_trace(path, strict=False)


def span_self_times(root: StageStats) -> list[dict]:
    """Every span path with its self-time, chunk and resource detail.

    Unlike :func:`hotspots` (which pools same-named stages wherever they
    occur), each entry here is one *path* through the tree — so two
    ``tokenize`` stages under different parents rank separately. Entries
    carry the span's pooled chunk totals (worker CPU seconds, peak RSS,
    cache hits/misses) and its ``resources`` record when present.
    """
    entries = []
    for path, stats in iter_spans(root):
        if len(path) == 1:  # the untimed root
            continue
        child_seconds = sum(c.seconds for c in stats.children)
        entry = {
            "path": "/".join(path[1:]),
            "self": stats.seconds - child_seconds,
            "total": stats.seconds,
            "chunks": len(stats.chunks),
            "chunk_cpu": sum(c.cpu_seconds for c in stats.chunks),
            "chunk_peak_rss": max(
                (c.peak_rss_bytes for c in stats.chunks), default=0
            ),
            "cache_hits": sum(c.cache_hits for c in stats.chunks),
            "cache_misses": sum(c.cache_misses for c in stats.chunks),
            "resources": stats.resources,
        }
        entries.append(entry)
    entries.sort(key=lambda e: (-e["self"], e["path"]))
    return entries


def worker_utilization(root: StageStats) -> list[dict]:
    """Per-worker totals pooled from every chunk record in the tree.

    One row per worker pid: chunks run, items processed, busy wall
    seconds, worker-side CPU seconds, the worker's peak RSS (max across
    its chunks — ``ru_maxrss`` is a lifetime high-water mark) and its
    token-cache hit/miss totals. Sorted by busy time, busiest first.
    """
    by_worker: dict[int, dict] = {}
    for _, stats in iter_spans(root):
        for chunk in stats.chunks:
            row = by_worker.setdefault(
                chunk.worker,
                {"worker": chunk.worker, "chunks": 0, "items": 0,
                 "busy": 0.0, "cpu": 0.0, "peak_rss": 0,
                 "cache_hits": 0, "cache_misses": 0},
            )
            row["chunks"] += 1
            row["items"] += chunk.items
            row["busy"] += chunk.seconds
            row["cpu"] += chunk.cpu_seconds
            row["peak_rss"] = max(row["peak_rss"], chunk.peak_rss_bytes)
            row["cache_hits"] += chunk.cache_hits
            row["cache_misses"] += chunk.cache_misses
    return sorted(by_worker.values(), key=lambda r: (-r["busy"], r["worker"]))


def _mb(size_bytes: float) -> str:
    return f"{size_bytes / (1024 * 1024):.1f}M" if size_bytes else "-"


def render_top(root: StageStats, top: int = 15) -> str:
    """The ``trace top`` report: span ranking + worker utilization."""
    entries = span_self_times(root)
    total = sum(c.seconds for c in root.children) or 1.0
    lines = [
        f"top spans for {root.name!r} by self-time "
        f"({sum(c.seconds for c in root.children):.3f}s total)",
        f"{'span':<44} {'self':>9} {'total':>9} {'self%':>6} "
        f"{'wk-cpu':>8} {'wk-rss':>8}",
    ]
    for entry in entries[:top]:
        cpu = f"{entry['chunk_cpu']:.3f}s" if entry["chunks"] else "-"
        lines.append(
            f"{entry['path']:<44} {entry['self']:>8.3f}s "
            f"{entry['total']:>8.3f}s {100 * entry['self'] / total:>5.1f}% "
            f"{cpu:>8} {_mb(entry['chunk_peak_rss']):>8}"
        )
    if len(entries) > top:
        lines.append(f"... {len(entries) - top} more span(s)")
    workers = worker_utilization(root)
    lines.append("")
    if not workers:
        lines.append("no executor chunks recorded (nothing ran through a pool)")
        return "\n".join(lines)
    lines.append(
        f"{'worker':<8} {'chunks':>6} {'items':>8} {'busy':>9} {'cpu':>9} "
        f"{'util%':>6} {'peak rss':>9} {'cache hit%':>10}"
    )
    for row in workers:
        util = 100 * row["cpu"] / row["busy"] if row["busy"] else 0.0
        lookups = row["cache_hits"] + row["cache_misses"]
        hit_rate = f"{100 * row['cache_hits'] / lookups:.1f}%" if lookups else "-"
        lines.append(
            f"{row['worker']:<8} {row['chunks']:>6} {row['items']:>8} "
            f"{row['busy']:>8.3f}s {row['cpu']:>8.3f}s {util:>5.1f}% "
            f"{_mb(row['peak_rss']):>9} {hit_rate:>10}"
        )
    return "\n".join(lines)


def folded_stacks(root: StageStats) -> str:
    """Folded-stack lines (``a;b;c <self-time-µs>``) for flamegraph tools.

    One line per span path with a positive self-time, weights in integer
    microseconds — the input format of Brendan Gregg's ``flamegraph.pl``
    and of speedscope's "folded" importer.
    """
    lines = []
    for path, stats in iter_spans(root):
        self_seconds = stats.seconds - sum(c.seconds for c in stats.children)
        micros = round(self_seconds * 1_000_000)
        if micros > 0:
            lines.append(";".join(path) + f" {micros}")
    return "\n".join(lines)


def cmd_trace_summary(trace_path: str, top: int = 15) -> int:
    """Handler for ``python -m repro trace summary``."""
    root = _load_stage_tree(trace_path)
    print(render_hotspots(root, top=top))
    print()
    print(render_flamegraph(root))
    return 0


def cmd_trace_top(trace_path: str, top: int = 15, folded: bool = False) -> int:
    """Handler for ``python -m repro trace top``."""
    root = _load_stage_tree(trace_path)
    text = folded_stacks(root) if folded else render_top(root, top=top)
    try:
        print(text)
    except BrokenPipeError:  # e.g. `trace top ... | head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def cmd_bench_history(
    history_path: str,
    benchmark: str | None = None,
    metric: str | None = None,
    limit: int = 20,
) -> int:
    """Handler for ``python -m repro bench history``."""
    records = read_history(history_path)
    if benchmark is not None:
        records = [r for r in records if r.get("benchmark") == benchmark]
    if not records:
        print(f"no history records in {history_path}"
              + (f" for benchmark {benchmark!r}" if benchmark else ""))
        return 0
    shown = records[-limit:]
    print(f"{len(records)} record(s) in {history_path}; showing last {len(shown)}")
    for record in shown:
        ts = record.get("timestamp")
        when = (
            datetime.fromtimestamp(ts, tz=timezone.utc).strftime("%Y-%m-%d %H:%M")
            if isinstance(ts, (int, float))
            else "unknown-time    "
        )
        sha = (record.get("git_sha") or "-")[:10]
        data = record.get("data", {})
        if metric is not None:
            names = [m.strip() for m in metric.split(",") if m.strip()]
            detail = " ".join(f"{m}={data.get(m, '-')}" for m in names)
        else:
            numeric = [
                f"{k}={v:g}" for k, v in sorted(data.items())
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            detail = " ".join(numeric[:4]) + (" ..." if len(numeric) > 4 else "")
        print(f"{when}  {sha:>10}  {record.get('benchmark', '?'):<24} {detail}")
    return 0


def cmd_trace_diff(old_path: str, new_path: str, strict_counts: bool = False) -> int:
    """Handler for ``python -m repro trace diff``."""
    diff = diff_manifests(RunManifest.load(old_path), RunManifest.load(new_path))
    print(diff.render())
    if strict_counts and not diff.counts_match:
        return 1
    return 0
