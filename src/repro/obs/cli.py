"""``python -m repro trace`` — summarize traces, diff manifests.

Two sub-commands:

``trace summary TRACE``
    print a top-N hotspot table (aggregated by stage name, self-time vs
    total-time) and a text flamegraph of the stage tree. Accepts either a
    JSONL trace or a :class:`RunManifest` JSON (e.g. one produced by a
    session-driven ``casestudy --manifest`` run) — the manifest's
    flattened stage paths are folded back into a tree;
``trace diff OLD NEW``
    load two run manifests and print stage-by-stage count and timing
    deltas; with ``--strict-counts`` exit non-zero when any headline
    count field differs (timing deltas are always report-only).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..runtime.instrument import StageStats, merge_siblings
from .manifest import RunManifest, diff_manifests
from .trace import load_trace


def hotspots(root: StageStats) -> list[dict[str, float]]:
    """Aggregate a stage tree by stage name, sorted by self-time.

    ``total`` is the summed wall time of all same-named stages, ``self``
    that total minus time attributed to their children (a stage calling
    only other stages has ~zero self-time), ``calls`` the occurrence count.
    """
    by_name: dict[str, dict[str, float]] = {}

    def walk(stats: StageStats, is_root: bool) -> None:
        if not is_root:
            entry = by_name.setdefault(
                stats.name, {"name": stats.name, "total": 0.0, "self": 0.0, "calls": 0}
            )
            entry["total"] += stats.seconds
            entry["self"] += stats.seconds - sum(c.seconds for c in stats.children)
            entry["calls"] += 1
        for child in stats.children:
            walk(child, False)

    walk(root, True)
    return sorted(by_name.values(), key=lambda e: (-e["self"], e["name"]))


def render_hotspots(root: StageStats, top: int = 15) -> str:
    """The hotspot table of a stage tree."""
    rows = hotspots(root)
    grand_total = sum(c.seconds for c in root.children) or 1.0
    lines = [
        f"hotspots for {root.name!r} "
        f"({sum(c.seconds for c in root.children):.3f}s total)",
        f"{'stage':<32} {'self':>9} {'total':>9} {'calls':>6} {'self%':>6}",
    ]
    for entry in rows[:top]:
        lines.append(
            f"{entry['name']:<32} {entry['self']:>8.3f}s {entry['total']:>8.3f}s "
            f"{entry['calls']:>6.0f} {100 * entry['self'] / grand_total:>5.1f}%"
        )
    if len(rows) > top:
        lines.append(f"... {len(rows) - top} more stage name(s)")
    return "\n".join(lines)


def render_flamegraph(root: StageStats, width: int = 40) -> str:
    """An indented text flamegraph: one bar per (merged) stage node.

    Bars are proportional to each stage's share of the root's total;
    repeated same-name siblings merge into one ``xN`` bar, exactly like
    :class:`~repro.runtime.instrument.StageReport` lines.
    """
    total = sum(c.seconds for c in root.children)
    lines = [f"{root.name}  {total:.3f}s"]
    if total <= 0:
        total = 1.0

    def walk(stats: StageStats, occurrences: int, depth: int) -> None:
        bar = "#" * max(1, round(width * stats.seconds / total))
        name = stats.name if occurrences == 1 else f"{stats.name} x{occurrences}"
        lines.append(f"{'  ' * depth}{bar} {name} {stats.seconds:.3f}s")
        for child, n in merge_siblings(stats.children):
            walk(child, n, depth + 1)

    for child, n in merge_siblings(root.children):
        walk(child, n, 1)
    return "\n".join(lines)


def manifest_stage_tree(manifest: RunManifest) -> StageStats:
    """Rebuild a stage tree from a manifest's flattened ``a/b/c`` paths.

    Repeated paths were aggregated at manifest time (summed seconds,
    ``xN`` occurrences), so each path becomes one node; missing
    intermediate paths (possible in hand-edited manifests) materialize
    as zero-second nodes.
    """
    root = StageStats(manifest.name)
    nodes: dict[str, StageStats] = {}

    def node_for(path: str) -> StageStats:
        if path in nodes:
            return nodes[path]
        head, _, leaf = path.rpartition("/")
        parent = node_for(head) if head else root
        nodes[path] = parent.child(leaf)
        return nodes[path]

    for path, record in sorted(manifest.stages.items()):
        stats = node_for(path)
        stats.seconds += float(record.get("seconds", 0.0))
        for key, value in record.get("counters", {}).items():
            stats.count(key, value)
    return root


def _load_stage_tree(path: str) -> StageStats:
    """A stage tree from *path*: a RunManifest JSON or a JSONL trace.

    A manifest is one JSON object spanning the file; a trace is one JSON
    event per line — so whole-file parsing disambiguates them.
    """
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        data = None
    if isinstance(data, dict) and "name" in data and "stages" in data:
        return manifest_stage_tree(RunManifest.from_dict(data))
    return load_trace(path)


def cmd_trace_summary(trace_path: str, top: int = 15) -> int:
    """Handler for ``python -m repro trace summary``."""
    root = _load_stage_tree(trace_path)
    print(render_hotspots(root, top=top))
    print()
    print(render_flamegraph(root))
    return 0


def cmd_trace_diff(old_path: str, new_path: str, strict_counts: bool = False) -> int:
    """Handler for ``python -m repro trace diff``."""
    diff = diff_manifests(RunManifest.load(old_path), RunManifest.load(new_path))
    print(diff.render())
    if strict_counts and not diff.counts_match:
        return 1
    return 0
