"""Process resource telemetry: per-stage deltas and a background sampler.

The case study's lesson is that end-to-end EM cost hides in unexpected
stages — and not just wall-clock cost: the paper's team also fought
memory blow-ups they could only observe by watching ``top``. This module
gives the stage tree (and the serving loop) the same numbers as first
class telemetry:

* :class:`ResourceSampler` — a cheap snapshot source reading
  ``resource.getrusage`` (CPU user/sys seconds, peak RSS) and
  ``/proc/self/statm`` (current RSS; Linux only), plus the cumulative GC
  collection count. Off Linux — or anywhere the ``resource`` module or
  procfs is missing — every unavailable reading degrades to ``None``/
  zero instead of raising, so the sampler is safe to attach
  unconditionally.
* Per-stage deltas: attach a sampler to an
  :class:`~repro.runtime.instrument.Instrumentation` via
  :meth:`~repro.runtime.instrument.Instrumentation.attach_resources` and
  every stage records CPU user/sys seconds, RSS delta, peak RSS and GC
  collections over its span into ``StageStats.resources`` — streamed by
  :class:`~repro.obs.trace.TracingInstrumentation` as ``resource`` trace
  events.
* :class:`ResourceMonitor` — a daemon thread sampling the process every
  ``interval`` seconds into ``proc:*`` gauges of a
  :class:`~repro.obs.metrics.MetricsRegistry`; this is what a long-lived
  :class:`~repro.serving.MatchService` exposes through ``/metrics``.

Everything here is opt-in and read-only: attaching a sampler never
changes pipeline outputs, and with no sampler attached (the default
everywhere) behaviour is bit-identical to a build without this module.
"""

from __future__ import annotations

import gc
import os
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any

try:  # pragma: no cover - the import itself never fails on POSIX
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None

#: ``/proc/self/statm`` — present on Linux, absent elsewhere.
_STATM = "/proc/self/statm"

#: ``ru_maxrss`` unit: bytes on macOS, kilobytes everywhere else.
_MAXRSS_UNIT = 1 if sys.platform == "darwin" else 1024


def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError, AttributeError):  # pragma: no cover
        return 4096


_PAGE_SIZE = _page_size()


def read_statm_rss() -> int | None:
    """Current RSS in bytes from ``/proc/self/statm``, ``None`` off Linux."""
    try:
        with open(_STATM, "rb") as fh:
            fields = fh.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return None


def gc_collection_count() -> int:
    """Total GC collections across all generations since interpreter start."""
    try:
        return sum(int(s.get("collections", 0)) for s in gc.get_stats())
    except Exception:  # pragma: no cover - gc.get_stats is CPython-specific
        return 0


@dataclass(frozen=True)
class ResourceSnapshot:
    """One point-in-time reading of the current process.

    ``rss_bytes``/``peak_rss_bytes`` are ``None`` where the platform
    offers no reading (no procfs, no ``resource`` module); CPU seconds
    and GC counts degrade to ``0``/``0.0`` instead so deltas stay
    well-defined everywhere.
    """

    ts: float
    cpu_user: float
    cpu_sys: float
    rss_bytes: int | None
    peak_rss_bytes: int | None
    gc_collections: int


class ResourceSampler:
    """Snapshot source for process CPU/RSS/GC readings.

    The sampler is stateless between snapshots (safe to share across
    threads) and every reading is a couple of syscalls, so it is cheap
    enough to wrap around every pipeline stage.
    """

    @property
    def available(self) -> bool:
        """Whether any OS-level reading (beyond GC counts) is possible."""
        return _resource is not None or read_statm_rss() is not None

    def snapshot(self) -> ResourceSnapshot:
        cpu_user = cpu_sys = 0.0
        peak: int | None = None
        if _resource is not None:
            usage = _resource.getrusage(_resource.RUSAGE_SELF)
            cpu_user = usage.ru_utime
            cpu_sys = usage.ru_stime
            peak = int(usage.ru_maxrss) * _MAXRSS_UNIT
        return ResourceSnapshot(
            ts=time.time(),
            cpu_user=cpu_user,
            cpu_sys=cpu_sys,
            rss_bytes=read_statm_rss(),
            peak_rss_bytes=peak,
            gc_collections=gc_collection_count(),
        )

    def stage_delta(
        self, before: ResourceSnapshot, after: ResourceSnapshot
    ) -> dict[str, float]:
        """The JSON-ready per-stage resource record between two snapshots.

        ``cpu_user``/``cpu_sys``/``gc_collections`` are deltas over the
        stage; ``rss_delta_bytes`` is how much the resident set grew (or
        shrank) across it; ``peak_rss_bytes`` is the process peak *at
        stage end* (``ru_maxrss`` is a lifetime high-water mark, so a
        stage cannot observe a peak lower than an earlier stage's).
        Unavailable readings are omitted rather than recorded as zero.
        """
        delta: dict[str, float] = {
            "cpu_user": after.cpu_user - before.cpu_user,
            "cpu_sys": after.cpu_sys - before.cpu_sys,
            "gc_collections": after.gc_collections - before.gc_collections,
        }
        if before.rss_bytes is not None and after.rss_bytes is not None:
            delta["rss_delta_bytes"] = after.rss_bytes - before.rss_bytes
        if after.peak_rss_bytes is not None:
            delta["peak_rss_bytes"] = after.peak_rss_bytes
        return delta


def merge_resources(
    target: dict[str, float] | None, delta: dict[str, float]
) -> dict[str, float]:
    """Fold one stage-delta record into an accumulated one.

    Additive readings (CPU seconds, GC collections, RSS deltas) sum;
    high-water marks (``peak_rss_bytes``) take the max — matching how
    repeated same-name siblings aggregate in reports and manifests.
    """
    if target is None:
        return dict(delta)
    for key, value in delta.items():
        if key == "peak_rss_bytes":
            target[key] = max(target.get(key, value), value)
        else:
            target[key] = target.get(key, 0) + value
    return target


class ResourceMonitor:
    """A daemon thread feeding ``proc:*`` gauges of a metrics registry.

    Every ``interval`` seconds (and once immediately on :meth:`start`,
    so gauges exist before the first interval elapses) the monitor
    snapshots the process and records:

    ``proc:rss_bytes``            current resident set (Linux only)
    ``proc:peak_rss_bytes``       lifetime peak resident set
    ``proc:cpu_user_seconds``     cumulative user CPU time
    ``proc:cpu_sys_seconds``      cumulative system CPU time
    ``proc:gc_collections``       cumulative GC collections
    ``proc:uptime_seconds``       seconds since the monitor started
    ``proc:samples``              (counter) samples taken so far

    Unavailable readings leave their gauge unset. ``start``/``stop`` are
    idempotent; the thread is a daemon, so a forgotten monitor never
    blocks interpreter exit. Usable as a context manager.
    """

    def __init__(
        self,
        metrics: Any,
        interval: float = 1.0,
        sampler: ResourceSampler | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"monitor interval must be positive, got {interval}")
        self.metrics = metrics
        self.interval = float(interval)
        self.sampler = sampler if sampler is not None else ResourceSampler()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def sample_once(self) -> ResourceSnapshot:
        """Take one sample and record it (also used by the thread loop)."""
        snap = self.sampler.snapshot()
        metrics = self.metrics
        if snap.rss_bytes is not None:
            metrics.gauge("proc:rss_bytes").set(snap.rss_bytes)
        if snap.peak_rss_bytes is not None:
            metrics.gauge("proc:peak_rss_bytes").set(snap.peak_rss_bytes)
        metrics.gauge("proc:cpu_user_seconds").set(snap.cpu_user)
        metrics.gauge("proc:cpu_sys_seconds").set(snap.cpu_sys)
        metrics.gauge("proc:gc_collections").set(snap.gc_collections)
        if self._started_at is not None:
            metrics.gauge("proc:uptime_seconds").set(snap.ts - self._started_at)
        metrics.counter("proc:samples").inc()
        return snap

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    def start(self) -> "ResourceMonitor":
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.time()
        self.sample_once()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=timeout)

    def __enter__(self) -> "ResourceMonitor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
