"""repro.obs — structured traces, metrics, provenance and run manifests.

The telemetry layer over the toolkit's instrumentation:

* :mod:`~repro.obs.trace` — a JSONL trace emitter layered on
  :class:`~repro.runtime.instrument.Instrumentation`
  (:class:`TracingInstrumentation`), plus a parser that reconstructs the
  exact stage tree from a trace file (:func:`load_trace`);
* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and fixed-bucket histograms fed by the executor, token cache,
  artifact store and workflow stages;
* :mod:`~repro.obs.provenance` — per-pair :class:`MatchProvenance`
  collected by :meth:`EMWorkflow.run(provenance=True)
  <repro.core.workflow.EMWorkflow.run>`, queried via ``explain_pair``;
* :mod:`~repro.obs.manifest` — :class:`RunManifest` JSON records written
  by the case study and every benchmark, :func:`diff_manifests` for
  regression comparison (``python -m repro trace diff``), and the
  benchmark trend history (:func:`append_history`/:func:`read_history`);
* :mod:`~repro.obs.resources` — per-stage CPU/RSS/GC deltas
  (:class:`ResourceSampler`) and a background ``proc:*`` gauge sampler
  for long-lived services (:class:`ResourceMonitor`);
* :mod:`~repro.obs.export` — Prometheus text exposition over the
  registry (:func:`render_prometheus`) and a stdlib ``/metrics`` +
  ``/healthz`` HTTP endpoint (:class:`MetricsServer`).

Everything is opt-in: with no trace writer, no registry, no manifest and
``provenance=False`` (the defaults everywhere), pipeline behaviour and
outputs are bit-identical to a build without this package.
"""

from .export import MetricsServer, prometheus_name, render_prometheus
from .manifest import (
    ManifestDiff,
    RunManifest,
    append_history,
    benchmark_result,
    diff_manifests,
    git_sha,
    load_benchmark_result,
    platform_info,
    read_history,
    stage_timings,
)
from .metrics import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_metrics,
    observe_cache,
    observe_stage_tree,
    observe_store,
)
from .provenance import MatchProvenance, PairLineage, require_provenance
from .resources import ResourceMonitor, ResourceSampler, ResourceSnapshot
from .trace import (
    ListSink,
    TraceWriter,
    TracingInstrumentation,
    load_trace,
    read_trace,
    trace_to_stats,
)

__all__ = [
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "ListSink",
    "ManifestDiff",
    "MatchProvenance",
    "MetricsRegistry",
    "MetricsServer",
    "PairLineage",
    "ResourceMonitor",
    "ResourceSampler",
    "ResourceSnapshot",
    "RunManifest",
    "TraceWriter",
    "TracingInstrumentation",
    "append_history",
    "benchmark_result",
    "collect_metrics",
    "diff_manifests",
    "git_sha",
    "load_benchmark_result",
    "load_trace",
    "observe_cache",
    "observe_stage_tree",
    "observe_store",
    "platform_info",
    "prometheus_name",
    "read_history",
    "read_trace",
    "render_prometheus",
    "require_provenance",
    "stage_timings",
    "trace_to_stats",
]
