"""Counters, gauges and fixed-bucket histograms for pipeline telemetry.

A :class:`MetricsRegistry` is the aggregation point the trace/manifest
layer snapshots: stage latencies and executor chunk durations land in
latency histograms, the standard pair counters
(``pairs_out``/``candidates``/...) land in a candidate-set-size histogram,
and the tokenization cache and artifact store contribute their hit/miss
accounting as gauges. Everything is plain data — :meth:`MetricsRegistry.snapshot`
returns JSON-ready dicts for the run manifest.

Feeding happens one of two ways (not both, or stages count twice):

* live, by passing a registry to
  :class:`~repro.obs.trace.TracingInstrumentation`;
* post-hoc, via :func:`collect_metrics` /
  :func:`observe_stage_tree` over a finished stage tree.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Sequence

from ..errors import ObsError
from ..runtime.instrument import StageStats

#: Wall-clock buckets (seconds) sized for pipeline stages: sub-millisecond
#: probes up to multi-minute blocking passes.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)
#: Log-ish buckets for candidate-set / pair-list sizes.
SIZE_BUCKETS: tuple[float, ...] = (
    1, 3, 10, 30, 100, 300, 1_000, 3_000, 10_000, 100_000, 1_000_000
)
#: Counter names whose values are candidate-set sizes (fed to the
#: ``candidate_set_size`` histogram).
SIZE_COUNTERS = frozenset({"pairs", "pairs_out", "candidates", "sure_pairs"})


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    value: float = 0.0

    def inc(self, value: float = 1) -> None:
        if value < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease (got {value})")
        self.value += value

    def snapshot(self) -> float:
        return self.value


@dataclass
class Gauge:
    """A last-value-wins measurement."""

    name: str
    value: float | None = None

    def set(self, value: float) -> None:
        self.value = value

    def snapshot(self) -> float | None:
        return self.value


class Histogram:
    """A fixed-bucket histogram with quantile estimation.

    Parameters
    ----------
    name:
        Metric name.
    buckets:
        Strictly increasing upper bounds; an observation lands in the
        first bucket whose bound is ``>= value``, values above the last
        bound land in an implicit overflow bucket. Bounds are fixed at
        construction — merging and diffing snapshots needs stable edges.
    """

    def __init__(self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ObsError(f"histogram {name!r} needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ObsError(
                f"histogram {name!r} bucket bounds must strictly increase: {bounds}"
            )
        self.name = name
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1: overflow
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> float | None:
        """Estimated q-quantile via linear interpolation within buckets.

        Exact at the edges: ``quantile(0)`` is the observed minimum,
        ``quantile(1)`` the observed maximum; ``None`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        target = q * self.count
        cumulative = 0.0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                low = self.buckets[i - 1] if i > 0 else self.min
                high = self.buckets[i] if i < len(self.buckets) else self.max
                low = max(low, self.min)
                high = min(high, self.max)
                fraction = (target - cumulative) / bucket_count
                return low + fraction * (high - low)
            cumulative += bucket_count
        return self.max  # pragma: no cover - float-rounding fallback

    def snapshot(self) -> dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
        }


@dataclass
class MetricsRegistry:
    """Name-keyed counters, gauges and histograms, created on first use."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        existing = self.histograms.get(name)
        if existing is not None:
            if buckets is not None and tuple(float(b) for b in buckets) != existing.buckets:
                raise ObsError(
                    f"histogram {name!r} already registered with different buckets"
                )
            return existing
        histogram = Histogram(name, buckets if buckets is not None else LATENCY_BUCKETS)
        self.histograms[name] = histogram
        return histogram

    # -- pipeline-shaped observation helpers ---------------------------
    def observe_stage(self, name: str, seconds: float) -> None:
        """One finished stage: global + per-stage latency histograms."""
        self.histogram("stage_seconds", LATENCY_BUCKETS).observe(seconds)
        self.histogram(f"stage:{name}:seconds", LATENCY_BUCKETS).observe(seconds)

    def observe_counter(self, name: str, value: float) -> None:
        """One domain counter increment; size-like counters also feed the
        candidate-set-size distribution."""
        self.counter(name).inc(max(value, 0))
        if name in SIZE_COUNTERS:
            self.histogram("candidate_set_size", SIZE_BUCKETS).observe(value)

    def observe_chunk(self, items: int, seconds: float) -> None:
        """One executor chunk (serial or pooled)."""
        self.counter("chunks").inc()
        self.counter("chunk_items").inc(items)
        self.histogram("chunk_seconds", LATENCY_BUCKETS).observe(seconds)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready state, sorted by metric name."""
        return {
            "counters": {n: c.snapshot() for n, c in sorted(self.counters.items())},
            "gauges": {n: g.snapshot() for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self.histograms.items())
            },
        }

    def render(self, title: str = "") -> str:
        """A compact text dump (benchmarks, CLI)."""
        lines = []
        if title:
            lines.append(title)
            lines.append("-" * len(title))
        for name, counter in sorted(self.counters.items()):
            lines.append(f"counter   {name:<32} {counter.value:g}")
        for name, gauge in sorted(self.gauges.items()):
            value = "-" if gauge.value is None else f"{gauge.value:g}"
            lines.append(f"gauge     {name:<32} {value}")
        for name, histogram in sorted(self.histograms.items()):
            if not histogram.count:
                continue
            lines.append(
                f"histogram {name:<32} n={histogram.count} "
                f"mean={histogram.mean:.4g} p50={histogram.quantile(0.5):.4g} "
                f"p95={histogram.quantile(0.95):.4g} max={histogram.max:.4g}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# post-hoc feeders
# ----------------------------------------------------------------------
def observe_stage_tree(registry: MetricsRegistry, root: StageStats) -> None:
    """Feed a finished stage tree (root excluded — it is never timed)."""
    def walk(stats: StageStats, is_root: bool) -> None:
        if not is_root:
            registry.observe_stage(stats.name, stats.seconds)
        for name, value in stats.counters.items():
            registry.observe_counter(name, value)
        for chunk in stats.chunks:
            registry.observe_chunk(chunk.items, chunk.seconds)
        for child in stats.children:
            walk(child, False)

    walk(root, True)


def observe_cache(registry: MetricsRegistry, cache) -> None:
    """Record a :class:`~repro.runtime.cache.TokenCache`'s accounting."""
    stats = cache.stats()
    registry.gauge("token_cache_hits").set(stats.hits)
    registry.gauge("token_cache_misses").set(stats.misses)


def observe_store(registry: MetricsRegistry, store) -> None:
    """Record an :class:`~repro.store.store.ArtifactStore`'s accounting."""
    stats = store.stats()
    registry.gauge("store_hits").set(stats.hits)
    registry.gauge("store_misses").set(stats.misses)
    registry.gauge("store_bypasses").set(stats.bypasses)
    registry.gauge("store_evictions").set(stats.evictions)
    registry.gauge("store_artifacts").set(len(store))


def collect_metrics(
    instrumentation=None,
    cache=None,
    store=None,
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Build (or extend) a registry from finished pipeline components.

    Pass the components that exist: a (non-tracing) instrumentation whose
    tree should be folded in, the token cache, the artifact store. When
    the instrumentation already live-fed this registry, omit it here.
    """
    registry = registry if registry is not None else MetricsRegistry()
    if instrumentation is not None:
        observe_stage_tree(registry, instrumentation.root)
    if cache is not None:
        observe_cache(registry, cache)
    if store is not None:
        observe_store(registry, store)
    return registry
