"""Prometheus text exposition for the metrics registry, plus an HTTP endpoint.

PR 7 turned the Figure-10 recipe into a long-lived
:class:`~repro.serving.MatchService` with ``serve:*`` latency histograms —
but those metrics lived and died inside the process. This module makes
them scrapeable:

* :func:`render_prometheus` — renders a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot in the Prometheus
  text exposition format (version 0.0.4): counters as ``*_total``,
  gauges, and histograms with *cumulative* ``le``-labelled buckets plus
  ``_sum``/``_count`` — computed from the registry's per-bucket counts,
  so a scrape and the in-process quantile estimates describe the same
  distribution.
* :class:`MetricsServer` — a stdlib :class:`~http.server.ThreadingHTTPServer`
  serving ``GET /metrics`` (the rendered registry) and ``GET /healthz``
  (a JSON liveness probe), bound by default to localhost with an
  OS-assigned port. No third-party client library is involved anywhere.

Rendering is deterministic (metrics sorted by name, ``%g`` float
formatting) so endpoint output is diffable across scrapes modulo the
metric values themselves.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable

#: Content type mandated by the Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def prometheus_name(name: str) -> str:
    """Sanitize a registry metric name for exposition.

    Prometheus metric names allow ``[a-zA-Z_:][a-zA-Z0-9_:]*`` — colons
    included, so the registry's ``serve:match_seconds`` style names pass
    through unchanged; anything else (spaces, dashes, dots) becomes
    ``_``, and a leading digit gets a ``_`` prefix.
    """
    cleaned = "".join(ch if ch in _NAME_OK else "_" for ch in name)
    if not cleaned:
        return "_"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _fmt(value: float) -> str:
    """Prometheus sample-value formatting (``%g``; integers stay bare)."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return f"{as_float:g}"


def render_prometheus(registry: Any) -> str:
    """The registry's current state in Prometheus text exposition format.

    Counters render as ``<name>_total``; gauges with no recorded value
    are skipped (Prometheus has no "unset" sample); histograms render
    their fixed buckets *cumulatively* with ``le`` labels, an ``+Inf``
    bucket equal to the observation count, and ``_sum``/``_count``
    series. Output is sorted by metric name and ends with a newline.
    """
    lines: list[str] = []
    for name, counter in sorted(registry.counters.items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {_fmt(counter.value)}")
    for name, gauge in sorted(registry.gauges.items()):
        if gauge.value is None:
            continue
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(gauge.value)}")
    for name, histogram in sorted(registry.histograms.items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.buckets, histogram.bucket_counts):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {_fmt(histogram.total)}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to a metrics source via the server object."""

    server: "MetricsServer._Server"  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            try:
                body = self.server.render().encode("utf-8")
            except Exception as exc:
                self._respond(500, "text/plain", f"render failed: {exc}\n".encode())
                return
            self._respond(200, CONTENT_TYPE, body)
        elif path == "/healthz":
            body = json.dumps({"ok": True}).encode("utf-8") + b"\n"
            self._respond(200, "application/json", body)
        else:
            self._respond(404, "text/plain", b"not found\n")

    def _respond(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes every few seconds would otherwise spam stderr


class MetricsServer:
    """A background ``/metrics`` + ``/healthz`` HTTP endpoint.

    Parameters
    ----------
    source:
        Either a :class:`~repro.obs.metrics.MetricsRegistry` (rendered
        via :func:`render_prometheus` per scrape) or a zero-argument
        callable returning the exposition text — a
        :class:`~repro.serving.MatchService`'s ``metrics_text`` bound
        method slots straight in.
    host / port:
        Bind address; ``port=0`` (the default) lets the OS pick — read
        the bound port back from :attr:`port` after :meth:`start`.

    The serving thread is a daemon and each request gets its own thread
    (:class:`~http.server.ThreadingHTTPServer`), so a slow scrape never
    blocks a health check. ``start``/``stop`` are idempotent; usable as
    a context manager.
    """

    class _Server(ThreadingHTTPServer):
        daemon_threads = True
        render: Callable[[], str]

    def __init__(self, source: Any, host: str = "127.0.0.1", port: int = 0) -> None:
        if callable(source):
            self._render = source
        else:
            self._render = lambda: render_prometheus(source)
        self.host = host
        self._requested_port = int(port)
        self._server: MetricsServer._Server | None = None
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The actually bound port (resolves ``port=0`` after start)."""
        if self._server is not None:
            return self._server.server_address[1]
        return self._requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        if self._server is not None:
            return self
        server = self._Server((self.host, self._requested_port), _Handler)
        server.render = self._render
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="repro-metrics-server", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        server, self._server = self._server, None
        thread, self._thread = self._thread, None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
