"""Per-pair match provenance: *why* did a pair end up (not) matched?

The paper's team debugged mismatches by hand-inspecting pairs; Panda-style
decision-level explanations make that a query instead. When an
:class:`~repro.core.workflow.EMWorkflow` runs with ``provenance=True`` it
fills a :class:`MatchProvenance` while executing — which blocker(s)
emitted each candidate, which positive rule pre-matched it, the matcher's
score against its threshold, and any negative rule that flipped it — and
:meth:`MatchProvenance.explain_pair` assembles the full
:class:`PairLineage` for any pair.

The lineage invariant (checked by :meth:`MatchProvenance.validate`):
every final match terminates in exactly one of {positive rule, matcher
accept}, and every flipped pair names the negative rule that fired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..blocking.candidate_set import Pair
from ..errors import ObsError


@dataclass(frozen=True)
class PairLineage:
    """The complete decision path of one record pair through a workflow.

    ``score``/``threshold`` are ``None`` for pairs the matcher never saw
    (sure matches are carved out of the prediction set; pairs outside the
    candidate set are never featurized).
    """

    pair: Pair
    blockers: tuple[str, ...]       # blockers whose output contains the pair
    positive_rule: str | None       # sure-match rule that fired, if any
    score: float | None             # matcher P(match), if predicted over
    threshold: float | None         # decision threshold used by the matcher
    predicted: bool                 # matcher predicted "match"
    negative_rule: str | None       # negative rule that flipped it, if any
    final: bool                     # in the workflow's final matches

    @property
    def in_candidates(self) -> bool:
        return bool(self.blockers) or self.positive_rule is not None

    @property
    def terminal(self) -> str | None:
        """What the lineage of a *final match* terminates in:
        ``"positive_rule"`` or ``"matcher"`` (``None`` for non-matches)."""
        if not self.final:
            return None
        return "positive_rule" if self.positive_rule is not None else "matcher"

    def describe(self) -> str:
        """A short human-readable audit line."""
        if not self.in_candidates:
            return f"pair {self.pair!r}: not in the candidate set"
        parts = []
        if self.positive_rule is not None:
            parts.append(f"sure match by rule {self.positive_rule!r}")
        if self.blockers:
            parts.append(f"blocked by {', '.join(self.blockers)}")
        if self.score is not None:
            comparison = ">=" if self.score >= (self.threshold or 0.0) else "<"
            parts.append(
                f"matcher score {self.score:.3f} {comparison} "
                f"threshold {self.threshold:.2f}"
            )
        if self.negative_rule is not None:
            parts.append(f"FLIPPED by negative rule {self.negative_rule!r}")
        parts.append("-> MATCH" if self.final else "-> non-match")
        return f"pair {self.pair!r}: " + "; ".join(parts)

    def as_dict(self) -> dict[str, Any]:
        return {
            "pair": list(self.pair),
            "blockers": list(self.blockers),
            "positive_rule": self.positive_rule,
            "score": self.score,
            "threshold": self.threshold,
            "predicted": self.predicted,
            "negative_rule": self.negative_rule,
            "final": self.final,
            "terminal": self.terminal,
        }


class MatchProvenance:
    """Decision records of one workflow run, queryable per pair.

    Filled by :meth:`repro.core.workflow.EMWorkflow.run` (with
    ``provenance=True``); everything is plain sets/dicts keyed by
    ``(left_id, right_id)`` tuples.
    """

    def __init__(self, workflow: str, threshold: float = 0.5) -> None:
        self.workflow = workflow
        self.threshold = threshold
        self.rule_pairs: dict[str, frozenset[Pair]] = {}
        self.blocker_pairs: dict[str, frozenset[Pair]] = {}
        self.scores: dict[Pair, float] = {}
        self.predicted: frozenset[Pair] = frozenset()
        self.flipped: dict[Pair, str] = {}
        self.final: frozenset[Pair] = frozenset()

    # -- builders (called by the workflow) -----------------------------
    def record_rule(self, name: str, pairs: Iterable[Pair]) -> None:
        pairs = frozenset(tuple(p) for p in pairs)
        previous = self.rule_pairs.get(name, frozenset())
        self.rule_pairs[name] = previous | pairs

    def record_blocker(self, name: str, pairs: Iterable[Pair]) -> None:
        pairs = frozenset(tuple(p) for p in pairs)
        previous = self.blocker_pairs.get(name, frozenset())
        self.blocker_pairs[name] = previous | pairs

    def record_scores(self, scores: dict[Pair, float]) -> None:
        self.scores.update({tuple(p): float(s) for p, s in scores.items()})

    def record_outcome(
        self,
        predicted: Iterable[Pair],
        flipped: Iterable[tuple[Pair, str]],
        final: Iterable[Pair],
    ) -> None:
        self.predicted = frozenset(tuple(p) for p in predicted)
        self.flipped = {tuple(p): rule for p, rule in flipped}
        self.final = frozenset(tuple(p) for p in final)

    # -- queries -------------------------------------------------------
    def knows(self, pair: Pair) -> bool:
        """Did this run's candidate universe (or final set) see the pair?"""
        pair = tuple(pair)
        return (
            pair in self.final
            or pair in self.scores
            or any(pair in pairs for pairs in self.rule_pairs.values())
            or any(pair in pairs for pairs in self.blocker_pairs.values())
        )

    def explain_pair(self, a: Any, b: Any) -> PairLineage:
        """The full lineage of pair ``(a, b)`` through this workflow."""
        pair = (a, b)
        score = self.scores.get(pair)
        return PairLineage(
            pair=pair,
            blockers=tuple(
                name for name, pairs in self.blocker_pairs.items() if pair in pairs
            ),
            positive_rule=next(
                (name for name, pairs in self.rule_pairs.items() if pair in pairs),
                None,
            ),
            score=score,
            threshold=self.threshold if score is not None else None,
            predicted=pair in self.predicted,
            negative_rule=self.flipped.get(pair),
            final=pair in self.final,
        )

    def validate(self) -> list[str]:
        """Check the lineage invariant; returns violations (empty = ok).

        * every final match terminates in exactly one of
          {positive rule, matcher accept};
        * no final match was flipped;
        * every flipped pair names its negative rule and is not final.
        """
        problems = []
        for pair in sorted(self.final, key=repr):
            lineage = self.explain_pair(*pair)
            by_rule = lineage.positive_rule is not None
            by_matcher = (
                lineage.predicted
                and lineage.score is not None
                and lineage.score >= self.threshold
            )
            if by_rule == by_matcher:  # both or neither
                problems.append(
                    f"{pair!r}: final match must terminate in exactly one of "
                    f"rule/matcher (rule={lineage.positive_rule!r}, "
                    f"score={lineage.score!r})"
                )
            if lineage.negative_rule is not None:
                problems.append(
                    f"{pair!r}: final match was flipped by {lineage.negative_rule!r}"
                )
        for pair, rule in self.flipped.items():
            if not rule:
                problems.append(f"{pair!r}: flipped without a rule name")
            if pair in self.final:
                problems.append(f"{pair!r}: flipped pair present in final matches")
        return problems

    def summary(self) -> str:
        return (
            f"provenance[{self.workflow}]: "
            f"{len(self.final)} final, {len(self.scores)} scored, "
            f"{len(self.flipped)} flipped, "
            f"{sum(len(p) for p in self.rule_pairs.values())} rule pairs, "
            f"{len(self.blocker_pairs)} blockers"
        )


def require_provenance(provenance: "MatchProvenance | None") -> MatchProvenance:
    """Raise a helpful error when a result was produced without lineage."""
    if provenance is None:
        raise ObsError(
            "no provenance was collected; re-run the workflow with "
            "provenance=True to record match lineage"
        )
    return provenance
